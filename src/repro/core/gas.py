"""Equation-of-state abstraction consumed by the CFD solvers.

Two concrete models cover the paper's "ideal gas" and "equilibrium real
gas" modes:

* :class:`IdealGasEOS` — calorically perfect gas (gamma, R constant).
* :class:`TabulatedEOS` — equilibrium air through the effective-gamma
  lookup table (:mod:`repro.thermo.eos_table`), the variable-gamma device
  of the era's production codes.

Both expose the same three vectorised methods the flux routines need:
``pressure(rho, e)``, ``sound_speed(rho, e)``, ``temperature(rho, e)``,
where ``e`` is specific *internal* energy (no kinetic part).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import InputError

__all__ = ["GasEOS", "IdealGasEOS", "TabulatedEOS", "eos_spec",
           "eos_from_spec"]


@runtime_checkable
class GasEOS(Protocol):
    """Minimal EOS interface for the finite-volume solvers."""

    def pressure(self, rho, e): ...
    def sound_speed(self, rho, e): ...
    def temperature(self, rho, e): ...


class IdealGasEOS:
    """Calorically perfect gas p = (gamma - 1) rho e."""

    def __init__(self, gamma: float = 1.4, R: float = 287.0528):
        if gamma <= 1.0:
            raise InputError("gamma must exceed 1")
        self.gamma = gamma
        self.R = R
        self.cv = R / (gamma - 1.0)  # catlint: disable=CAT003 -- gamma > 1 validated above
        self.cp = self.cv * gamma

    def pressure(self, rho, e):
        return (self.gamma - 1.0) * np.asarray(rho, float) * np.asarray(
            e, float)

    def sound_speed(self, rho, e):
        e = np.maximum(np.asarray(e, float), 1e-30)
        # catlint: disable=CAT002 -- gamma > 1 enforced in __init__, e clamped above
        return np.sqrt(self.gamma * (self.gamma - 1.0) * e)

    def temperature(self, rho, e):
        return np.asarray(e, float) / self.cv

    def e_from_T(self, T):
        """Internal energy at temperature T [J/kg]."""
        return self.cv * np.asarray(T, float)

    def e_from_p_rho(self, p, rho):
        return np.asarray(p, float) / ((self.gamma - 1.0)
                                       * np.asarray(rho, float))

    def gamma_eff(self, rho, e):
        return np.full(np.broadcast_shapes(np.shape(rho), np.shape(e)),
                       self.gamma)


class TabulatedEOS:
    """Equilibrium real gas via the effective-gamma table.

    Parameters
    ----------
    table:
        An :class:`~repro.thermo.eos_table.EquilibriumEOSTable`; defaults
        to the cached standard-air table.
    """

    def __init__(self, table=None):
        if table is None:
            from repro.thermo.eos_table import build_air_table
            table = build_air_table()
        self.table = table

    def pressure(self, rho, e):
        return self.table.pressure(rho, e)

    def sound_speed(self, rho, e):
        return self.table.sound_speed(rho, e)

    def temperature(self, rho, e):
        return self.table.temperature(rho, e)

    def e_from_p_rho(self, p, rho, *, tol=1e-10, max_iter=60):
        """Invert p(rho, e) for e (monotone in e; bisection-safe secant)."""
        p = np.asarray(p, dtype=float)
        rho = np.asarray(rho, dtype=float)
        e = p / (0.4 * rho)  # ideal-gas initial guess
        for _ in range(max_iter):
            f = self.pressure(rho, e) - p
            if np.all(np.abs(f) < tol * np.maximum(p, 1.0)):
                return e
            de = np.maximum(1e-4 * e, 1.0)
            dpde = (self.pressure(rho, e + de) - self.pressure(rho, e)) / de
            e = np.maximum(e - f / np.maximum(dpde, 1e-10), 1e3)
        return e

    def gamma_eff(self, rho, e):
        return self.table.lookup(rho, e)[0]


def eos_spec(eos) -> dict:
    """JSON-able descriptor of an EOS for durable-checkpoint manifests.

    Unknown EOS classes still fingerprint (by class name) but cannot be
    rebuilt by :func:`eos_from_spec`.
    """
    if isinstance(eos, IdealGasEOS):
        return {"kind": "ideal", "gamma": eos.gamma, "R": eos.R}
    if isinstance(eos, TabulatedEOS):
        return {"kind": "tabulated"}
    return {"kind": type(eos).__name__}


def eos_from_spec(spec: dict):
    """Inverse of :func:`eos_spec` for the two stock EOS models."""
    kind = spec.get("kind")
    if kind == "ideal":
        return IdealGasEOS(spec["gamma"], spec["R"])
    if kind == "tabulated":
        return TabulatedEOS()
    raise InputError(f"cannot rebuild EOS from spec {spec!r}; only the "
                     f"stock ideal/tabulated models are reconstructible")
