"""One-dimensional post-shock thermochemical relaxation (Park's approach).

This is the paper's "first approach" to NS codes: a one-dimensional fluid
model carrying state-of-the-art real-gas physics, used to simulate shock-
tube experiments (Fig. 7) and, with the radiation module, emission spectra
(Fig. 8).

Model
-----
Steady flow normal to a standing shock.  Immediately behind the shock the
translational-rotational temperature jumps to its frozen value while the
composition and the vibrational-electronic pool remain at freestream
conditions.  Downstream, the inviscid conservation laws hold::

    rho u           = m0
    p + rho u^2     = P0
    h + u^2 / 2     = H0

while the species and vibrational-energy fields relax along x::

    d(y_s)/dx = w_s / (rho u)
    d(e_v)/dx = Q_v / (rho u)

with the Park two-temperature source terms.  At each station the algebraic
system above is closed for (u, rho, T) given (y, e_v); the resulting DAE
is integrated with a stiff BDF method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from repro.constants import R_UNIVERSAL
from repro.errors import ConvergenceError, InputError
from repro.numerics.interp import interp_columns
from repro.solvers.shock import frozen_post_shock_state
from repro.thermo.kinetics import ReactionMechanism, park_air_mechanism
from repro.thermo.species import SpeciesDB, species_set
from repro.thermo.two_temperature import TwoTemperatureGas

__all__ = ["ShockRelaxationSolver", "RelaxationProfile"]


@dataclass
class RelaxationProfile:
    """Post-shock relaxation solution along distance x."""

    x: np.ndarray            #: distance behind the shock [m]
    T: np.ndarray            #: translational-rotational temperature [K]
    Tv: np.ndarray           #: vibrational-electronic temperature [K]
    y: np.ndarray            #: mass fractions (nx, ns)
    rho: np.ndarray
    u: np.ndarray
    p: np.ndarray
    db: SpeciesDB

    @property
    def electron_number_density(self):
        """n_e [1/m^3] (zero when the set carries no electrons)."""
        from repro.constants import N_AVOGADRO
        if "e-" not in self.db:
            return np.zeros_like(self.x)
        j = self.db.index["e-"]
        return (self.rho * self.y[:, j] / self.db.molar_mass[j]
                * N_AVOGADRO)

    def station(self, x_query):
        """Interpolated state at one or more x positions (dict)."""
        xq = np.asarray(x_query, dtype=float)
        out = {"T": np.interp(xq, self.x, self.T),
               "Tv": np.interp(xq, self.x, self.Tv),
               "rho": np.interp(xq, self.x, self.rho),
               "u": np.interp(xq, self.x, self.u),
               "p": np.interp(xq, self.x, self.p)}
        out["y"] = interp_columns(xq, self.x, self.y)
        return out


class ShockRelaxationSolver:
    """Two-temperature post-normal-shock relaxation integrator."""

    def __init__(self, db: SpeciesDB | str = "air11",
                 mechanism: ReactionMechanism | None = None):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        self.mech = mechanism or park_air_mechanism(self.db)
        self.tt = TwoTemperatureGas(self.db, self.mech)

    # ------------------------------------------------------------------

    def _closure(self, y, ev, m0, P0, H0, u_guess):
        """Solve the algebraic conservation system for (u, rho, T, p).

        Subsonic (post-shock) branch Newton iteration on u.
        """
        thermo = self.tt.thermo
        R_mix = R_UNIVERSAL * float(np.sum(y / self.db.molar_mass))

        def T_of_u(u):
            # h = h_tr_rot(T, y) + ev_pool; energy: h = H0 - u^2/2
            h_tr_target = H0 - 0.5 * u * u - ev
            # h_tr_rot is linear in T: h = sum y (hf + c T)
            y_arr = np.asarray(y)
            hf = float(np.sum(y_arr * self.db.hf0_mass))
            # per-species tr-rot cp coefficient [J/kg/K]
            c = float(np.sum(y_arr * self._cp_tr_rot_mass()))
            return (h_tr_target - hf) / c

        u = float(u_guess)
        for _ in range(80):
            T = T_of_u(u)
            if T <= 0:
                u *= 0.7
                continue
            rho = m0 / u
            p = rho * R_mix * T
            F = p + m0 * u - P0
            # dF/du = d(rho R T)/du + m0; rho=m0/u, dT/du = -u/c
            c = float(np.sum(np.asarray(y) * self._cp_tr_rot_mass()))
            dT_du = -u / c
            dF = (-m0 / u**2) * R_mix * T + (m0 / u) * R_mix * dT_du + m0
            du = -F / dF
            u_new = u + np.clip(du, -0.4 * u, 0.4 * u)
            if abs(u_new - u) < 1e-12 * max(u, 1.0):
                u = u_new
                break
            u = u_new
        T = T_of_u(u)
        rho = m0 / u
        return u, rho, T, rho * R_mix * T

    def _cp_tr_rot_mass(self):
        """Per-species translational-rotational cp [J/kg/K] (T-independent)."""
        out = np.empty(self.db.n, dtype=np.float64)
        for j, st in enumerate(self.tt.thermo.each):
            out[j] = float(st.cp_tr_rot(300.0)) / self.db.molar_mass[j]
        return out

    # ------------------------------------------------------------------

    def solve(self, *, u1, p1, T1, y1=None, x_end=0.1, n_out=400,
              rtol=1e-8, atol=1e-11, resilience=None) -> RelaxationProfile:
        """Integrate the relaxation zone behind a normal shock.

        Parameters
        ----------
        u1, p1, T1:
            Upstream (shock-frame) speed [m/s], pressure [Pa] and
            temperature [K].
        y1:
            Upstream mass fractions (defaults to 0.767/0.233 air over the
            solver's species set).
        x_end:
            Integration distance behind the shock [m].
        resilience:
            When set (truthy), a failed stiff integration is retried
            through a bounded tolerance/method ladder (looser rtol/atol,
            then LSODA) before giving up; the final failure carries a
            :class:`~repro.resilience.FailureReport`.
        """
        db = self.db
        if y1 is None:
            y1 = np.zeros(db.n, dtype=np.float64)
            y1[db.index["N2"]] = 0.767
            y1[db.index["O2"]] = 0.233
        y1 = np.asarray(y1, dtype=float)
        if abs(y1.sum() - 1.0) > 1e-8:
            raise InputError("upstream mass fractions must sum to 1")
        R1 = R_UNIVERSAL * float(np.sum(y1 / db.molar_mass))
        rho1 = p1 / (R1 * T1)
        # frozen jump with tr-rot caloric gamma (vibration frozen)
        cp_tr = float(np.sum(y1 * self._cp_tr_rot_mass()))
        # catlint: disable=CAT003 -- cp_tr = cv + R1 > R1 for any
        # species set (translational cv >= 1.5 R)
        gamma_fr = cp_tr / (cp_tr - R1)
        post = frozen_post_shock_state(rho1, T1, u1, gamma=gamma_fr, R=R1)
        # conserved totals from the upstream state
        m0 = rho1 * u1
        P0 = p1 + rho1 * u1**2
        hf = float(np.sum(y1 * db.hf0_mass))
        ev1 = float(self.tt.e_vib_el(np.array(T1), y1[None, :])[0])
        h1 = hf + cp_tr * T1 + ev1
        H0 = h1 + 0.5 * u1**2

        ns = db.n
        u_state = {"u": post["u2"]}

        def rhs(x, z):
            y = np.clip(z[:ns], 0.0, 1.0)
            ev = z[ns]
            u, rho, T, p = self._closure(y, ev, m0, P0, H0, u_state["u"])
            u_state["u"] = u
            Tv = float(self.tt.Tv_from_ev(np.array(ev), y[None, :])[0])
            w = self.mech.wdot(np.array(rho), np.array(T), y[None, :],
                               np.array(Tv))[0]
            qv = float(self.tt.vibrational_energy_source(
                np.array(rho), np.array(T), np.array(Tv),
                y[None, :])[0])
            dz = np.empty(ns + 1, dtype=np.float64)
            dz[:ns] = w / (rho * u)
            dz[ns] = qv / (rho * u)
            return dz

        z0 = np.concatenate([y1, [ev1]])
        x_eval = np.geomspace(max(x_end * 1e-5, 1e-8), x_end, n_out)
        x_eval = np.concatenate([[0.0], x_eval])

        def integrate(rtol=rtol, atol=atol, method="BDF"):
            out = solve_ivp(rhs, (0.0, x_end), z0, method=method,
                            rtol=rtol, atol=atol, t_eval=x_eval,
                            dense_output=False)
            if not out.success:
                raise ConvergenceError(f"relaxation integration failed: "
                                       f"{out.message}")
            return out

        if resilience:
            from repro.resilience import supervised_call
            # bounded retry ladder: loosen the tolerances (the usual fix
            # for a BDF stall on a stiff ignition front), then switch the
            # stiff method entirely.
            sol = supervised_call(
                integrate, label="shock_relaxation",
                ladder=[{"rtol": max(rtol, 1e-8) * 100,
                         "atol": max(atol, 1e-11) * 100},
                        {"rtol": 1e-5, "atol": 1e-8, "method": "LSODA"}],
                config={"u1": float(u1), "p1": float(p1),
                        "T1": float(T1), "x_end": float(x_end)})
        else:
            sol = integrate()
        # recover algebraic fields along the trajectory
        nx = sol.t.size
        T = np.empty(nx, dtype=np.float64)
        Tv = np.empty(nx, dtype=np.float64)
        rho = np.empty(nx, dtype=np.float64)
        u = np.empty(nx, dtype=np.float64)
        p = np.empty(nx, dtype=np.float64)
        y_out = np.empty((nx, ns), dtype=np.float64)
        u_run = post["u2"]
        for i in range(nx):
            y = np.clip(sol.y[:ns, i], 0.0, 1.0)
            ev = sol.y[ns, i]
            u_i, rho_i, T_i, p_i = self._closure(y, ev, m0, P0, H0, u_run)
            u_run = u_i
            T[i], rho[i], u[i], p[i] = T_i, rho_i, u_i, p_i
            Tv[i] = float(self.tt.Tv_from_ev(np.array(ev),
                                             y[None, :])[0])
            y_out[i] = y
        return RelaxationProfile(x=sol.t, T=T, Tv=Tv, y=y_out, rho=rho,
                                 u=u, p=p, db=db)
