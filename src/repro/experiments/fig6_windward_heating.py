"""Fig. 6 — Windward centerline heating comparison (the Ref. 20 result).

STS-3 trajectory point: V = 6.74 km/s, h = 71.3 km, alpha = 40 deg.
Curves: equilibrium air (fully catalytic), ideal gas gamma = 1.2, a
partially catalytic equilibrium variant, and the synthetic STS-3 flight
data overlay (see repro.experiments.data).
"""

from __future__ import annotations

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.experiments.data import STS3_SYNTHETIC
from repro.geometry import OrbiterWindwardProfile
from repro.postprocess.ascii_plot import ascii_plot
from repro.postprocess.tables import format_table
from repro.solvers.pns import WindwardHeatingPNS
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set

__all__ = ["run", "main", "CONDITION"]

#: The STS-3 trajectory point of Fig. 6.
CONDITION = dict(V=6740.0, h=71300.0, alpha_deg=40.0, T_wall=1100.0)


def run(quick: bool = False) -> dict:
    atm = EarthAtmosphere()
    rho = float(atm.density(CONDITION["h"]))
    T = float(atm.temperature(CONDITION["h"]))
    body = OrbiterWindwardProfile(alpha_deg=CONDITION["alpha_deg"],
                                  nose_radius=1.3)
    n_st = 30 if quick else 60
    db = species_set("air11")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    eq = WindwardHeatingPNS(body, gas=gas).solve(
        rho_inf=rho, T_inf=T, V=CONDITION["V"],
        T_wall=CONDITION["T_wall"], n_stations=n_st)
    ideal = WindwardHeatingPNS(body, gamma=1.2).solve(
        rho_inf=rho, T_inf=T, V=CONDITION["V"],
        T_wall=CONDITION["T_wall"], n_stations=n_st)
    partial = WindwardHeatingPNS(body, gas=gas).solve(
        rho_inf=rho, T_inf=T, V=CONDITION["V"],
        T_wall=CONDITION["T_wall"], n_stations=n_st,
        catalytic_phi=0.15)
    # interpolate the computed curves onto the synthetic flight abscissae
    xd = STS3_SYNTHETIC["x_over_L"]
    comparison = {
        "x_over_L": xd,
        "flight": STS3_SYNTHETIC["q_w_cm2"],
        "equilibrium": np.interp(xd, eq.x_over_L, eq.q) / 1e4,
        "ideal_g12": np.interp(xd, ideal.x_over_L, ideal.q) / 1e4,
        "partial_catalytic": np.interp(xd, partial.x_over_L,
                                       partial.q) / 1e4,
    }
    return {"equilibrium": eq, "ideal": ideal, "partial": partial,
            "comparison": comparison, "condition": CONDITION}


def main(quick: bool = True) -> str:
    res = run(quick)
    eq, ideal, partial = res["equilibrium"], res["ideal"], res["partial"]
    c = res["comparison"]
    txt = ascii_plot(
        [(eq.x_over_L, eq.q / 1e4, "equilibrium air"),
         (ideal.x_over_L, ideal.q / 1e4, "ideal gas g=1.2"),
         (partial.x_over_L, partial.q / 1e4, "phi=0.15 catalytic"),
         (c["x_over_L"], c["flight"], "STS-3 (synthetic)")],
        logy=True, title="Fig. 6 - windward heating [W/cm^2]",
        xlabel="x/L", ylabel="q [W/cm^2]")
    rows = [(float(x), float(f), float(e), float(i), float(p))
            for x, f, e, i, p in zip(c["x_over_L"], c["flight"],
                                     c["equilibrium"], c["ideal_g12"],
                                     c["partial_catalytic"])]
    txt += "\n" + format_table(
        ["x/L", "flight*", "equil", "ideal g=1.2", "phi=0.15"], rows,
        title="\nq_w [W/cm^2]  (*synthetic stand-in data)")
    return txt


if __name__ == "__main__":
    print(main())
