"""Solver resilience layer: supervised marching, rollback-retry,
failure diagnostics and deterministic fault injection.

Production aerothermodynamics runs must degrade gracefully, not die.
This package provides the machinery the solver stack wires through:

* :class:`RunSupervisor` / :class:`RetryPolicy` — checkpointed marching
  with automatic rollback and CFL backoff,
* :func:`supervised_call` — bounded parameter-adjustment retries for
  one-shot solves,
* :class:`FailureReport` — the diagnostic bundle every exhausted retry
  ladder emits,
* :class:`Checkpoint` — restorable solver snapshots,
* :class:`FaultInjector` — deterministic NaN / perturbation / Newton /
  crash / IO faults so every recovery path is exercised by tests,
* :class:`ConservationWatchdog` / :class:`WatchdogPolicy` /
  :class:`WatchdogEvent` — per-step auditing of conservation budgets,
  species bounds, entropy monotonicity and invalid-state localization,
* :class:`DegradationController` / :class:`DegradationPolicy` /
  :class:`DegradationLedger` — the graceful-degradation cascade
  (quarantined first-order reconstruction, per-cell chemistry demotion,
  automatic re-promotion) slotted between rollback-retry and abort,
* :class:`PersistencePolicy` / :class:`SnapshotStore` /
  :func:`resume_run` — durable, crash-safe snapshots on disk (atomic
  writes, SHA-256 verified loads, keep-last-K retention) so a SIGKILLed
  march resumes bit-identical from its latest valid generation,
* :class:`IsolatedRunner` / :class:`IsolationPolicy` /
  :class:`IsolationEvent` / :class:`Heartbeat` — process-level
  isolation: solves run in supervised child processes under wall-clock
  deadlines, RSS memory budgets and heartbeat stall detection, killed
  (SIGTERM → SIGKILL) and auto-resumed from the durable snapshots when
  they hang, balloon or crash (see :mod:`repro.resilience.isolation`
  and the chaos harness in :mod:`repro.resilience.chaos`),
* :class:`Farm` / :class:`FarmPolicy` / :class:`WorkQueue` /
  :class:`Job` / :class:`BackoffPolicy` / :class:`LeaseManager` — the
  fault-tolerant solve farm: a durable filesystem work queue drained by
  N supervised workers under lease-based ownership, retry with
  exponential backoff, a dead-letter ledger, kill-and-resume campaigns
  and graceful drain (see :mod:`repro.resilience.farm`,
  :mod:`repro.resilience.queue` and :mod:`repro.resilience.lease`),
* :class:`HostBeacon` / :func:`merge_ledgers` /
  :func:`audit_exactly_once` — the multi-host layer: several
  supervisors (each a ``host_id`` with ``host:pid`` workers) drain one
  shared queue directory under clock-skew-tolerant leases, fenced
  commits, per-host journals with rotation/compaction, advisory clock
  beacons, cross-host ledger merging and an exactly-once journal audit.
"""

from repro.resilience.checkpoint import Checkpoint
from repro.resilience.farm import (Farm, FarmPolicy, WorkerKillPlan,
                                   audit_exactly_once, merge_ledgers,
                                   run_campaign, sweep_orphans)
from repro.resilience.lease import (HostBeacon, Lease, LeaseManager,
                                    default_host_id, estimate_skew,
                                    read_beacons)
from repro.resilience.queue import BackoffPolicy, Job, WorkQueue
from repro.resilience.isolation import (Heartbeat, IsolatedRunner,
                                        IsolationEvent, IsolationPolicy)
from repro.resilience.degradation import (DegradationController,
                                          DegradationLedger,
                                          DegradationPolicy,
                                          drain_ledgers)
from repro.resilience.faults import Fault, FaultInjector, SimulatedCrash
from repro.resilience.persistence import (MANIFEST_SCHEMA_VERSION,
                                          LoadedSnapshot,
                                          PersistencePolicy, SnapshotStore,
                                          resume_run, solver_fingerprint)
from repro.resilience.report import FailureReport, solver_config
from repro.resilience.supervisor import (RetryPolicy, RunSupervisor,
                                         supervised_call)
from repro.resilience.watchdog import (ConservationWatchdog,
                                       WatchdogEvent, WatchdogPolicy)

__all__ = ["BackoffPolicy", "Checkpoint", "ConservationWatchdog",
           "DegradationController", "DegradationLedger",
           "DegradationPolicy", "Farm", "FarmPolicy", "Fault",
           "FaultInjector", "FailureReport", "Heartbeat",
           "HostBeacon", "IsolatedRunner", "IsolationEvent",
           "IsolationPolicy", "Job", "Lease", "LeaseManager",
           "LoadedSnapshot", "MANIFEST_SCHEMA_VERSION",
           "PersistencePolicy", "RetryPolicy", "RunSupervisor",
           "SimulatedCrash", "SnapshotStore", "WatchdogEvent",
           "WatchdogPolicy", "WorkQueue", "WorkerKillPlan",
           "audit_exactly_once", "default_host_id", "drain_ledgers",
           "estimate_skew", "merge_ledgers", "read_beacons",
           "resume_run", "run_campaign", "solver_config",
           "solver_fingerprint", "supervised_call", "sweep_orphans"]
