"""Tests for grid stretching, structured metrics and adaptation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GridError
from repro.geometry import Hemisphere, Sphere
from repro.grid import (StructuredGrid2D, adapt_1d, blunt_body_grid,
                        geometric_stretch, normal_ray_grid, roberts_cluster,
                        tanh_cluster)
from repro.grid.adaptation import gradient_weight


class TestStretching:
    @pytest.mark.parametrize("fn,kw", [
        (tanh_cluster, {"beta": 2.0}),
        (tanh_cluster, {"beta": 3.0, "end": "max"}),
        (tanh_cluster, {"beta": 3.0, "end": "both"}),
        (roberts_cluster, {"beta": 1.05}),
        (geometric_stretch, {"ratio": 1.2}),
    ])
    def test_endpoints_and_monotonicity(self, fn, kw):
        s = fn(41, **kw)
        # catlint: disable=CAT010 -- stretchings pin endpoints to exact 0/1 against roundoff
        assert s[0] == 0.0 and s[-1] == 1.0
        assert np.all(np.diff(s) > 0)

    def test_tanh_min_clusters_at_wall(self):
        s = tanh_cluster(50, beta=3.0, end="min")
        assert s[1] - s[0] < (1.0 / 49) / 3

    def test_zero_beta_uniform(self):
        s = tanh_cluster(11, beta=0.0)
        assert np.allclose(np.diff(s), 0.1)

    def test_geometric_ratio_exact(self):
        s = geometric_stretch(20, ratio=1.3)
        d = np.diff(s)
        assert np.allclose(d[1:] / d[:-1], 1.3, rtol=1e-10)

    def test_invalid(self):
        with pytest.raises(GridError):
            tanh_cluster(1)
        with pytest.raises(GridError):
            roberts_cluster(10, beta=0.9)
        with pytest.raises(GridError):
            tanh_cluster(10, end="sideways")


class TestStructuredGrid:
    def test_cartesian_unit_cells(self):
        x, y = np.meshgrid(np.arange(4.0), np.arange(3.0), indexing="ij")
        g = StructuredGrid2D(x, y)
        assert g.ni == 3 and g.nj == 2
        assert np.allclose(g.area, 1.0)
        assert np.allclose(g.face_length_i, 1.0)
        assert np.allclose(g.face_length_j, 1.0)

    def test_metric_identity_cartesian(self):
        x, y = np.meshgrid(np.linspace(0, 2, 7), np.linspace(0, 1, 5),
                           indexing="ij")
        g = StructuredGrid2D(x, y)
        assert g.metric_identity_residual() < 1e-14

    def test_metric_identity_curvilinear(self):
        # polar-ish grid: the telescoping identity must still hold exactly
        r = np.linspace(1.0, 2.0, 8)
        th = np.linspace(0.0, np.pi / 3, 10)
        R, TH = np.meshgrid(r, th, indexing="ij")
        g = StructuredGrid2D(R * np.cos(TH), R * np.sin(TH))
        assert g.metric_identity_residual() < 1e-13

    def test_total_area_preserved(self):
        # annular sector area check
        r = np.linspace(1.0, 2.0, 40)
        th = np.linspace(0.0, np.pi / 2, 60)
        R, TH = np.meshgrid(r, th, indexing="ij")
        g = StructuredGrid2D(R * np.cos(TH), R * np.sin(TH))
        exact = 0.5 * (2.0**2 - 1.0**2) * (np.pi / 2)
        assert g.area.sum() == pytest.approx(exact, rel=1e-3)

    def test_degenerate_cell_rejected(self):
        x, y = np.meshgrid(np.arange(3.0), np.arange(3.0), indexing="ij")
        x[1, 1] = x[0, 1]  # collapse: makes a zero/negative-area cell?
        y2 = y.copy()
        y2[1, 1] = y2[1, 0]
        # fully collapse one cell corner onto another to force area ~ 0
        x3 = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        y3 = np.array([[0.0, 1.0], [0.0, 1.0], [0.0, 1.0]])
        with pytest.raises(GridError):
            StructuredGrid2D(x3, y3)

    def test_shape_validation(self):
        with pytest.raises(GridError):
            StructuredGrid2D(np.zeros((3, 3)), np.zeros((3, 4)))
        with pytest.raises(GridError):
            StructuredGrid2D(np.zeros(3), np.zeros(3))

    def test_axisymmetric_volumes_positive(self):
        body = Sphere(1.0)
        g = normal_ray_grid(body, n_s=12, n_normal=8, offset=0.4)
        vol = g.axisymmetric_volumes()
        assert np.all(vol > 0)


class TestBluntBodyGrid:
    def test_wall_nodes_on_body(self):
        body = Hemisphere(1.0)
        g = normal_ray_grid(body, n_s=21, n_normal=11, offset=0.5)
        s = body.arc_grid(21)
        xb, rb = body.point(s)
        assert np.allclose(g.x[:, 0], xb, atol=1e-12)
        assert np.allclose(g.y[:, 0], rb, atol=1e-12)

    def test_outer_boundary_upstream_of_nose(self):
        body = Hemisphere(1.0)
        g = blunt_body_grid(body, n_s=31, n_normal=21, density_ratio=0.12)
        # stagnation ray: outer x < 0 (ahead of the nose at x=0)
        assert g.x[0, -1] < 0.0

    def test_grid_valid_cells(self):
        body = Hemisphere(0.5)
        g = blunt_body_grid(body, n_s=41, n_normal=31)
        assert np.all(g.area > 0)
        assert g.metric_identity_residual() < 1e-12

    def test_wall_clustering(self):
        body = Hemisphere(1.0)
        g = normal_ray_grid(body, n_s=5, n_normal=40, offset=0.5,
                            wall_cluster_beta=3.0)
        d_wall = np.hypot(g.x[0, 1] - g.x[0, 0], g.y[0, 1] - g.y[0, 0])
        d_out = np.hypot(g.x[0, -1] - g.x[0, -2], g.y[0, -1] - g.y[0, -2])
        assert d_wall < d_out / 3


class TestAdaptation:
    def test_uniform_weight_is_identity(self):
        x = np.linspace(0, 1, 30)
        x2 = adapt_1d(x, np.ones_like(x))
        assert np.allclose(x2, x, atol=1e-12)

    def test_clusters_at_gradient(self):
        x = np.linspace(0, 1, 101)
        f = np.tanh((x - 0.5) / 0.02)   # sharp front at 0.5
        w = gradient_weight(x, f, alpha=5.0)
        x2 = adapt_1d(x, w)
        # more points in [0.45, 0.55] than before
        n_before = np.count_nonzero((x > 0.45) & (x < 0.55))
        n_after = np.count_nonzero((x2 > 0.45) & (x2 < 0.55))
        assert n_after > 2 * n_before

    def test_endpoints_fixed(self):
        x = np.linspace(2.0, 5.0, 40)
        w = 1.0 + np.exp(-((x - 3.0) / 0.1) ** 2)
        x2 = adapt_1d(x, w)
        # catlint: disable=CAT010 -- adapt_1d preserves the domain endpoints exactly
        assert x2[0] == 2.0 and x2[-1] == 5.0
        assert np.all(np.diff(x2) > 0)

    def test_n_new_resampling(self):
        x = np.linspace(0, 1, 50)
        x2 = adapt_1d(x, np.ones_like(x), n_new=80)
        assert x2.size == 80

    def test_invalid(self):
        with pytest.raises(GridError):
            adapt_1d(np.array([0.0, 0.0, 1.0]), np.ones(3))
        with pytest.raises(GridError):
            adapt_1d(np.linspace(0, 1, 5), np.zeros(5))
