"""Tests for Millikan-White/Park vibrational relaxation times."""

import numpy as np
import pytest

from repro.constants import P_ATM
from repro.thermo.relaxation import (VibrationalRelaxation,
                                     millikan_white_time,
                                     park_correction_time)
from repro.thermo.species import SPECIES, species_set


class TestMillikanWhite:
    def test_n2_self_relaxation_reference_value(self):
        # classic MW datum: N2-N2 at 1 atm, p*tau ~ 1e-8 atm-s near 8000 K,
        # and of order 1e-4 s at 2000 K
        theta = SPECIES["N2"].theta_v
        mu = 28.0134 / 2.0
        tau2000 = float(millikan_white_time(2000.0, P_ATM, theta, mu))
        tau8000 = float(millikan_white_time(8000.0, P_ATM, theta, mu))
        assert 1e-6 < tau2000 < 1e-3
        assert tau8000 < tau2000 / 30.0

    def test_decreases_with_temperature(self):
        theta = SPECIES["O2"].theta_v
        T = np.linspace(500.0, 10000.0, 40)
        tau = millikan_white_time(T, P_ATM, theta, 16.0)
        assert np.all(np.diff(tau) < 0)

    def test_inverse_pressure_scaling(self):
        theta = SPECIES["N2"].theta_v
        t1 = float(millikan_white_time(3000.0, P_ATM, theta, 14.0))
        t2 = float(millikan_white_time(3000.0, 10 * P_ATM, theta, 14.0))
        assert t1 / t2 == pytest.approx(10.0, rel=1e-10)

    def test_lighter_collider_relaxes_faster(self):
        theta = SPECIES["O2"].theta_v
        mu_heavy = 32.0 * 32.0 / 64.0
        mu_light = 32.0 * 1.0 / 33.0
        th = float(millikan_white_time(3000.0, P_ATM, theta, mu_heavy))
        tl = float(millikan_white_time(3000.0, P_ATM, theta, mu_light))
        assert tl < th


class TestParkCorrection:
    def test_positive_and_grows_with_temperature(self):
        n = 1e22
        t1 = float(park_correction_time(5000.0, n, 28e-3))
        t2 = float(park_correction_time(20000.0, n, 28e-3))
        assert t1 > 0
        # sigma_v ~ T^-2 shrinks faster than c_bar ~ sqrt(T) grows
        assert t2 > t1

    def test_dominates_at_very_high_T(self):
        # Park's point: the MW extrapolation is far too fast at extreme
        # shock temperatures.  The tau_park/tau_MW ratio depends only on T
        # (both scale as 1/n) and crosses unity above ~2.5e4 K.
        theta = SPECIES["N2"].theta_v
        n = 1e21
        ratios = []
        for T in (10000.0, 20000.0, 30000.0):
            p = n * 1.380649e-23 * T
            tau_mw = float(millikan_white_time(T, p, theta, 14.0))
            tau_park = float(park_correction_time(T, n, 28e-3))
            ratios.append(tau_park / tau_mw)
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 1.0


class TestMixtureAverage:
    def test_shapes(self, air11):
        vr = VibrationalRelaxation(air11)
        y = np.zeros((3, 11))
        y[:, air11.index["N2"]] = 0.767
        y[:, air11.index["O2"]] = 0.233
        tau = vr.times(np.full(3, 0.01), np.full(3, 5000.0), y)
        # 6 vibrating species in air11 (N2 O2 NO N2+ O2+ NO+)
        assert tau.shape == (3, 6)
        assert np.all(tau > 0)

    def test_o2_relaxes_faster_than_n2(self, air11):
        vr = VibrationalRelaxation(air11)
        y = np.zeros((1, 11))
        y[:, air11.index["N2"]] = 0.767
        y[:, air11.index["O2"]] = 0.233
        tau = vr.times(np.array([0.1]), np.array([3000.0]), y, park=False)
        names = [air11.names[j] for j in vr.vib_idx]
        tau_n2 = tau[0, names.index("N2")]
        tau_o2 = tau[0, names.index("O2")]
        assert tau_o2 < tau_n2

    def test_park_correction_increases_time(self, air11):
        vr = VibrationalRelaxation(air11)
        y = np.zeros((1, 11))
        y[:, air11.index["N2"]] = 1.0
        t_mw = vr.times(np.array([1e-4]), np.array([12000.0]), y,
                        park=False)
        t_full = vr.times(np.array([1e-4]), np.array([12000.0]), y,
                          park=True)
        assert np.all(t_full > t_mw)

    def test_atomic_bath_still_finite(self, air11):
        # composition of pure atoms: vibrating species times remain finite
        vr = VibrationalRelaxation(air11)
        y = np.zeros((1, 11))
        y[:, air11.index["N"]] = 1.0
        tau = vr.times(np.array([0.01]), np.array([8000.0]), y)
        assert np.all(np.isfinite(tau)) and np.all(tau > 0)
