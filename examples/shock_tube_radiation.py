"""Shock-tube nonequilibrium radiation (the Park Ref. 22/23 workflow).

Computes the two-temperature relaxation behind a strong normal shock,
then the spectral emission a shock-tube spectrometer would record, for a
sweep of shock speeds — showing how strongly nonequilibrium radiation
switches on with velocity.

Run:  python examples/shock_tube_radiation.py
"""

import numpy as np

from repro.constants import TORR
from repro.postprocess.ascii_plot import ascii_plot
from repro.postprocess.tables import format_table
from repro.radiation.neqair import NonequilibriumRadiator
from repro.solvers.shock_relaxation import ShockRelaxationSolver


def main():
    solver = ShockRelaxationSolver("air11")
    rad = NonequilibriumRadiator(solver.db)
    lam = np.linspace(0.2e-6, 1.0e-6, 500)
    rows = []
    spectra = []
    for u1 in (8000.0, 10000.0):
        prof = solver.solve(u1=u1, p1=0.1 * TORR, T1=300.0, x_end=0.02,
                            n_out=120, rtol=1e-6)
        I = rad.from_relaxation_profile(prof, lam)
        i_eq = -1
        rows.append((u1 / 1e3, float(prof.T[0]), float(prof.T[i_eq]),
                     float(prof.Tv.max()),
                     float(prof.electron_number_density.max()),
                     float(np.trapezoid(I, lam))))
        spectra.append((lam * 1e6, np.maximum(I / I.max(), 1e-6),
                        f"{u1 / 1e3:.0f} km/s"))
    print("Post-shock relaxation and emission, p1 = 0.1 Torr air")
    print(format_table(
        ["u1 [km/s]", "T frozen [K]", "T eq [K]", "Tv max [K]",
         "n_e max [1/m^3]", "radiance [W/m^2/sr]"], rows))
    print(ascii_plot(spectra, logy=True,
                     title="normalised emission spectra",
                     xlabel="wavelength [um]",
                     ylabel="relative radiance"))
    print("\nFeatures: N2+ first negative (0.39 um) and N2 second "
          "positive (0.34 um) in the violet; N and O atomic lines in "
          "the near infrared — the Fig. 8 structure.")


if __name__ == "__main__":
    main()
