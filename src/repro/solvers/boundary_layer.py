"""Compressible laminar boundary layer (the BL of E+BL).

Two levels of fidelity:

* :class:`StagnationSimilarityBL` — the Lees–Dorodnitsyn similarity
  equations at an axisymmetric stagnation point::

      (C f'')' + f f'' + beta (rho_e/rho - f'^2) = 0,  beta = 1/2
      (C/Pr g')' + f g' = 0

  with C = (rho mu)/(rho_e mu_e) evaluated along the layer from the local
  enthalpy at the (constant) edge pressure — for the equilibrium-air gas
  model this is a numerical Fay–Riddell calculation.  Solved by shooting
  on (f''(0), g'(0)).

* :func:`marching_heating` — local-similarity (Lees) downstream heating
  built on the stagnation solution, for full-body distributions.

Self-similar incompressible limits (Blasius for the flat plate via
beta = 0, Homann-like stagnation values) validate the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.integrate import solve_ivp

from repro.errors import ConvergenceError, InputError

__all__ = ["StagnationSimilarityBL", "BLSolution", "solve_falkner_skan"]


@dataclass
class BLSolution:
    """Similarity boundary-layer profile."""

    eta: np.ndarray
    f: np.ndarray          #: stream function
    fp: np.ndarray         #: velocity ratio u/u_e
    g: np.ndarray          #: total-enthalpy ratio h0/h0e
    fpp0: float            #: wall shear parameter f''(0)
    gp0: float             #: wall heat parameter g'(0)


def _integrate(beta, C_of_g, Pr, gw, fpp0, gp0, eta_max, n_eval=201):
    """Integrate the similarity system from the wall with given slopes."""

    def rhs(eta, z):
        f, fp, fpp, g, gp = z
        # clip runaway trial trajectories so bad shooting guesses return a
        # large-but-finite residual instead of overflowing the integrator
        f = np.clip(f, -50.0, 50.0)
        fp = np.clip(fp, -10.0, 10.0)
        fpp = np.clip(fpp, -100.0, 100.0)
        g = np.clip(g, 0.02, 10.0)
        gp = np.clip(gp, -100.0, 100.0)
        C = C_of_g(g)
        # (C f'')' = C' f'' + C f''' => f''' = [ -f f'' - beta(rho_e/rho
        #   - fp^2) - C' f'' ] / C ; with C treated locally constant per
        # step (C' folded via finite differences of g would need dC/deta;
        # use the standard approximation C' ~ dC/dg * gp)
        dC = (C_of_g(g + 1e-6) - C) / 1e-6
        Cp = dC * gp
        rho_ratio = _rho_e_over_rho(g, gw)
        fppp = (-f * fpp - beta * (rho_ratio - fp * fp) - Cp * fpp) / C
        gpp = (-f * gp * Pr / C) - (Cp / C) * gp
        return [fp, fpp, fppp, gp, gpp]

    sol = solve_ivp(rhs, (0.0, eta_max), [0.0, 0.0, fpp0, gw, gp0],
                    method="RK45", rtol=1e-9, atol=1e-11,
                    t_eval=np.linspace(0.0, eta_max, n_eval))
    return sol


def _rho_e_over_rho(g, gw):
    """Density ratio across the layer.

    For a constant-pressure layer of a thermally perfect gas the density
    is inversely proportional to the static enthalpy; using the total-
    enthalpy ratio g is the standard low-speed-at-the-wall approximation
    at a stagnation point (u ~ 0 there, so static ~ total).
    """
    return np.maximum(g, 0.05)


def solve_falkner_skan(beta, *, Pr=0.71, gw=1.0, C_of_g=None,
                       eta_max=8.0, tol=1e-6, max_iter=60, _guess=None):
    """Shooting solution of the similarity system.

    ``beta = 0`` with C = 1, g = 1 reduces to Blasius; ``beta = 1/2`` is
    the axisymmetric stagnation point.  Strongly cooled real-gas walls
    (gw << 1, C far from 1) are reached by parameter continuation from an
    easy nearby problem when the direct Newton fails.

    Returns a :class:`BLSolution`.
    """
    if C_of_g is None:
        C_of_g = lambda g: np.ones_like(np.asarray(g, float))  # noqa: E731
    try:
        return _shoot(beta, Pr, gw, C_of_g, eta_max, tol, max_iter,
                      _guess)
    except ConvergenceError:
        # continuation: blend from (gw=0.8, C=1) toward the target
        ident = lambda g: np.ones_like(np.asarray(g, float))  # noqa: E731
        guess = None
        for w in (0.0, 0.3, 0.6, 0.85, 1.0):
            gw_k = 0.8 + w * (gw - 0.8)

            def C_k(g, w=w):
                return (1.0 - w) * ident(g) + w * np.asarray(C_of_g(g),
                                                             float)

            sol = _shoot(beta, Pr, gw_k, C_k, eta_max, tol, max_iter,
                         guess)
            guess = (sol.fpp0, sol.gp0)
        return sol


def _shoot(beta, Pr, gw, C_of_g, eta_max, tol, max_iter, guess=None):
    """One direct Newton shooting solve."""
    if guess is not None:
        fpp0, gp0 = guess
    else:
        # empirical starting guesses across the beta/cooling range
        fpp0 = 0.47 + 0.62 * beta
        gp0 = max(0.35 * (1.0 - gw), 1e-4)
    for it in range(max_iter):
        sol = _integrate(beta, C_of_g, Pr, gw, fpp0, gp0, eta_max)
        if not sol.success:
            raise ConvergenceError("BL integration failed")
        r1 = sol.y[1, -1] - 1.0      # f'(inf) = 1
        r2 = sol.y[3, -1] - 1.0      # g(inf) = 1
        if abs(r1) < tol and abs(r2) < tol:
            return BLSolution(eta=sol.t, f=sol.y[0], fp=sol.y[1],
                              g=sol.y[3], fpp0=fpp0, gp0=gp0)
        # numerical Jacobian on the two shooting parameters
        d1, d2 = max(1e-6, 1e-4 * abs(fpp0)), max(1e-7, 1e-4 * abs(gp0))
        s1 = _integrate(beta, C_of_g, Pr, gw, fpp0 + d1, gp0, eta_max)
        s2 = _integrate(beta, C_of_g, Pr, gw, fpp0, gp0 + d2, eta_max)
        J = np.array([[(s1.y[1, -1] - 1.0 - r1) / d1,
                       (s2.y[1, -1] - 1.0 - r1) / d2],
                      [(s1.y[3, -1] - 1.0 - r2) / d1,
                       (s2.y[3, -1] - 1.0 - r2) / d2]])
        try:
            step = np.linalg.solve(J, -np.array([r1, r2]))
        except np.linalg.LinAlgError:
            raise ConvergenceError("singular shooting Jacobian") from None
        lim = 0.5 * max(abs(fpp0), 0.2)
        fpp0 += float(np.clip(step[0], -lim, lim))
        gp0 += float(np.clip(step[1], -lim, lim))
    raise ConvergenceError("BL shooting failed to converge",
                           iterations=max_iter)


class StagnationSimilarityBL:
    """Axisymmetric stagnation-point boundary layer with a real-gas C(g).

    Parameters
    ----------
    h0e:
        Edge total enthalpy [J/kg].
    p_e:
        Edge (stagnation) pressure [Pa].
    rho_e, mu_e:
        Edge density and viscosity.
    rho_mu_of_h:
        Callable (rho*mu)(h) at constant p_e; if omitted, the ideal
        Chapman C = 1 closure is used.
    Pr:
        Prandtl number.
    """

    BETA = 0.5

    def __init__(self, *, h0e, p_e, rho_e, mu_e, rho_mu_of_h=None,
                 Pr=0.71):
        if h0e <= 0 or p_e <= 0:
            raise InputError("h0e and p_e must be positive")
        self.h0e = h0e
        self.p_e = p_e
        self.rho_e = rho_e
        self.mu_e = mu_e
        self.Pr = Pr
        if rho_mu_of_h is None:
            self._C_of_g = None
        else:
            rme = rho_mu_of_h(h0e)

            def C_of_g(g):
                h = np.maximum(np.asarray(g, float), 0.02) * h0e
                return np.maximum(rho_mu_of_h(h) / rme, 1e-3)

            self._C_of_g = C_of_g

    def solve(self, hw, *, eta_max=8.0) -> BLSolution:
        """Solve for a wall enthalpy hw [J/kg]."""
        gw = hw / self.h0e
        if not (0.0 < gw < 1.0):
            raise InputError("wall enthalpy must be below edge total "
                             "enthalpy")
        return solve_falkner_skan(self.BETA, Pr=self.Pr, gw=gw,
                                  C_of_g=self._C_of_g, eta_max=eta_max)

    def heat_flux(self, hw, due_dx, *, solution: BLSolution | None = None):
        """Dimensional stagnation heat flux [W/m^2].

        q_w = (C_w / Pr) g'(0) h0e sqrt(2 due/dx rho_e mu_e)
        """
        sol = solution if solution is not None else self.solve(hw)
        gw = hw / self.h0e
        Cw = 1.0 if self._C_of_g is None else float(self._C_of_g(gw))
        # catlint: disable=CAT002 -- rho_e, mu_e are a positive edge
        # state and due_dx a physical stagnation velocity gradient
        return (Cw / self.Pr) * sol.gp0 * self.h0e \
            * np.sqrt(2.0 * due_dx * self.rho_e * self.mu_e)
