"""Experiment drivers: one module per paper figure.

Each module exposes ``run(quick=False) -> dict`` (the computed series) and
``main()`` (a printable report).  The benchmark harness regenerates every
figure through these drivers; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments import (fig1_flight_domain, fig2_titan_heating,
                               fig3_species_profiles, fig4_shock_shape,
                               fig5_orbiter_geometry, fig6_windward_heating,
                               fig7_shock_relaxation, fig8_spectra,
                               fig9_n2_contours)

__all__ = ["fig1_flight_domain", "fig2_titan_heating",
           "fig3_species_profiles", "fig4_shock_shape",
           "fig5_orbiter_geometry", "fig6_windward_heating",
           "fig7_shock_relaxation", "fig8_spectra", "fig9_n2_contours"]
