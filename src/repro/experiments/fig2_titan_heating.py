"""Fig. 2 — Titan probe stagnation heating pulses (convective + radiative).

Reproduces the Ref. 15 RASLE result: a 12 km/s Titan entry produces a
radiative stagnation pulse (CN-violet dominated) that rivals or exceeds
the *net* convective pulse near peak heating.

Pipeline: Titan entry trajectory -> equilibrium VSL stagnation solution at
each trajectory point -> tangent-slab radiative flux + similarity
convective flux.  The convective flux is reduced by a steady-state-ablation
blockage factor (Ref. 15's probe flew an ablative TPS; the hot-wall,
blowing-reduced convective load is what its Fig. 2 plots)::

    q_conv_net = q_conv / (1 + 0.72 * B')     B' = q_conv / (rho_inf V h0)

a standard transpiration-blockage correlation.
"""

from __future__ import annotations

import numpy as np

from repro.atmosphere import TitanAtmosphere
from repro.postprocess.ascii_plot import ascii_plot
from repro.solvers.vsl import StagnationVSL
from repro.thermo.equilibrium import (EquilibriumGas,
                                      titan_reference_mass_fractions)
from repro.thermo.species import species_set
from repro.trajectory import TITAN_PROBE, integrate_entry

__all__ = ["run", "main", "ENTRY"]

#: Entry-interface state (12 km/s hyperbolic arrival; steep angle for
#: capture — see tests/test_trajectory.py).
ENTRY = dict(h0=800e3, V0=12000.0, gamma0_deg=-40.0)

_BLOWING_COEFF = 0.72


def run(quick: bool = False, *, n_points: int | None = None) -> dict:
    """Heating pulses along the Titan entry.  Returns time series."""
    atm = TitanAtmosphere()
    tr = integrate_entry(TITAN_PROBE, atm, t_max=2000.0, V_stop=1500.0,
                         **ENTRY)
    n_points = n_points or (6 if quick else 14)
    # sample points bracketing peak heating (rho^0.5 V^3 proxy)
    # catlint: disable=CAT002 -- hydrostatic atmosphere density > 0
    proxy = np.sqrt(tr.rho) * tr.V**3
    i_pk = int(np.argmax(proxy))
    t_lo = tr.t[max(i_pk - 1, 0)] - 25.0
    t_hi = tr.t[min(i_pk + 1, len(tr.t) - 1)] + 35.0
    times = np.linspace(max(tr.t[0], t_lo), min(tr.t[-1], t_hi), n_points)
    db = species_set("titan9")
    gas = EquilibriumGas(db, titan_reference_mass_fractions(db))
    vsl = StagnationVSL(gas, nose_radius=TITAN_PROBE.nose_radius)
    n_lambda = 160 if quick else 400
    q_conv, q_rad, q_conv_net = [], [], []
    h_pts = np.interp(times, tr.t, tr.h)
    V_pts = np.interp(times, tr.t, tr.V)
    sols = []
    for h, V in zip(h_pts, V_pts):
        rho = float(atm.density(h))
        T = float(atm.temperature(h))
        sol = vsl.solve(rho_inf=rho, T_inf=T, V=float(V), T_wall=1800.0,
                        n_lambda=n_lambda,
                        n_profile=40 if quick else 80)
        sols.append(sol)
        q_conv.append(sol.q_conv)
        q_rad.append(sol.q_rad)
        # ablation blockage: B' compares the convective load to the
        # freestream enthalpy flux (the blowing driver)
        b_prime = sol.q_conv / max(rho * V * 0.5 * V**2, 1e-30)
        q_conv_net.append(sol.q_conv / (1.0 + _BLOWING_COEFF * b_prime))
    return {"t": times, "h": h_pts, "V": V_pts,
            "q_conv": np.array(q_conv), "q_rad": np.array(q_rad),
            "q_conv_net": np.array(q_conv_net),
            "peak_index": int(np.argmax(np.array(q_rad))),
            "solutions": sols,
            "trajectory": tr}


def main(quick: bool = True) -> str:
    res = run(quick)
    txt = ascii_plot(
        [(res["t"], res["q_conv_net"] / 1e4, "convective"),
         (res["t"], res["q_rad"] / 1e4, "radiative")],
        title="Fig. 2 - Titan probe heating pulses [W/cm^2]",
        xlabel="time [s]", ylabel="q [W/cm^2]")
    i = res["peak_index"]
    txt += (f"\npeak radiative {res['q_rad'][i] / 1e4:.1f} W/cm^2 at "
            f"t={res['t'][i]:.1f} s (V={res['V'][i]:.0f} m/s, "
            f"h={res['h'][i] / 1e3:.0f} km)")
    return txt


if __name__ == "__main__":
    print(main())
