"""Engineering model of Titan's atmosphere (N2 with a few percent CH4).

The Fig. 2/3 experiment (RASLE Titan-probe solutions of Ref. 15) needs an
entry atmosphere for Saturn's largest moon.  We use a piecewise-linear
temperature profile fitted to the Voyager-era structure the 1985 study had
available — 94 K at the surface, a tropopause minimum of ~71 K near 40 km,
warming through the stratosphere to ~170 K near 200 km and roughly
isothermal above (the organic-haze region the paper mentions) — integrated
hydrostatically for pressure.

This is a *substitution* for the mission-specific engineering model
(documented in DESIGN.md): what matters for the heating-pulse experiment is
the density scale height (~40 km at entry-interface altitudes) and surface
pressure (1.5 bar), both honoured here.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MU_TITAN, R_TITAN
from repro.atmosphere.base import Atmosphere

__all__ = ["TitanAtmosphere"]

#: Temperature profile nodes: altitude [m] -> T [K].
_H_NODES = np.array([0.0, 40e3, 100e3, 200e3, 400e3, 800e3, 1500e3])
_T_NODES = np.array([94.0, 71.0, 130.0, 170.0, 175.0, 178.0, 180.0])

_P_SURFACE = 1.5 * 101325.0


class TitanAtmosphere(Atmosphere):
    """Hydrostatic Titan model over a piecewise-linear T profile."""

    #: N2 with ~5 mol% CH4: mean molar mass ~27.4 g/mol.
    gas_constant = 8.31446 / 27.42e-3
    gamma = 1.4
    planet_radius = R_TITAN
    mu_grav = MU_TITAN

    def __init__(self, n_quad: int = 4000):
        # precompute ln p on a fine grid by hydrostatic quadrature
        h = np.linspace(0.0, _H_NODES[-1], n_quad)
        T = np.interp(h, _H_NODES, _T_NODES)
        g = self.mu_grav / (self.planet_radius + h) ** 2
        integrand = g / (self.gas_constant * T)
        lnp = np.log(_P_SURFACE) - np.concatenate(
            ([0.0], np.cumsum(0.5 * (integrand[1:] + integrand[:-1])
                              * np.diff(h))))
        self._h_grid = h
        self._lnp_grid = lnp

    def temperature(self, h):
        h = np.asarray(h, dtype=float)
        return np.interp(h, _H_NODES, _T_NODES)

    def pressure(self, h):
        h = np.asarray(h, dtype=float)
        lnp = np.interp(h, self._h_grid, self._lnp_grid)
        # exponential continuation above the grid
        top = self._lnp_grid[-1] - (h - self._h_grid[-1]) * (
            self.mu_grav / (self.planet_radius + self._h_grid[-1]) ** 2
            / (self.gas_constant * _T_NODES[-1]))
        return np.exp(np.where(h > self._h_grid[-1], top, lnp))
