"""Mixture thermodynamics over a fixed species set.

Combines per-species statmech properties with mass fractions.  All methods
are batched: mass-fraction arrays have a trailing species axis and broadcast
against temperature arrays of the leading shape.
"""

from __future__ import annotations

import numpy as np

from repro.constants import R_UNIVERSAL
from repro.errors import ConvergenceError
from repro.thermo.species import SpeciesDB, species_set
from repro.thermo.statmech import ThermoSet

__all__ = ["MixtureThermo"]


class MixtureThermo:
    """Frozen-composition mixture property evaluator.

    Parameters
    ----------
    db:
        Species set, or anything :func:`repro.thermo.species.species_set`
        accepts.
    """

    def __init__(self, db: SpeciesDB | str):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        self.thermo = ThermoSet(self.db)

    # -- composition-dependent gas constants ---------------------------------

    def gas_constant(self, y):
        """Mixture specific gas constant R [J/(kg K)] from mass fractions."""
        y = np.asarray(y, dtype=float)
        return R_UNIVERSAL * np.sum(y / self.db.molar_mass, axis=-1)

    def molar_mass(self, y):
        """Mixture molar mass [kg/mol]."""
        return R_UNIVERSAL / self.gas_constant(y)

    # -- caloric properties ----------------------------------------------------

    def cp_mass(self, T, y):
        """Frozen specific heat at constant pressure [J/(kg K)]."""
        y = np.asarray(y, dtype=float)
        return np.sum(y * self.thermo.cp_mass(T), axis=-1)

    def cv_mass(self, T, y):
        """Frozen specific heat at constant volume [J/(kg K)]."""
        return self.cp_mass(T, y) - self.gas_constant(y)

    def h_mass(self, T, y):
        """Mixture specific enthalpy, incl. formation [J/kg]."""
        y = np.asarray(y, dtype=float)
        return np.sum(y * self.thermo.h_mass(T), axis=-1)

    def e_mass(self, T, y):
        """Mixture specific internal energy, incl. formation [J/kg]."""
        y = np.asarray(y, dtype=float)
        return np.sum(y * self.thermo.e_mass(T), axis=-1)

    def s_mass(self, T, p, y):
        """Mixture specific entropy [J/(kg K)] at (T, p, composition).

        Each species contributes its pure-gas entropy at its partial
        pressure (ideal mixing): s = sum y_j s_j(T, x_j p) / M_j.
        """
        y = np.asarray(y, dtype=float)
        x = self.db.mass_to_mole(np.maximum(y, 1e-60))
        s0 = self.thermo.s0(T)  # (..., n) at standard pressure
        from repro.thermo.statmech import P_STANDARD
        p_j = np.maximum(x * np.asarray(p, dtype=float)[..., None]
                         if np.ndim(p) else x * p, 1e-100)
        s_j = s0 - R_UNIVERSAL * np.log(p_j / P_STANDARD)
        return np.sum(y * s_j / self.db.molar_mass, axis=-1)

    def gamma_frozen(self, T, y):
        """Frozen ratio of specific heats."""
        cp = self.cp_mass(T, y)
        # catlint: disable=CAT003 -- cp = cv + R > R for any mixture
        # (translational cv >= 1.5 R)
        return cp / (cp - self.gas_constant(y))

    def sound_speed_frozen(self, T, y):
        """Frozen speed of sound [m/s]."""
        # catlint: disable=CAT002 -- gamma > 1, R > 0 and physical T > 0
        return np.sqrt(self.gamma_frozen(T, y) * self.gas_constant(y)
                       * np.asarray(T, dtype=float))

    def pressure(self, rho, T, y):
        """Ideal-mixture pressure p = rho R(y) T [Pa]."""
        return (np.asarray(rho, dtype=float) * self.gas_constant(y)
                * np.asarray(T, dtype=float))

    def density(self, p, T, y):
        """Density from p, T and composition [kg/m^3]."""
        return (np.asarray(p, dtype=float)
                / (self.gas_constant(y) * np.asarray(T, dtype=float)))

    # -- inverse lookups --------------------------------------------------------

    def T_from_e(self, e, y, *, T_guess=None, tol=1.0e-9, max_iter=60):
        """Invert e(T, y) for temperature with batched Newton iteration.

        Parameters
        ----------
        e:
            Specific internal energy [J/kg], any shape S.
        y:
            Mass fractions, shape S + (n,) (or broadcastable).
        T_guess:
            Optional starting temperature; defaults to 1000 K everywhere.

        Raises
        ------
        ConvergenceError
            If any element fails to converge in ``max_iter`` iterations.
        """
        e = np.asarray(e, dtype=float)
        y = np.asarray(y, dtype=float)
        T = (np.full(e.shape, 1000.0, dtype=np.float64) if T_guess is None
             else np.broadcast_to(np.asarray(T_guess, dtype=float),
                                  e.shape).copy())
        scale = np.maximum(np.abs(e), 1.0e3)
        for _ in range(max_iter):
            f = self.e_mass(T, y) - e
            cv = np.maximum(self.cv_mass(T, y), 1.0)
            dT = -f / cv
            # keep Newton inside a trust region so cold/hot guesses recover
            dT = np.clip(dT, -0.5 * T, 2.0 * T)
            T = np.maximum(T + dT, 10.0)
            if np.all(np.abs(f) <= tol * scale + 1.0e-6):
                return T
        bad = np.abs(self.e_mass(T, y) - e) > 1e-5 * scale
        raise ConvergenceError(
            f"T_from_e failed for {int(np.count_nonzero(bad))} state(s)",
            iterations=max_iter,
            residual=float(np.max(np.abs(self.e_mass(T, y) - e) / scale)))

    def T_from_h(self, h, y, *, T_guess=None, tol=1.0e-9, max_iter=60):
        """Invert h(T, y) for temperature (batched Newton)."""
        h = np.asarray(h, dtype=float)
        y = np.asarray(y, dtype=float)
        T = (np.full(h.shape, 1000.0, dtype=np.float64) if T_guess is None
             else np.broadcast_to(np.asarray(T_guess, dtype=float),
                                  h.shape).copy())
        scale = np.maximum(np.abs(h), 1.0e3)
        for _ in range(max_iter):
            f = self.h_mass(T, y) - h
            cp = np.maximum(self.cp_mass(T, y), 1.0)
            dT = np.clip(-f / cp, -0.5 * T, 2.0 * T)
            T = np.maximum(T + dT, 10.0)
            if np.all(np.abs(f) <= tol * scale + 1.0e-6):
                return T
        raise ConvergenceError("T_from_h failed to converge",
                               iterations=max_iter)
