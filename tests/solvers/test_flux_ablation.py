"""Ablation tests: upwind scheme choice on the blunt-body solver, and the
Jupiter (H2/He/H) gas path."""

import numpy as np
import pytest

from repro.core.gas import IdealGasEOS, TabulatedEOS
from repro.errors import InputError
from repro.geometry import Hemisphere
from repro.grid import blunt_body_grid
from repro.solvers.euler2d import AxisymmetricEulerSolver


def _run(flux, n_steps=900):
    body = Hemisphere(1.0)
    grid = blunt_body_grid(body, n_s=25, n_normal=35, density_ratio=0.2,
                           margin=2.5)
    s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4), flux=flux)
    rho, T = 0.01, 220.0
    s.set_freestream(rho, 8.0 * np.sqrt(1.4 * 287.0528 * T),
                     rho * 287.0528 * T)
    s.run(n_steps=n_steps, cfl=0.35)
    return s


class TestFluxSchemeAblation:
    @pytest.mark.parametrize("flux", ["hlle", "steger_warming",
                                      "van_leer"])
    def test_all_schemes_capture_the_shock(self, flux):
        s = _run(flux)
        delta = s.stagnation_standoff()
        # all upwind schemes land on the same physics within grid error
        assert 0.08 < delta < 0.20

    def test_scheme_agreement_on_stagnation_pressure(self):
        results = {flux: _run(flux) for flux in ("hlle",
                                                 "steger_warming")}
        p = {k: v.surface_pressure()[2][0] for k, v in results.items()}
        # coarse-grid shock smearing differs slightly between schemes
        assert p["hlle"] == pytest.approx(p["steger_warming"], rel=0.05)

    def test_fvs_rejects_real_gas(self):
        body = Hemisphere(1.0)
        grid = blunt_body_grid(body, n_s=11, n_normal=11)
        with pytest.raises(InputError):
            AxisymmetricEulerSolver(grid, TabulatedEOS(),
                                    flux="van_leer")

    def test_unknown_flux(self):
        body = Hemisphere(1.0)
        grid = blunt_body_grid(body, n_s=11, n_normal=11)
        with pytest.raises(InputError):
            AxisymmetricEulerSolver(grid, flux="psychic")


class TestJupiterGas:
    def test_h2_dissociation_equilibrium(self):
        from repro.thermo.equilibrium import EquilibriumGas
        from repro.thermo.species import species_set
        db = species_set("jupiter3")
        gas = EquilibriumGas(db, {"H2": 0.75, "He": 0.25})
        # cold: frozen H2/He
        y_cold, _ = gas.composition_T_p(np.array(300.0), np.array(1e5))
        assert y_cold[db.index["H2"]] == pytest.approx(0.75, abs=1e-6)
        # hot: H2 dissociates into H (Galileo shock layers)
        y_hot, _ = gas.composition_T_p(np.array(6000.0), np.array(1e4))
        assert y_hot[db.index["H"]] > 0.5
        assert y_hot[db.index["He"]] == pytest.approx(0.25, abs=1e-6)

    def test_jupiter_shock_density_ratio(self):
        # Galileo-class entry: even H2 chemistry lifts the density ratio
        # above the ideal diatomic limit of 6
        from repro.thermo.equilibrium import EquilibriumGas
        from repro.thermo.species import species_set
        from repro.solvers.shock import equilibrium_normal_shock
        db = species_set("jupiter3")
        gas = EquilibriumGas(db, {"H2": 0.75, "He": 0.25})
        res = equilibrium_normal_shock(gas, 1e-4, 165.0, 20000.0)
        assert 1.0 / res["eps"] > 7.0
        assert res["T2"] < 25000.0  # far below the frozen value
