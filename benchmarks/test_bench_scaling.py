"""Benchmark: strong scaling of the decomposed stencil solvers.

The venue-context experiment: speedup/efficiency vs worker count at fixed
problem size, through the shared-memory halo-exchange pool.  On a
single-core container the table quantifies synchronisation overhead (and
cache-blocking effects) instead of true speedup — the harness reports the
visible CPU count so the numbers are interpretable either way.
"""

import os

import numpy as np

from repro.parallel.scaling import run_strong_scaling
from repro.postprocess.tables import format_table


def test_bench_strong_scaling_heat(once):
    res = once(run_strong_scaling, "heat5",
               shape=(768, 768), n_steps=10, workers=(1, 2, 4))
    assert len(res.times) == 3
    assert all(t > 0 for t in res.times)
    rows = [(p, t, s, e) for p, t, s, e in res.rows()]
    print(f"\nStrong scaling, heat5 768x768x10 steps "
          f"(host cpus: {res.cpu_count}; serial "
          f"{res.serial_time:.3f} s)")
    print(format_table(["workers", "time [s]", "speedup", "efficiency"],
                       rows))
    # sanity: the parallel pool produces a finite, positive timing table
    # and (given >1 cpu) improves with workers; on 1 cpu we only require
    # it completes and the overhead stays bounded
    if res.cpu_count >= 4:
        assert res.speedups[-1] > 1.5
    else:
        assert res.times[-1] < 50 * res.serial_time


def test_bench_strong_scaling_euler(once):
    # 1-D Euler kernel through the same pool
    n = 40000
    xc = (np.arange(n) + 0.5) / n
    U0 = np.zeros((n, 3))
    U0[:, 0] = np.where(xc < 0.5, 1.0, 0.125)
    U0[:, 2] = np.where(xc < 0.5, 1.0, 0.1) / 0.4

    from repro.parallel import SharedMemoryStencilPool

    def run_all():
        out = {}
        for p in (1, 2):
            pool = SharedMemoryStencilPool("euler1d_hlle", n_workers=p)
            _, t = pool.run(U0, 10, {"dt_dx": 0.2})
            out[p] = t
        return out

    times = once(run_all)
    print("\nEuler-kernel pool times:",
          {p: f"{t:.3f} s" for p, t in times.items()})
    assert all(t > 0 for t in times.values())
