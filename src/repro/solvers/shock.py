"""Shock-wave and isentropic-flow relations, ideal and equilibrium gas.

The frozen (calorically perfect) relations are closed-form; the equilibrium
real-gas normal shock iterates the Rankine–Hugoniot system against the
Gibbs equilibrium solver — the density ratio no longer saturates at
(gamma+1)/(gamma-1) ~ 6 but climbs toward 15+ as dissociation absorbs the
shock heating, which is exactly the standoff-distance physics of Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, InputError
from repro.thermo.equilibrium import EquilibriumGas

__all__ = ["normal_shock_ideal", "isentropic_ratios", "oblique_shock_beta",
           "pitot_pressure_ideal", "equilibrium_normal_shock",
           "frozen_post_shock_state"]


def normal_shock_ideal(M1, gamma: float = 1.4):
    """Ideal-gas normal-shock jump ratios.

    Returns dict with p2/p1, rho2/rho1, T2/T1, M2, p02/p01.
    """
    M1 = np.asarray(M1, dtype=float)
    if np.any(M1 <= 1.0):
        raise InputError("normal shock requires M1 > 1")
    if gamma <= 1.0:
        raise InputError("gamma must exceed 1")
    g = gamma
    m2 = M1 * M1
    p_ratio = 1.0 + 2.0 * g / (g + 1.0) * (m2 - 1.0)
    rho_ratio = (g + 1.0) * m2 / ((g - 1.0) * m2 + 2.0)
    T_ratio = p_ratio / rho_ratio
    # catlint: disable=CAT002,CAT003 -- g > 1 and m2 > 1 validated, so
    # the argument and the denominator 2 g m2 - (g - 1) > g + 1 stay
    # positive
    M2 = np.sqrt(((g - 1.0) * m2 + 2.0) / (2.0 * g * m2 - (g - 1.0)))
    # catlint: disable=CAT003 -- g > 1 validated above
    p0_ratio = (rho_ratio ** (g / (g - 1.0))
                * p_ratio ** (-1.0 / (g - 1.0)))
    return {"p_ratio": p_ratio, "rho_ratio": rho_ratio,
            "T_ratio": T_ratio, "M2": M2, "p0_ratio": p0_ratio}


def isentropic_ratios(M, gamma: float = 1.4):
    """Stagnation-to-static isentropic ratios at Mach M."""
    M = np.asarray(M, dtype=float)
    if gamma <= 1.0:
        raise InputError("gamma must exceed 1")
    g = gamma
    T0_T = 1.0 + 0.5 * (g - 1.0) * M * M
    # catlint: disable=CAT003 -- g > 1 validated above
    return {"T0_T": T0_T,
            "p0_p": T0_T ** (g / (g - 1.0)),
            "rho0_rho": T0_T ** (1.0 / (g - 1.0))}


def pitot_pressure_ideal(M1, p1, gamma: float = 1.4):
    """Rayleigh pitot pressure behind a normal shock at supersonic M1."""
    ns = normal_shock_ideal(M1, gamma)
    isen = isentropic_ratios(ns["M2"], gamma)
    return np.asarray(p1, dtype=float) * ns["p_ratio"] * isen["p0_p"]


def oblique_shock_beta(M1, theta_rad, gamma: float = 1.4, *, weak=True,
                       tol=1e-12, max_iter=200):
    """Shock angle beta for flow deflection theta (theta-beta-M relation).

    Parameters
    ----------
    weak:
        Select the weak (attached) branch.

    Raises
    ------
    InputError
        If the deflection exceeds the maximum attached-shock angle.
    """
    M1 = float(M1)
    theta = float(theta_rad)
    if M1 <= 1.0:
        raise InputError("oblique shock requires M1 > 1")
    if theta <= 0.0:
        return np.arcsin(1.0 / M1)  # Mach wave

    def theta_of_beta(beta):
        m2 = M1 * M1
        num = m2 * np.sin(beta) ** 2 - 1.0
        den = m2 * (gamma + np.cos(2.0 * beta)) + 2.0
        return np.arctan(2.0 / np.tan(beta) * num / den)

    beta_min = np.arcsin(1.0 / M1) + 1e-9
    beta_max = np.pi / 2.0 - 1e-9
    # locate the maximum deflection to split branches
    bs = np.linspace(beta_min, beta_max, 400)
    ths = np.array([theta_of_beta(b) for b in bs])
    i_max = int(np.argmax(ths))
    if theta > ths[i_max]:
        raise InputError(f"deflection {np.rad2deg(theta):.2f} deg exceeds "
                         f"max {np.rad2deg(ths[i_max]):.2f} deg (detached)")
    lo, hi = ((beta_min, bs[i_max]) if weak else (bs[i_max], beta_max))
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        t_mid = theta_of_beta(mid)
        if weak:
            lo, hi = (mid, hi) if t_mid < theta else (lo, mid)
        else:
            lo, hi = (mid, hi) if t_mid > theta else (lo, mid)
        if hi - lo < tol:
            return 0.5 * (lo + hi)
    raise ConvergenceError("theta-beta-M bisection failed",
                           iterations=max_iter)


def frozen_post_shock_state(rho1, T1, u1, *, gamma=1.4, R=287.0528):
    """Dimensional ideal-gas post-shock state for upstream (rho1, T1, u1).

    Returns dict with rho2, T2, p2, u2.
    """
    a1 = np.sqrt(gamma * R * T1)  # catlint: disable=CAT002 -- physical upstream T1 > 0, gamma/R positive
    M1 = u1 / a1
    ns = normal_shock_ideal(M1, gamma)
    rho2 = rho1 * ns["rho_ratio"]
    T2 = T1 * ns["T_ratio"]
    p2 = rho1 * R * T1 * ns["p_ratio"]
    return {"rho2": rho2, "T2": T2, "p2": p2,
            "u2": u1 / ns["rho_ratio"]}


def equilibrium_normal_shock(gas: EquilibriumGas, rho1, T1, u1, *,
                             tol=1e-10, max_iter=100):
    """Normal shock with equilibrium real-gas downstream state.

    Upstream is taken as the (frozen) reference mixture at (rho1, T1)
    moving at u1 in the shock frame.  Solves Rankine–Hugoniot by fixed-
    point iteration on the inverse density ratio::

        eps = rho1/rho2
        u2  = eps u1
        p2  = p1 + rho1 u1^2 (1 - eps)
        h2  = h1 + u1^2 (1 - eps^2) / 2
        T2 from h_eq(T2, p2) = h2; rho2 from the equilibrium state.

    Returns dict with rho2, T2, p2, u2, y2 (equilibrium composition),
    eps, and the upstream p1/h1.
    """
    rho1 = float(rho1)
    T1 = float(T1)
    u1 = float(u1)
    y1 = gas.y_ref
    p1 = float(gas.mix.pressure(np.array(rho1), np.array(T1), y1))
    h1 = float(gas.mix.h_mass(np.array(T1), y1))
    a1 = float(gas.mix.sound_speed_frozen(np.array(T1), y1))
    if u1 <= a1:
        raise InputError("equilibrium shock requires supersonic upstream")
    eps = 0.1  # strong-shock starting guess
    T2 = max(4.0 * T1, 1000.0)
    for it in range(max_iter):
        u2 = eps * u1
        p2 = p1 + rho1 * u1**2 * (1.0 - eps)
        h2 = h1 + 0.5 * u1**2 * (1.0 - eps**2)
        # find T2 with h_eq(T2, p2) = h2 (secant, warm start)
        T2 = _solve_T_of_h_p(gas, h2, p2, T2)
        y2, rho2 = gas.composition_T_p(np.array(T2), np.array(p2))
        rho2 = float(rho2)
        eps_new = rho1 / rho2
        if abs(eps_new - eps) < tol:
            return {"rho2": rho2, "T2": T2, "p2": p2, "u2": eps_new * u1,
                    "y2": y2, "eps": eps_new, "p1": p1, "h1": h1}
        # damped update (the map is a contraction for strong shocks)
        eps = 0.7 * eps_new + 0.3 * eps
    raise ConvergenceError("equilibrium shock iteration failed",
                           iterations=max_iter)


def _solve_T_of_h_p(gas: EquilibriumGas, h_target, p, T_guess, *,
                    tol=1e-10, max_iter=60):
    """Invert h_eq(T, p) = h for T (monotone; guarded secant)."""
    T = float(T_guess)

    def h_of(T):
        y, _ = gas.composition_T_p(np.array(T), np.array(p))
        return float(gas.mix.h_mass(np.array(T), y)[0]) \
            if np.ndim(y) > 1 else float(gas.mix.h_mass(np.array(T), y))

    T_lo, T_hi = 50.0, 1.0e5
    f = h_of(T) - h_target
    for _ in range(max_iter):
        if abs(f) < tol * max(abs(h_target), 1e4):
            return T
        if f > 0:
            T_hi = T
        else:
            T_lo = T
        dT = 0.01 * T
        slope = (h_of(T + dT) - (f + h_target)) / dT
        T_new = T - f / max(slope, 1.0)
        if not (T_lo < T_new < T_hi):
            T_new = 0.5 * (T_lo + T_hi)
        T = T_new
        f = h_of(T) - h_target
    raise ConvergenceError("T(h, p) inversion failed", iterations=max_iter)
