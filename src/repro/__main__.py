"""Command-line entry point.

``python -m repro``                 — overview and quick sanity numbers
``python -m repro figures``         — regenerate every paper figure
``python -m repro stagnation V H RN`` — stagnation environment at
                                        (V [m/s], h [m], R_n [m])
"""

from __future__ import annotations

import sys

_USAGE = """\
usage: python -m repro [command] [options]

commands:
  (none)                 overview and quick sanity numbers
  figures [--full] [--checkpoint-dir D] [--resume]
                         regenerate every paper figure
                           --full            full-resolution runs
                           --checkpoint-dir D
                                             durable suite: done markers +
                                             solver snapshots under D
                           --resume          replay completed figures and
                                             continue interrupted marches
                                             from their latest snapshot
  stagnation V H RN      stagnation environment at (V [m/s], h [m],
                         R_n [m])
  -h, --help             show this message\
"""


def _overview() -> None:
    import numpy as np

    from repro.core import make_gas
    print(__doc__)
    gas = make_gas("equilibrium-air")
    y, _ = gas.composition_T_p(np.array(8000.0), np.array(101325.0))
    x = gas.db.mass_to_mole(np.atleast_2d(y))[0]
    print("sanity: equilibrium air at 8000 K, 1 atm -> "
          f"x_N = {x[gas.db.index['N']]:.3f}, "
          f"x_O = {x[gas.db.index['O']]:.3f} (mostly dissociated)")


def _parse_figures(args: list[str]):
    """Parse ``figures`` flags; returns kwargs or None on a bad flag."""
    kwargs = {"quick": True, "checkpoint_dir": None, "resume": False}
    it = iter(args)
    for a in it:
        if a == "--full":
            kwargs["quick"] = False
        elif a == "--resume":
            kwargs["resume"] = True
        elif a == "--checkpoint-dir":
            kwargs["checkpoint_dir"] = next(it, None)
            if kwargs["checkpoint_dir"] is None:
                print("figures: --checkpoint-dir needs a directory",
                      file=sys.stderr)
                return None
        elif a.startswith("--checkpoint-dir="):
            kwargs["checkpoint_dir"] = a.split("=", 1)[1]
        else:
            print(f"figures: unknown option {a!r}", file=sys.stderr)
            return None
    if kwargs["resume"] and kwargs["checkpoint_dir"] is None:
        print("figures: --resume requires --checkpoint-dir",
              file=sys.stderr)
        return None
    return kwargs


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        _overview()
        return 0
    cmd = argv[0]
    if cmd in ("-h", "--help", "help"):
        print(_USAGE)
        return 0
    if cmd == "figures":
        kwargs = _parse_figures(argv[1:])
        if kwargs is None:
            print(_USAGE, file=sys.stderr)
            return 2
        from repro.experiments.runner import run_all
        res = run_all(**kwargs)
        return 1 if res["failures"] else 0
    if cmd == "stagnation":
        if len(argv) != 4:
            print("usage: python -m repro stagnation V[m/s] h[m] Rn[m]",
                  file=sys.stderr)
            return 2
        from repro.core import stagnation_environment
        V, h, rn = map(float, argv[1:4])
        env = stagnation_environment(V=V, h=h, nose_radius=rn)
        print(f"V = {V:.0f} m/s, h = {h / 1e3:.1f} km, R_n = {rn} m:")
        print(f"  q_conv   = {env['q_conv'] / 1e4:10.2f} W/cm^2")
        print(f"  q_rad    = {env['q_rad'] / 1e4:10.2f} W/cm^2")
        print(f"  standoff = {env['standoff'] * 100:10.2f} cm")
        print(f"  p_stag   = {env['p_stag'] / 1e3:10.2f} kPa")
        print(f"  T_edge   = {env['T_edge']:10.0f} K")
        return 0
    print(f"unknown command {cmd!r}", file=sys.stderr)
    print(_USAGE, file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
