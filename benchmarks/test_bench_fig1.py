"""Benchmark: regenerate Fig. 1 (flight domain map)."""

import numpy as np

from repro.experiments import fig1_flight_domain


def test_bench_fig1_flight_domain(once):
    res = once(fig1_flight_domain.run, True)
    # --- the paper's content --------------------------------------------
    v = res["vehicles"]
    # all three vehicle classes fly hypersonic
    for name in ("shuttle", "aotv", "tav"):
        assert v[name]["mach"].max() > 5.0
    # the AOTV occupies the high-Mach / low-Reynolds corner that ground
    # facilities cannot reach (the paper's central argument)
    aotv_peak_m = v["aotv"]["mach"].max()
    assert aotv_peak_m > 25.0
    re_at_peak = v["aotv"]["reynolds"][np.argmax(v["aotv"]["mach"])]
    env = res["facilities"]
    assert all(aotv_peak_m > e["mach"][1] for e in env.values())
    # shuttle trajectory spans several decades of Reynolds number
    re_sh = v["shuttle"]["reynolds"]
    assert re_sh.max() / re_sh.min() > 1e2
    print("\nFig. 1 series (Mach, Re) extremes:")
    for name, d in v.items():
        print(f"  {name:8s} M {d['mach'].min():6.1f}-{d['mach'].max():6.1f}"
              f"  Re {d['reynolds'].min():.2e}-{d['reynolds'].max():.2e}")
