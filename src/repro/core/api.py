"""High-level mission-analysis API.

One-call entry points for the common CAT questions, wired through the
full solver stack:

* :func:`stagnation_environment` — "what does the stagnation point see at
  this flight condition?" (equilibrium shock, VSL heating, radiation).
* :func:`windward_heating` — "what does the windward centerline see?"
  (PNS march with catalysis).
* :func:`heat_pulse` — "what does the whole trajectory integrate to?"
  (correlation-level convective + radiative pulse and load).

Failure semantics: every entry point accepts ``on_failure`` — ``"raise"``
(default) propagates the typed :class:`~repro.errors.CatError` with its
attached :class:`~repro.resilience.FailureReport`, ``"report"`` returns
``{"ok": False, "error": ..., "report": ...}`` so service-style callers
handling many conditions degrade per-condition instead of dying, and
``"degrade"`` drops one rung down the model ladder instead of failing:
the solver-level answer is replaced by the correlation-level one
(Sutton-Graves convective + Tauber-Sutton radiative, the same physics
:func:`heat_pulse` uses) and the result carries ``"degraded": True``
plus a ``"degradation"`` record naming the fallback rung and wrapping
the original failure report.

Process isolation: ``isolate=`` (``True`` for defaults, or an
:class:`~repro.resilience.IsolationPolicy`) runs the solve in a
sandboxed child process under a wall-clock deadline, an RSS memory
budget and heartbeat stall detection — a hung or ballooning solve is
killed and retried in a fresh child instead of wedging the caller.
``on_failure="isolate"`` is the service-style combination: sandbox with
default budgets plus failure-dict semantics (never raises, never
hangs).  Together with ``"degrade"`` the entry points walk the full
resilience ladder: retry → degrade → isolate → abort.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.errors import CatError, InputError
from repro.heating import sutton_graves_heating
from repro.radiation.correlations import tauber_sutton_radiative
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions,
                                      titan_reference_mass_fractions)
from repro.thermo.species import species_set

__all__ = ["stagnation_environment", "windward_heating", "heat_pulse",
           "make_gas", "submit_async"]


def submit_async(kind: str, payload: dict | None = None, *, queue_dir,
                 job_id: str | None = None, priority: int = 0,
                 max_attempts: int | None = None,
                 deadline: float | None = None,
                 memory_mb: float | None = None,
                 stall_timeout: float | None = None):
    """Submit a long-running solve asynchronously; returns an
    :class:`~repro.service.jobs.AsyncJob` handle immediately.

    The job rides the durable work queue rooted at ``queue_dir`` and is
    executed by whatever farm supervisor drains it (``python -m repro
    serve --queue-dir D``) — possibly on another host, possibly after
    this process has exited.  The handle's ``status()`` / ``watch()`` /
    ``result()`` / ``cancel()`` read only durable state, so a fresh
    handle from a later process (``JobManager(queue_dir)`` + the job
    id) observes exactly the same job.  See DESIGN.md §9.
    """
    from repro.service.jobs import AsyncJob, JobManager
    manager = JobManager(queue_dir)
    sub = manager.submit(kind, payload, job_id=job_id,
                         priority=priority, max_attempts=max_attempts,
                         deadline=deadline, memory_mb=memory_mb,
                         stall_timeout=stall_timeout)
    return AsyncJob(manager, sub["job"])


def _build_air() -> EquilibriumGas:
    db = species_set("air11")
    return EquilibriumGas(db, air_reference_mass_fractions(db))


def _build_titan() -> EquilibriumGas:
    db = species_set("titan9")
    return EquilibriumGas(db, titan_reference_mass_fractions(db))


def _build_jupiter() -> EquilibriumGas:
    db = species_set("jupiter3")
    y = np.zeros(db.n)
    y[db.index["H2"]] = 0.75
    y[db.index["He"]] = 0.25
    return EquilibriumGas(db, y)


#: Registry of named gas models the front door accepts.
GAS_MODELS = {"equilibrium-air": _build_air, "titan": _build_titan,
              "jupiter": _build_jupiter}

_GAS_CACHE: dict[str, EquilibriumGas] = {}
_GAS_CACHE_LOCK = threading.Lock()


def make_gas(name: str, *, cached: bool = True) -> EquilibriumGas:
    """Build a named equilibrium gas model.

    Options: "equilibrium-air", "titan", "jupiter".  An unknown name
    raises a typed :class:`~repro.errors.InputError` listing the valid
    names.  Models are cached after first construction (building the
    species database and reference composition is the expensive part),
    so repeated batch requests share one instance; pass ``cached=False``
    to force a fresh build.
    """
    builder = GAS_MODELS.get(name)
    if builder is None:
        raise InputError(f"unknown gas model {name!r}; options: "
                         f"{', '.join(sorted(GAS_MODELS))}")
    if not cached:
        return builder()
    with _GAS_CACHE_LOCK:
        gas = _GAS_CACHE.get(name)
        if gas is None:
            gas = _GAS_CACHE[name] = builder()
    return gas


def clear_gas_cache() -> None:
    """Drop all cached gas models (test isolation hook)."""
    with _GAS_CACHE_LOCK:
        _GAS_CACHE.clear()


_ON_FAILURE = ("raise", "report", "degrade", "isolate")

#: Sutton-Graves constant selector for each named gas model.
_GAS_ATMOSPHERE = {"equilibrium-air": "earth", "titan": "titan",
                   "jupiter": "jupiter"}


def _check_on_failure(on_failure: str):
    if on_failure not in _ON_FAILURE:
        raise InputError(f"unknown on_failure {on_failure!r}; options: "
                         f"{', '.join(_ON_FAILURE)}")


def _failure_dict(err: CatError) -> dict:
    return {"ok": False, "error": err,
            "error_type": type(err).__name__,
            "report": getattr(err, "report", None)}


def _isolated_call(fn, isolate, *, label):
    """Run ``fn()`` inside an :class:`~repro.resilience.IsolatedRunner`
    sandbox (deadline + memory budget + stall detection, fresh-child
    retries).  ``isolate`` is ``True`` for the default budgets or an
    :class:`~repro.resilience.IsolationPolicy`."""
    from repro.resilience.isolation import IsolatedRunner, as_isolation
    policy = as_isolation(isolate)
    return IsolatedRunner(policy, label=label).run_callable(fn)


def _degradation_record(rung: str, err: CatError) -> dict:
    """Ledger-style record attached to a model-ladder fallback result."""
    return {"ladder": "model", "rung": rung,
            "error_type": type(err).__name__, "reason": str(err),
            "report": getattr(err, "report", None)}


def stagnation_environment(*, V, h, nose_radius, atmosphere=None,
                           gas="equilibrium-air", T_wall=1500.0,
                           quick=True, isolate=None,
                           on_failure="raise") -> dict:
    """Full stagnation-point aerothermal environment at one condition.

    Returns a dict with the shock state, convective and radiative wall
    fluxes, shock standoff, stagnation pressure and the shock-layer
    temperature/species profiles.  ``on_failure="report"`` returns the
    failure dict instead of raising; ``on_failure="degrade"`` falls back
    to the correlation-level fluxes; ``isolate=True`` (or an
    :class:`~repro.resilience.IsolationPolicy`) sandboxes the solve in
    a supervised child process; ``on_failure="isolate"`` combines the
    sandbox with failure-dict semantics (see the module docstring).
    """
    from repro.solvers.vsl import StagnationVSL

    _check_on_failure(on_failure)
    if on_failure == "isolate" and isolate is None:
        isolate = True
    atm = atmosphere or EarthAtmosphere()
    gas_model = make_gas(gas) if isinstance(gas, str) else gas
    vsl = StagnationVSL(gas_model, nose_radius=nose_radius)

    def _solve():
        return vsl.solve(rho_inf=float(atm.density(h)),
                         T_inf=float(atm.temperature(h)), V=float(V),
                         T_wall=T_wall,
                         n_profile=40 if quick else 100,
                         n_lambda=150 if quick else 400)

    try:
        if isolate:
            sol = _isolated_call(_solve, isolate,
                                 label="stagnation_environment")
        else:
            sol = _solve()
    except CatError as err:
        if on_failure in ("report", "isolate"):
            return _failure_dict(err)
        if on_failure == "degrade":
            return _stagnation_correlation(atm, h=h, V=V,
                                           nose_radius=nose_radius,
                                           gas=gas, err=err)
        raise
    return {
        "ok": True,
        "q_conv": sol.q_conv,
        "q_rad": sol.q_rad,
        "standoff": sol.standoff,
        "p_stag": sol.p_stag,
        "T_edge": float(sol.T[-1]),
        "shock": sol.shock,
        "profiles": {"y": sol.y, "T": sol.T,
                     "composition": sol.composition},
        "solution": sol,
    }


def _stagnation_correlation(atm, *, h, V, nose_radius, gas, err) -> dict:
    """Correlation rung of the model ladder for the stagnation point.

    Sutton-Graves convective + Tauber-Sutton radiative (Earth only) on
    the freestream condition — the same engineering physics
    :func:`heat_pulse` uses.  Fields the correlations cannot provide
    (standoff, edge state, profiles) come back ``None``.
    """
    key = _GAS_ATMOSPHERE.get(gas, "earth") if isinstance(gas, str) \
        else "earth"
    rho, V = float(atm.density(h)), float(V)
    q_conv = float(sutton_graves_heating(rho, V, nose_radius,
                                         atmosphere=key))
    q_rad = (float(tauber_sutton_radiative(rho, V, nose_radius))
             if key == "earth" else 0.0)
    return {
        "ok": True,
        "degraded": True,
        "degradation": _degradation_record("correlation", err),
        "q_conv": q_conv,
        "q_rad": q_rad,
        "standoff": None,
        # Newtonian impact pressure (Cp_max ~ 2): p_stag ~ rho V^2.
        "p_stag": rho * V * V,
        "T_edge": None,
        "shock": None,
        "profiles": None,
        "solution": None,
    }


def windward_heating(*, V, h, alpha_deg, nose_radius=1.3, length=32.77,
                     atmosphere=None, gas="equilibrium-air",
                     T_wall=1200.0, catalytic_phi=1.0,
                     n_stations=40, resilience=None, isolate=None,
                     on_failure="raise") -> dict:
    """Windward-centerline heating distribution at one condition.

    ``resilience`` enables the PNS per-station continuation fallback
    (degraded stations are listed in ``result.degraded_stations``);
    ``on_failure="report"`` returns the failure dict instead of raising;
    ``on_failure="degrade"`` falls back to the correlation-level
    distribution; ``isolate=True`` (or an
    :class:`~repro.resilience.IsolationPolicy`) sandboxes the march in
    a supervised child process; ``on_failure="isolate"`` combines the
    sandbox with failure-dict semantics (see the module docstring).
    """
    from repro.geometry import OrbiterWindwardProfile
    from repro.solvers.pns import WindwardHeatingPNS

    _check_on_failure(on_failure)
    if on_failure == "isolate" and isolate is None:
        isolate = True
    atm = atmosphere or EarthAtmosphere()
    body = OrbiterWindwardProfile(alpha_deg=alpha_deg,
                                  nose_radius=nose_radius, length=length)
    if isinstance(gas, str) and gas.startswith("ideal"):
        gamma = float(gas.split(":")[1]) if ":" in gas else 1.4
        pns = WindwardHeatingPNS(body, gamma=gamma)
    else:
        gas_model = make_gas(gas) if isinstance(gas, str) else gas
        pns = WindwardHeatingPNS(body, gas=gas_model)
    def _solve():
        return pns.solve(rho_inf=float(atm.density(h)),
                         T_inf=float(atm.temperature(h)), V=float(V),
                         T_wall=T_wall, n_stations=n_stations,
                         catalytic_phi=catalytic_phi,
                         resilience=resilience)

    try:
        if isolate:
            res = _isolated_call(_solve, isolate,
                                 label="windward_heating")
        else:
            res = _solve()
    except CatError as err:
        if on_failure in ("report", "isolate"):
            return _failure_dict(err)
        if on_failure == "degrade":
            return _windward_correlation(atm, h=h, V=V,
                                         nose_radius=nose_radius,
                                         length=length,
                                         n_stations=n_stations, err=err)
        raise
    return {"ok": True, "x_over_L": res.x_over_L, "q": res.q,
            "q_stag": res.q_stag, "result": res}


def _windward_correlation(atm, *, h, V, nose_radius, length, n_stations,
                          err) -> dict:
    """Correlation rung of the model ladder for the windward centerline.

    Sutton-Graves stagnation flux scaled by the classical laminar
    running-length decay ``q/q_stag = 1/sqrt(1 + s/R_n)`` — recovers the
    stagnation value at the nose and the flat-plate ``s**-0.5`` falloff
    far downstream.
    """
    rho, V = float(atm.density(h)), float(V)
    q_stag = float(sutton_graves_heating(rho, V, nose_radius))
    x_over_L = np.linspace(0.0, 1.0, n_stations)
    q = q_stag / np.sqrt(1.0 + x_over_L * length / nose_radius)
    return {"ok": True,
            "degraded": True,
            "degradation": _degradation_record("correlation", err),
            "x_over_L": x_over_L, "q": q, "q_stag": q_stag,
            "result": None}


def _point_failure(i, t, reason) -> dict:
    """Per-point failure record for :func:`heat_pulse` report mode."""
    return {"index": int(i), "t": float(t), "error_type": "InputError",
            "reason": reason}


def heat_pulse(trajectory, nose_radius, *, atmosphere_key="earth",
               on_failure="raise") -> dict:
    """Correlation-level heating pulse along an integrated trajectory.

    Parameters
    ----------
    trajectory:
        A :class:`repro.trajectory.entry.Trajectory`.
    nose_radius:
        [m].
    atmosphere_key:
        Sutton-Graves constant selector ("earth", "titan", "jupiter").
    on_failure:
        ``"raise"`` (default) propagates the typed
        :class:`~repro.errors.InputError` if *any* trajectory point is
        non-physical; ``"report"`` instead records each bad point in a
        per-point ``failures`` list, masks it out of the arrays (NaN)
        and integrates the heat load over the remaining valid points —
        one corrupt sample never aborts the whole trajectory integral.
        When *every* point fails, report mode returns ``heat_load=NaN``
        with ``all_points_failed=True`` and ``peak=None`` — never a
        silent 0.0 masquerading as "no heating".

    Returns dict with per-time q_conv, q_rad, totals and the peak point.
    """
    if on_failure not in ("raise", "report"):
        raise InputError(f"unknown on_failure {on_failure!r}; options: "
                         f"raise, report")
    t = np.asarray(trajectory.t, dtype=float)
    rho = np.asarray(trajectory.rho, dtype=float)
    V = np.asarray(trajectory.V, dtype=float)

    if on_failure == "raise":
        q_conv = sutton_graves_heating(rho, V, nose_radius,
                                       atmosphere=atmosphere_key)
        if atmosphere_key == "earth":
            q_rad = tauber_sutton_radiative(rho, V, nose_radius)
        else:
            q_rad = np.zeros_like(q_conv)
        q_total = q_conv + q_rad
        i = int(np.argmax(q_total))
        return {"t": trajectory.t, "q_conv": q_conv, "q_rad": q_rad,
                "q_total": q_total,
                "heat_load": float(np.trapezoid(q_total, t)),
                "peak": {"t": float(trajectory.t[i]),
                         "q": float(q_total[i]),
                         "h": float(trajectory.h[i]),
                         "V": float(trajectory.V[i])}}

    finite = np.isfinite(t) & np.isfinite(rho) & np.isfinite(V)
    physical = finite & (rho > 0.0) & (V >= 0.0)
    failures = []
    for i in np.flatnonzero(~physical):
        if not finite[i]:
            reason = "non-finite trajectory point"
        elif rho[i] <= 0.0:
            reason = f"non-positive density rho={rho[i]:.3g}"
        else:
            reason = f"negative velocity V={V[i]:.3g}"
        failures.append(_point_failure(i, t[i] if np.isfinite(t[i])
                                       else np.nan, reason))

    # Evaluate the correlations on placeholder-filled arrays (both
    # correlations validate the whole array), then mask the bad points
    # back to NaN so they are visible but never poison the integral.
    rho_v = np.where(physical, rho, 1e-6)
    V_v = np.where(physical, V, 1.0)
    q_conv = sutton_graves_heating(rho_v, V_v, nose_radius,
                                   atmosphere=atmosphere_key)
    if atmosphere_key == "earth":
        q_rad = tauber_sutton_radiative(rho_v, V_v, nose_radius)
    else:
        q_rad = np.zeros_like(q_conv)
    q_total = q_conv + q_rad
    q_conv = np.where(physical, q_conv, np.nan)
    q_rad = np.where(physical, q_rad, np.nan)
    q_total = np.where(physical, q_total, np.nan)
    if not np.any(physical):
        # Report mode must not synthesize a number here: an integral
        # over zero valid points is not 0.0 (that reads as "no
        # heating"), it is unknown.  Return NaN with an explicit
        # all-points-failed record so callers cannot mistake a fully
        # corrupt trajectory for a cold one.
        return {"t": trajectory.t, "q_conv": q_conv, "q_rad": q_rad,
                "q_total": q_total,
                "heat_load": float("nan"),
                "peak": None,
                "failures": failures, "n_failed": len(failures),
                "all_points_failed": True}
    heat_load = float(np.trapezoid(q_total[physical], t[physical]))
    i = int(np.nanargmax(q_total))
    return {"t": trajectory.t, "q_conv": q_conv, "q_rad": q_rad,
            "q_total": q_total,
            "heat_load": heat_load,
            "peak": {"t": float(trajectory.t[i]),
                     "q": float(q_total[i]),
                     "h": float(trajectory.h[i]),
                     "V": float(trajectory.V[i])},
            "failures": failures, "n_failed": len(failures),
            "all_points_failed": False}
