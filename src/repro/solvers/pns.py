"""Parabolized windward-heating solver (the PNS role, Fig. 6).

The production PNS codes (Prabhu & Tannehill, Gnoffo) space-march the
parabolized Navier–Stokes equations down the body once a blunt-nose
starting solution exists.  This implementation reproduces the same
pipeline at the engineering-PNS level used for windward-centerline heating
on the equivalent-axisymmetric Orbiter profile:

1. **Starting (nose) solution** — equilibrium (or ideal-gas) normal shock
   and stagnation state, similarity viscous solution -> q_stag.
2. **Streamwise march** — at each arc station the edge state comes from
   the modified-Newtonian surface pressure and an isentropic expansion
   from the stagnation state (the blunt-body "swallowed" entropy layer);
   for the equilibrium gas the expansion runs through the Gibbs solver,
   for the ideal gas (the paper's gamma = 1.2 comparison curve) it is
   closed form.
3. **Heating distribution** — Lees local similarity over the marched edge
   states, with the catalytic-wall factor applied to the chemical part of
   the equilibrium heating.

Outputs q(x/L), the Fig. 6 ordinate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError, InputError
from repro.geometry.bodies import AxisymBody
from repro.heating.catalysis import catalytic_factor
from repro.heating.fay_riddell import newtonian_velocity_gradient
from repro.heating.lees import lees_distribution
from repro.solvers.boundary_layer import StagnationSimilarityBL
from repro.solvers.shock import (_solve_T_of_h_p, equilibrium_normal_shock,
                                 normal_shock_ideal)
from repro.thermo.equilibrium import EquilibriumGas
from repro.transport.properties import TransportModel
from repro.transport.viscosity import sutherland_viscosity

__all__ = ["WindwardHeatingPNS", "PNSResult"]


@dataclass
class PNSResult:
    """Marched windward-heating solution."""

    s: np.ndarray          #: arc stations [m]
    x_over_L: np.ndarray   #: normalised axial stations
    q: np.ndarray          #: wall heat flux [W/m^2]
    q_stag: float          #: stagnation value [W/m^2]
    p_e: np.ndarray        #: edge pressure [Pa]
    u_e: np.ndarray        #: edge velocity [m/s]
    T_e: np.ndarray        #: edge temperature [K]
    mode: str              #: "equilibrium" or "ideal"
    #: stations whose isentropic-expansion inversion needed the
    #: continuation fallback (resilient marches only; empty otherwise)
    degraded_stations: list = field(default_factory=list)


class WindwardHeatingPNS:
    """Space-marching windward-centerline heating solver.

    Parameters
    ----------
    body:
        Axisymmetric-equivalent windward body (e.g.
        :class:`~repro.geometry.orbiter.OrbiterWindwardProfile`).
    gas:
        :class:`EquilibriumGas` for the real-gas mode, or ``None`` with
        ``gamma`` set for the ideal-gas mode.
    gamma:
        Ideal-gas ratio of specific heats (the paper compares
        gamma = 1.2).
    """

    def __init__(self, body: AxisymBody, *, gas: EquilibriumGas | None =
                 None, gamma: float = 1.2, R: float = 287.0528,
                 prandtl: float = 0.71):
        self.body = body
        self.gas = gas
        self.gamma = gamma
        self.R = R
        self.prandtl = prandtl
        if gas is not None:
            self.transport = TransportModel(gas.db)
        self.mode = "equilibrium" if gas is not None else "ideal"

    # ------------------------------------------------------------------

    def solve(self, *, rho_inf, T_inf, V, T_wall=1200.0, n_stations=60,
              catalytic_phi=1.0, resilience=None) -> PNSResult:
        """March the windward ray for one flight condition.

        With ``resilience`` truthy, a station whose equilibrium
        isentropic-expansion inversion fails is recovered by continuation
        from the previous station's edge state instead of aborting the
        march; recovered stations are listed in
        ``PNSResult.degraded_stations``.  Without it the
        :class:`ConvergenceError` is raised, enriched with a
        :class:`~repro.resilience.FailureReport` naming the station.
        """
        if V <= 0:
            raise InputError("V must be positive")
        body = self.body
        s = np.linspace(0.0, body.s_max * 0.98, n_stations)
        theta = body.angle(s)
        _, r = body.point(s)
        p_inf = rho_inf * self.R * T_inf
        q_dyn = 0.5 * rho_inf * V * V

        if self.mode == "equilibrium":
            stag = self._stagnation_equilibrium(rho_inf, T_inf, V, T_wall)
        else:
            stag = self._stagnation_ideal(rho_inf, T_inf, V, T_wall)
        # modified-Newtonian surface pressure
        cp_max = (stag["p_stag"] - p_inf) / q_dyn
        p_e = np.maximum(p_inf + cp_max * q_dyn * np.sin(theta) ** 2,
                         1.01 * p_inf)
        degraded: list[int] = []
        if self.mode == "equilibrium":
            T_e, rho_e, u_e, mu_e = self._expand_equilibrium(
                stag, p_e, resilience=resilience, degraded=degraded)
        else:
            T_e, rho_e, u_e, mu_e = self._expand_ideal(stag, p_e)
        # Lees distribution normalised at the stagnation point
        ratio = lees_distribution(s, np.maximum(r, 1e-9), rho_e, mu_e,
                                  u_e, stag["due_dx"])
        q = stag["q_stag"] * ratio
        if self.mode == "equilibrium" and catalytic_phi < 1.0:
            q = q * catalytic_factor(stag["h_diss"], stag["h0"],
                                     catalytic_phi)
        x_over_L = (body.point(s)[0]
                    / (getattr(body, "length", None) or body.point(
                        np.array([body.s_max]))[0][0]))
        return PNSResult(s=s, x_over_L=np.asarray(x_over_L), q=q,
                         q_stag=stag["q_stag"], p_e=p_e, u_e=u_e, T_e=T_e,
                         mode=self.mode, degraded_stations=degraded)

    # ------------------------------------------------------------------
    # stagnation starting solutions
    # ------------------------------------------------------------------

    def _stagnation_ideal(self, rho_inf, T_inf, V, T_wall):
        g = self.gamma
        # catlint: disable=CAT002 -- freestream T_inf > 0, g/R positive
        a_inf = np.sqrt(g * self.R * T_inf)
        M = V / a_inf
        ns = normal_shock_ideal(M, g)
        p_inf = rho_inf * self.R * T_inf
        # Rayleigh pitot stagnation state
        from repro.solvers.shock import isentropic_ratios
        p_stag = p_inf * ns["p_ratio"] * isentropic_ratios(
            ns["M2"], g)["p0_p"]
        cp = g * self.R / (g - 1.0)  # catlint: disable=CAT003 -- g > 1 for the ideal mode
        T0 = T_inf * (1.0 + 0.5 * (g - 1.0) * M * M)
        rho_stag = p_stag / (self.R * T0)
        mu_stag = sutherland_viscosity(T0)
        h0 = cp * T0
        hw = cp * T_wall
        K = newtonian_velocity_gradient(self.body.nose_radius, p_stag,
                                        p_inf, rho_stag)
        bl = StagnationSimilarityBL(h0e=h0, p_e=p_stag, rho_e=rho_stag,
                                    mu_e=mu_stag, Pr=self.prandtl)
        q_stag = float(bl.heat_flux(hw, K))
        return {"p_stag": float(p_stag), "T0": float(T0), "h0": float(h0),
                "rho_stag": float(rho_stag), "due_dx": float(K),
                "q_stag": q_stag, "h_diss": 0.0,
                "s_stag": None}

    def _stagnation_equilibrium(self, rho_inf, T_inf, V, T_wall):
        gas = self.gas
        shock = equilibrium_normal_shock(gas, rho_inf, T_inf, V)
        h0 = shock["h1"] + 0.5 * V**2
        p_stag = shock["p2"] + shock["rho2"] * shock["u2"] ** 2
        T0 = _solve_T_of_h_p(gas, h0, p_stag, shock["T2"])
        y0, rho0 = gas.composition_T_p(np.array(T0), np.array(p_stag))
        rho0 = float(rho0)
        mu0 = float(self.transport.viscosity(np.array(T0), y0))
        # dissociation enthalpy content of the stagnation gas
        h_diss = float(np.sum(np.asarray(y0) * gas.db.hf0_mass))
        # rho*mu closure table for the similarity solve
        T_tab = np.geomspace(max(0.4 * T_wall, 150.0), 1.1 * T0, 40)
        y_tab, rho_tab = gas.composition_T_p(
            T_tab, np.full_like(T_tab, p_stag))
        h_tab = gas.mix.h_mass(T_tab, y_tab)
        rm_tab = rho_tab * self.transport.viscosity(T_tab, y_tab)
        idx = np.argsort(h_tab)
        h_s, rm_s = h_tab[idx], rm_tab[idx]
        rho_mu = lambda h: np.interp(h, h_s, rm_s)  # noqa: E731
        y_w, _ = gas.composition_T_p(np.array(float(T_wall)),
                                     np.array(float(p_stag)))
        hw = float(gas.mix.h_mass(np.array(float(T_wall)), y_w))
        p_inf = float(gas.mix.pressure(np.array(rho_inf),
                                       np.array(T_inf), gas.y_ref))
        K = newtonian_velocity_gradient(self.body.nose_radius, p_stag,
                                        p_inf, rho0)
        bl = StagnationSimilarityBL(h0e=h0, p_e=p_stag, rho_e=rho0,
                                    mu_e=mu0, rho_mu_of_h=rho_mu,
                                    Pr=self.prandtl)
        q_stag = float(bl.heat_flux(hw, K))
        s_stag = float(gas.mix.s_mass(np.array(T0), np.array(p_stag),
                                      y0))
        return {"p_stag": float(p_stag), "T0": float(T0), "h0": float(h0),
                "rho_stag": rho0, "due_dx": float(K), "q_stag": q_stag,
                "h_diss": h_diss, "s_stag": s_stag}

    # ------------------------------------------------------------------
    # edge expansions
    # ------------------------------------------------------------------

    def _expand_ideal(self, stag, p_e):
        g = self.gamma
        pr = np.clip(p_e / stag["p_stag"], 1e-6, 1.0)
        T_e = stag["T0"] * pr ** ((g - 1.0) / g)
        rho_e = p_e / (self.R * T_e)
        cp = g * self.R / (g - 1.0)  # catlint: disable=CAT003 -- g > 1 for the ideal mode
        u_e = np.sqrt(np.maximum(2.0 * cp * (stag["T0"] - T_e), 0.0))
        return T_e, rho_e, u_e, sutherland_viscosity(T_e)

    def _expand_equilibrium(self, stag, p_e, *, resilience=None,
                            degraded=None):
        """Isentropic equilibrium expansion from the stagnation state.

        For each edge pressure find T with s(T, p_e) = s_stag (bracketed
        secant on the monotone entropy), then the velocity from the
        enthalpy deficit.  This is the PNS space march: each station's
        solve warm-starts from the previous one, and under ``resilience``
        a failed station falls back to the upstream edge temperature
        (recorded in ``degraded``) so the march survives.
        """
        gas = self.gas
        T_e = np.empty_like(p_e)
        T_guess = stag["T0"]
        for i, p in enumerate(p_e):
            try:
                T_guess = self._T_of_s_p(stag["s_stag"], float(p),
                                         min(T_guess, stag["T0"]))
            except ConvergenceError as err:
                if not resilience:
                    from repro.resilience import FailureReport
                    err.report = FailureReport(
                        label="pns", error=str(err), step=i,
                        config={"station": i, "p_e": float(p),
                                "T_guess": float(T_guess),
                                "s_stag": float(stag["s_stag"]),
                                "mode": self.mode})
                    raise
                # continuation fallback: carry the upstream edge state
                if degraded is not None:
                    degraded.append(i)
            T_e[i] = T_guess
        y_e, rho_e = gas.composition_T_p(T_e, p_e)
        h_e = gas.mix.h_mass(T_e, y_e)
        u_e = np.sqrt(np.maximum(2.0 * (stag["h0"] - h_e), 0.0))
        mu_e = self.transport.viscosity(T_e, y_e)
        return T_e, np.asarray(rho_e), u_e, mu_e

    def _T_of_s_p(self, s_target, p, T_guess, *, tol=1e-9, max_iter=60):
        gas = self.gas
        T = float(T_guess)
        T_lo, T_hi = 100.0, 5.0e4

        def s_of(T):
            y, _ = gas.composition_T_p(np.array(T), np.array(p))
            return float(gas.mix.s_mass(np.array(T), np.array(p), y))

        f = s_of(T) - s_target
        for _ in range(max_iter):
            if abs(f) < tol * abs(s_target):
                return T
            if f > 0:
                T_hi = T
            else:
                T_lo = T
            dT = max(1e-3 * T, 0.5)
            slope = (s_of(T + dT) - (f + s_target)) / dT
            T_new = T - f / max(slope, 1e-6)
            if not (T_lo < T_new < T_hi):
                T_new = 0.5 * (T_lo + T_hi)
            T = T_new
            f = s_of(T) - s_target
        raise ConvergenceError("T(s, p) inversion failed",
                               iterations=max_iter)
