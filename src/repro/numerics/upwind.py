"""Ideal-gas flux-vector splittings: Steger–Warming, van Leer, AUSM+.

These are the upwind schemes of the paper's era ("The upwind NS method used
here allows the hypersonic bow shock to be captured", Ref. 26).  They are
written for the calorically perfect gas; real-gas runs use HLLE (see
:mod:`repro.numerics.fluxes`) or these splittings with the local effective
gamma (the bench_upwind ablation compares both).

All routines take face-normal-frame states (see fluxes.py layout) and
return the face flux.
"""

from __future__ import annotations

import numpy as np

__all__ = ["steger_warming_flux", "van_leer_flux", "ausm_plus_flux"]


def _unpack_ideal(U, gamma):
    U = np.asarray(U, dtype=float)
    rho = np.maximum(U[..., 0], 1e-300)
    un = U[..., 1] / rho
    if U.shape[-1] == 4:
        ut = U[..., 2] / rho
        ke = 0.5 * (un**2 + ut**2)
    else:
        ut = None
        ke = 0.5 * un**2
    e = np.maximum(U[..., -1] / rho - ke, 1e-30)
    p = (gamma - 1.0) * rho * e
    a = np.sqrt(gamma * p / rho)  # catlint: disable=CAT002 -- rho, e clamped positive above; gamma > 1
    H = (U[..., -1] + p) / rho
    return rho, un, ut, p, a, H


def _sw_split(U, gamma, sign):
    """One-sided Steger–Warming flux (sign=+1: F+, -1: F-).

    Standard eigen-split form (1-D normal direction)::

        F± = rho/(2g) [ 2(g-1) l1± + l2± + l3±,
                        2(g-1) l1± u + l2±(u+a) + l3±(u-a),
                        (g-1) l1± u^2 + l2±(u+a)^2/2 + l3±(u-a)^2/2
                          + (3-g)(l2± + l3±) a^2 / (2(g-1)) ]

    with l1 = u, l2 = u+a, l3 = u-a and l± = (l ± |l|)/2.  Tangential
    momentum and its kinetic energy advect with the split mass flux.
    """
    rho, un, ut, p, a, H = _unpack_ideal(U, gamma)
    g = gamma

    def lam(l):
        return 0.5 * (l + sign * np.abs(l))

    l1, l2, l3 = lam(un), lam(un + a), lam(un - a)
    pref = rho / (2.0 * g)
    f0 = pref * (2.0 * (g - 1.0) * l1 + l2 + l3)
    f1 = pref * (2.0 * (g - 1.0) * l1 * un + l2 * (un + a)
                 + l3 * (un - a))
    fE = pref * ((g - 1.0) * l1 * un**2
                 + 0.5 * l2 * (un + a) ** 2 + 0.5 * l3 * (un - a) ** 2
                 + (3.0 - g) * (l2 + l3) * a**2 / (2.0 * (g - 1.0)))
    F = np.empty_like(np.asarray(U, dtype=float))
    F[..., 0] = f0
    F[..., 1] = f1
    if ut is not None:
        F[..., 2] = f0 * ut
        fE = fE + 0.5 * ut**2 * f0
    F[..., -1] = fE
    return F


def steger_warming_flux(UL, UR, gamma=1.4):
    """Steger–Warming split flux F = F+(UL) + F-(UR)."""
    return _sw_split(UL, gamma, +1.0) + _sw_split(UR, gamma, -1.0)


def _vl_split(U, gamma, sign):
    """One-sided van Leer flux."""
    rho, un, ut, p, a, H = _unpack_ideal(U, gamma)
    M = un / a
    F = np.zeros_like(np.asarray(U, dtype=float))
    sup_pos = M >= 1.0
    sup_neg = M <= -1.0
    sub = ~(sup_pos | sup_neg)
    # supersonic: one-sided full flux or zero
    from repro.numerics.fluxes import euler_flux
    full = euler_flux(U, p)
    if sign > 0:
        F = np.where(sup_pos[..., None], full, F)
    else:
        F = np.where(sup_neg[..., None], full, F)
    # subsonic split
    fm = sign * 0.25 * rho * a * (M + sign) ** 2
    fmom = fm * ((gamma - 1.0) * un + sign * 2.0 * a) / gamma
    # van Leer energy: fE = fm * [((g-1)u ± 2a)^2 / (2(g^2-1)) + ke_t]
    u_term = ((gamma - 1.0) * un + sign * 2.0 * a) ** 2 \
        / (2.0 * (gamma**2 - 1.0))
    ke_t = 0.0 if ut is None else 0.5 * ut**2
    fE = fm * (u_term + ke_t)
    Fs = np.zeros_like(F)
    Fs[..., 0] = fm
    Fs[..., 1] = fmom
    if ut is not None:
        Fs[..., 2] = fm * ut
    Fs[..., -1] = fE
    return np.where(sub[..., None], Fs, F)


def van_leer_flux(UL, UR, gamma=1.4):
    """van Leer flux-vector-splitting face flux."""
    return _vl_split(UL, gamma, +1.0) + _vl_split(UR, gamma, -1.0)


def ausm_plus_flux(UL, UR, gamma=1.4):
    """AUSM+ flux (Liou 1996) for the ideal gas."""
    rl, ul, tl, pl, al, Hl = _unpack_ideal(UL, gamma)
    rr, ur, tr, pr, ar, Hr = _unpack_ideal(UR, gamma)
    a12 = 0.5 * (al + ar)
    Ml = ul / a12
    Mr = ur / a12
    alpha = 3.0 / 16.0
    beta = 1.0 / 8.0

    def M_plus(M):
        return np.where(np.abs(M) >= 1.0, 0.5 * (M + np.abs(M)),
                        0.25 * (M + 1.0) ** 2 + beta * (M**2 - 1.0) ** 2)

    def M_minus(M):
        return np.where(np.abs(M) >= 1.0, 0.5 * (M - np.abs(M)),
                        -0.25 * (M - 1.0) ** 2 - beta * (M**2 - 1.0) ** 2)

    def p_plus(M):
        return np.where(np.abs(M) >= 1.0,
                        0.5 * (1.0 + np.sign(M)),
                        0.25 * (M + 1.0) ** 2 * (2.0 - M)
                        + alpha * M * (M**2 - 1.0) ** 2)

    def p_minus(M):
        return np.where(np.abs(M) >= 1.0,
                        0.5 * (1.0 - np.sign(M)),
                        0.25 * (M - 1.0) ** 2 * (2.0 + M)
                        - alpha * M * (M**2 - 1.0) ** 2)

    m12 = M_plus(Ml) + M_minus(Mr)
    p12 = p_plus(Ml) * pl + p_minus(Mr) * pr
    mdot = a12 * np.where(m12 > 0, m12 * rl, m12 * rr)
    # upwinded transported quantities
    UL_ = np.asarray(UL, dtype=float)
    UR_ = np.asarray(UR, dtype=float)
    m = UL_.shape[-1]
    psiL = np.empty_like(UL_)
    psiR = np.empty_like(UR_)
    psiL[..., 0], psiR[..., 0] = 1.0, 1.0
    psiL[..., 1], psiR[..., 1] = ul, ur
    if m == 4:
        psiL[..., 2], psiR[..., 2] = tl, tr
    psiL[..., -1], psiR[..., -1] = Hl, Hr
    F = np.where((mdot > 0)[..., None], mdot[..., None] * psiL,
                 mdot[..., None] * psiR)
    F[..., 1] += p12
    return F
