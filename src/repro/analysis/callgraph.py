"""Static call graph over the repo, with loop-depth-weighted edges.

The performance linter needs to know *where code runs*, not just what
it looks like: a scalar ``math.exp`` is harmless in a config loader and
a disaster inside the flux sweep.  This module builds the call graph
the hot-path inference (:mod:`repro.analysis.hotpath`) walks:

* every function/method definition becomes a :class:`FunctionNode`
  keyed by ``(path, qualname)``;
* every call site inside a function becomes a :class:`CallSite`
  carrying the **loop depth** at the call — the number of enclosing
  ``for``/``while`` statements and comprehension clauses within that
  function.  Loop depth is what propagates along call edges: a
  function invoked from depth 2 runs O(n^2) times per caller entry.
* a nested ``def`` whose name is later passed as a call argument
  (``solve_ivp(rhs, ...)``, shooting residuals, quad integrands) gets a
  **callback edge** from its parent with one extra loop level: the
  consumer will call it many times per invocation.

Resolution is by trailing call name (``self._newton`` -> every known
``_newton``), the same convention the units checker uses — it
over-approximates on generic names, which is the right failure mode
for a linter that must never miss a hot kernel.  A stoplist drops
builtin-ish method names (``append``, ``get``, ``items``, ...) that
would otherwise wire the graph to everything.

Stdlib-only by design, like the rest of :mod:`repro.analysis`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.engine import dotted_name, iter_python_files

#: Method names never resolved to repo functions: they are almost
#: always stdlib/numpy attribute calls, and by-name resolution through
#: them would connect the graph to everything.
RESOLUTION_STOPLIST = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "copy",
    "get", "items", "keys", "values", "update", "setdefault",
    "join", "split", "strip", "lstrip", "rstrip", "format", "replace",
    "startswith", "endswith", "encode", "decode", "lower", "upper",
    "add", "discard", "union", "intersection", "sort", "sorted",
    "read", "write", "close", "open", "print", "len", "range",
    "isinstance", "issubclass", "enumerate", "zip", "map", "filter",
    "sum", "min", "max", "abs", "all", "any", "repr", "str", "int",
    "float", "bool", "list", "dict", "set", "tuple", "type", "super",
    "hasattr", "getattr", "setattr", "iter", "next", "vars", "id",
})


@dataclass
class CallSite:
    """One call inside a function body."""

    callee: str              #: dotted name as written ("self._newton")
    lineno: int
    loop_depth: int          #: enclosing for/while/comprehension count
    #: resolution override for synthetic edges (nested-callback defs):
    #: a (path, qualname) key that bypasses by-name resolution.
    direct: tuple[str, str] | None = None

    @property
    def bare_name(self) -> str:
        return self.callee.rsplit(".", 1)[-1]


@dataclass
class FunctionNode:
    """One function or method definition."""

    path: str
    qualname: str            #: e.g. "EquilibriumSolver._newton"
    name: str                #: bare name
    lineno: int
    end_lineno: int
    parent: str | None       #: qualname of the enclosing function, if any
    is_method: bool
    calls: list[CallSite] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        return (self.path, self.qualname)


class _Collector(ast.NodeVisitor):
    """Walk one module collecting FunctionNodes and their call sites."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.nodes: list[FunctionNode] = []
        self._class_stack: list[str] = []
        self._fn_stack: list[FunctionNode] = []
        self._loop_stack: list[int] = []   # loop depth per function frame

    # -- scope bookkeeping ------------------------------------------------

    def _qualprefix(self) -> str:
        parts: list[str] = []
        if self._fn_stack:
            parts.append(self._fn_stack[-1].qualname + ".<locals>")
        elif self._class_stack:
            parts.append(".".join(self._class_stack))
        return parts[0] + "." if parts else ""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        fn = FunctionNode(
            path=self.path,
            qualname=self._qualprefix() + node.name,
            name=node.name,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno),
            parent=(self._fn_stack[-1].qualname if self._fn_stack
                    else None),
            is_method=bool(self._class_stack and not self._fn_stack),
        )
        if self._fn_stack:
            # synthetic parent -> child edge; hotpath upgrades it to a
            # callback edge (+1 loop) when the name is passed as an
            # argument somewhere in the parent (see CallGraph.finish).
            self._fn_stack[-1].calls.append(CallSite(
                callee=node.name, lineno=node.lineno,
                loop_depth=self._loop_stack[-1], direct=fn.key))
        self.nodes.append(fn)
        self._fn_stack.append(fn)
        self._loop_stack.append(0)
        for stmt in node.body:
            self.visit(stmt)
        self._loop_stack.pop()
        self._fn_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- loop depth -------------------------------------------------------

    def _visit_loop(self, node) -> None:
        if not self._fn_stack:
            self.generic_visit(node)
            return
        # the iterable/test evaluates at the enclosing depth; the body
        # one level deeper
        if isinstance(node, ast.For):
            self.visit(node.iter)
            self.visit(node.target)
        else:
            self.visit(node.test)
        self._loop_stack[-1] += 1
        for stmt in node.body:
            self.visit(stmt)
        self._loop_stack[-1] -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    visit_For = _visit_loop
    visit_While = _visit_loop

    def _visit_comprehension(self, node) -> None:
        if not self._fn_stack:
            self.generic_visit(node)
            return
        depth = len(node.generators)
        for gen in node.generators:
            self.visit(gen.iter)       # first iterable: enclosing depth
        self._loop_stack[-1] += depth
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        for gen in node.generators:
            for cond in gen.ifs:
                self.visit(cond)
        self._loop_stack[-1] -= depth

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- call sites -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._fn_stack:
            name = dotted_name(node.func)
            if name:
                self._fn_stack[-1].calls.append(CallSite(
                    callee=name, lineno=node.lineno,
                    loop_depth=self._loop_stack[-1]))
        self.generic_visit(node)


class CallGraph:
    """All FunctionNodes of a file set, indexed for resolution."""

    def __init__(self) -> None:
        self.nodes: dict[tuple[str, str], FunctionNode] = {}
        self.by_name: dict[str, list[tuple[str, str]]] = {}
        #: (path, qualname) of nested defs used as call arguments —
        #: callbacks handed to integrators/root-finders.
        self.callbacks: set[tuple[str, str]] = set()

    # -- construction -----------------------------------------------------

    @classmethod
    def from_source(cls, source: str, path: str = "<string>",
                    graph: "CallGraph | None" = None) -> "CallGraph":
        graph = graph if graph is not None else cls()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return graph
        collector = _Collector(path)
        collector.visit(tree)
        for fn in collector.nodes:
            graph.nodes[fn.key] = fn
            graph.by_name.setdefault(fn.name, []).append(fn.key)
        graph._mark_callbacks(tree, path)
        return graph

    @classmethod
    def from_paths(cls, paths: Iterable[str]) -> "CallGraph":
        graph = cls()
        for path in iter_python_files(paths):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    source = fh.read()
            except (OSError, UnicodeDecodeError):
                continue
            cls.from_source(source, path=path, graph=graph)
        return graph

    def _mark_callbacks(self, tree: ast.Module, path: str) -> None:
        """Find nested defs whose name is passed as a call argument."""
        nested = {key[1].rsplit(".", 1)[-1]: key
                  for key in self.nodes
                  if key[0] == path and self.nodes[key].parent is not None}
        if not nested:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Name) and arg.id in nested:
                    self.callbacks.add(nested[arg.id])

    # -- queries ----------------------------------------------------------

    def resolve(self, site: CallSite) -> list[tuple[str, str]]:
        """Candidate definitions a call site may reach."""
        if site.direct is not None:
            return [site.direct] if site.direct in self.nodes else []
        bare = site.bare_name
        if bare in RESOLUTION_STOPLIST:
            return []
        return self.by_name.get(bare, [])

    def function_at(self, path: str, lineno: int) -> FunctionNode | None:
        """Innermost function whose span contains ``lineno``."""
        best: FunctionNode | None = None
        for (p, _), fn in self.nodes.items():
            if p != path or not (fn.lineno <= lineno <= fn.end_lineno):
                continue
            if best is None or fn.lineno >= best.lineno:
                best = fn
        return best


def module_parts(path: str) -> list[str]:
    """Normalised path components, for subtree predicates."""
    return path.replace(os.sep, "/").split("/")
