"""Circuit breakers for the batch front door.

One breaker *cell* guards one ``method/rung:condition-class`` combination
(e.g. the VSL rung of ``stagnation`` for ``equilibrium-air``).  The
state machine is the classical three-state breaker:

* ``closed`` — requests flow; ``trip_after`` *consecutive* failures
  trip the cell open.
* ``open`` — the rung is skipped outright (the batch engine routes
  straight to the next rung down the ladder) until ``cooldown``
  seconds have elapsed, at which point the next request becomes a
  half-open probe.
* ``half_open`` — exactly one probe is allowed through; success
  re-closes the cell, failure re-opens it (and restarts the cooldown).

Every transition is appended to a ledger (mirroring the existing
:class:`~repro.resilience.degradation.DegradationLedger` idiom) with a
monotone sequence number and the request index that caused it, so a
chaos campaign can assert the exact open/close history.  The clock is
injectable for fake-clock tests.

Sequence numbers are per-board (per-process): two farm chunks both
count 0, 1, 2, ...  Each transition therefore also carries an
``origin`` (``host:pid`` of the board that wrote it) so merged ledgers
can be keyed by the globally-unique ``(cell, origin, seq)`` instead of
the colliding bare ``seq`` — see
:func:`repro.service.batch._merge_chunk_breakers`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

__all__ = ["BreakerPolicy", "BreakerCell", "BreakerBoard"]

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


def _default_origin() -> str:
    """``host:pid`` identity of this board's writer process — the same
    convention as farm worker names."""
    from repro.resilience.lease import default_host_id
    return f"{default_host_id()}:{os.getpid()}"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recovery knobs shared by every cell of a board."""

    trip_after: int = 3      #: consecutive failures that trip the cell
    cooldown: float = 30.0   #: seconds open before a half-open probe

    def to_dict(self) -> dict:
        return {"trip_after": self.trip_after,
                "cooldown": self.cooldown}

    @classmethod
    def from_dict(cls, d: dict | None) -> "BreakerPolicy":
        d = d or {}
        return cls(trip_after=int(d.get("trip_after", 3)),
                   cooldown=float(d.get("cooldown", 30.0)))


class BreakerCell:
    """State machine for one method/rung/condition-class cell."""

    def __init__(self, name: str, policy: BreakerPolicy, clock,
                 ledger: list, origin: str | None = None):
        self.name = name
        self.policy = policy
        self._clock = clock
        self._ledger = ledger
        self.origin = origin or _default_origin()
        self.state = CLOSED
        self.consecutive = 0
        self.opened_at = None
        self._probing = False

    def _transition(self, to: str, *, request_index=None) -> None:
        self._ledger.append({"seq": len(self._ledger),
                             "origin": self.origin,
                             "cell": self.name, "from": self.state,
                             "to": to, "at": float(self._clock()),
                             "consecutive": self.consecutive,
                             "request_index": request_index})
        self.state = to

    def allow(self, *, request_index=None) -> bool:
        """May a request use this rung right now?  An open cell whose
        cooldown has elapsed converts the call into the half-open
        probe (and allows it)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if (self._clock() - self.opened_at
                    >= self.policy.cooldown):
                self._transition(HALF_OPEN,
                                 request_index=request_index)
                self._probing = False
            else:
                return False
        # half-open: let exactly one probe through at a time
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self, *, request_index=None) -> None:
        self.consecutive = 0
        self._probing = False
        if self.state != CLOSED:
            self._transition(CLOSED, request_index=request_index)

    def record_failure(self, *, request_index=None) -> None:
        self.consecutive += 1
        self._probing = False
        if self.state == HALF_OPEN:
            self._transition(OPEN, request_index=request_index)
            self.opened_at = float(self._clock())
        elif (self.state == CLOSED
              and self.consecutive >= self.policy.trip_after):
            self._transition(OPEN, request_index=request_index)
            self.opened_at = float(self._clock())


class BreakerBoard:
    """All breaker cells of one service instance, plus the shared
    transition ledger."""

    def __init__(self, policy: BreakerPolicy | None = None, *,
                 clock=time.monotonic, origin: str | None = None):
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self.origin = origin or _default_origin()
        self.cells: dict[str, BreakerCell] = {}
        self.transitions: list[dict] = []

    def cell(self, method: str, rung: str,
             condition_class: str) -> BreakerCell:
        name = f"{method}/{rung}:{condition_class}"
        cell = self.cells.get(name)
        if cell is None:
            cell = self.cells[name] = BreakerCell(
                name, self.policy, self._clock, self.transitions,
                self.origin)
        return cell

    def snapshot(self) -> dict:
        """Ledger-style summary for the batch ledger."""
        return {"policy": self.policy.to_dict(),
                "states": {n: c.state
                           for n, c in sorted(self.cells.items())},
                "transitions": list(self.transitions)}
