"""Wilke's semi-empirical mixing rule for viscosity and conductivity.

The standard CAT mixture rule::

    phi_ij = [1 + sqrt(mu_i/mu_j) (M_j/M_i)^{1/4}]^2
             / sqrt(8 (1 + M_i/M_j))
    mu_mix = sum_i x_i mu_i / sum_j x_j phi_ij

vectorised over leading batch axes; the (i, j) species work is O(n^2) with
n <= 19, negligible against the batch axis.
"""

from __future__ import annotations

import numpy as np

from repro.thermo.species import SpeciesDB, species_set

__all__ = ["wilke_mixture"]


def wilke_mixture(db: SpeciesDB | str, x, prop):
    """Mix a per-species property with Wilke's rule.

    Parameters
    ----------
    db:
        Species set (provides molar masses).
    x:
        Mole fractions, shape (..., n).
    prop:
        Per-species property (viscosity or conductivity), shape (..., n).

    Returns
    -------
    Mixture property, shape (...).
    """
    db = db if isinstance(db, SpeciesDB) else species_set(db)
    x = np.asarray(x, dtype=float)
    prop = np.asarray(prop, dtype=float)
    M = db.molar_mass
    Mr = M[:, None] / M[None, :]              # M_i / M_j
    # phi[..., i, j]
    ratio = prop[..., :, None] / np.maximum(prop[..., None, :], 1e-300)
    # catlint: disable=CAT002 -- ratio of positive transport properties
    phi = (1.0 + np.sqrt(ratio) * (1.0 / Mr) ** 0.25) ** 2
    phi = phi / np.sqrt(8.0 * (1.0 + Mr))
    denom = np.einsum("...j,...ij->...i", x, phi)
    return np.sum(x * prop / np.maximum(denom, 1e-300), axis=-1)
