"""Deterministic fault injection for resilience testing.

Recovery code that is never exercised is recovery code that does not
work.  A :class:`FaultInjector` arms a scripted set of faults — NaNs or
multiplicative perturbations in the conserved field at chosen steps and
cells, or corrupted Newton initial guesses in the equilibrium solver at
chosen calls and batch indices — and the supervised marching loops apply
them at exactly the scripted moment.  Every fault is deterministic and
logged, so a test can assert both that the fault fired and that the
recovery path survived it.

By default a fault fires **once** (a transient upset: the model for a
cosmic-ray bitflip or a one-off bad thermodynamic state); a rollback
therefore retries a clean trajectory.  ``persistent=True`` faults re-fire
on every matching step and model a reproducible defect that retries
cannot clear — the path that must end in a :class:`FailureReport`.

The durable-persistence layer adds two more fault families:

* **crash faults** (:meth:`FaultInjector.inject_crash`) raise
  :class:`SimulatedCrash` — a ``BaseException``, so neither the retry
  ladder nor ``except Exception`` handlers absorb it, exactly like a
  SIGKILL — after a chosen marching step, leaving whatever snapshots the
  run had persisted on disk for ``resume_run`` to pick up;
* **IO faults** (:meth:`FaultInjector.inject_io_fault`) corrupt the n-th
  committed snapshot on disk (truncated ``.npz``, flipped byte, torn
  manifest) so the checksum-verify / fall-back-a-generation load path is
  exercised deterministically.

The process-isolation layer adds two operational fault families the
in-process ladders *cannot* recover from — only a supervising parent
(:class:`~repro.resilience.isolation.IsolatedRunner`) can:

* **hang faults** (:meth:`FaultInjector.inject_hang`) stop the march
  dead after a chosen step (SIGTERM is ignored for the duration, the
  model for a truly wedged process), so heartbeat silence — not elapsed
  time — is what the parent must detect;
* **memory-balloon faults** (:meth:`FaultInjector.inject_memory_balloon`)
  allocate-and-hold a scripted number of MiB, the model for a leak
  marching toward the OOM killer.

Fault schedules round-trip through JSON (:meth:`FaultInjector.to_json` /
:meth:`FaultInjector.from_json`), so the chaos harness can persist the
exact schedule of a failing round into its
:class:`~repro.resilience.report.FailureReport` for deterministic replay.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["Fault", "FaultInjector", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """Scripted process death (the test model for SIGKILL / OOM / node
    preemption).

    Deliberately **not** a :class:`~repro.errors.CatError` — not even an
    :class:`Exception` — so resilience ladders and keep-going runners
    propagate it like a real crash would.
    """

    def __init__(self, message: str, *, step: int | None = None) -> None:
        super().__init__(message)
        self.step = step


@dataclass
class Fault:
    """One scripted fault."""

    kind: str                     #: "nan"|"perturb"|"newton"|"crash"|
                                  #: "io"|"hang"|"memory_balloon"
    step: int | None = None       #: step to fire at (nan/perturb/crash/
                                  #: hang/memory_balloon)
    cell: tuple | int | None = None
    component: int = 0
    factor: float = 10.0          #: multiplier for "perturb"
    call: int = 0                 #: Newton call / snapshot-write index
    cells: tuple = ()             #: batch indices to poison ("newton")
    value: float = 120.0          #: poisoned element potential ("newton")
    io_kind: str | None = None    #: "truncate" | "bitflip" | "torn" ("io")
    duration: float = 600.0       #: hang sleep / balloon hold [s]
    mb: float = 256.0             #: balloon size [MiB]
    persistent: bool = False
    fired: int = 0

    def to_json(self) -> dict:
        """JSON-able schedule entry (arming state only, not ``fired``)."""
        d = asdict(self)
        d.pop("fired")
        if isinstance(d["cell"], tuple):
            d["cell"] = list(d["cell"])
        d["cells"] = list(d["cells"])
        return d

    @classmethod
    def from_json(cls, d: dict) -> "Fault":
        """Inverse of :meth:`to_json`."""
        d = dict(d)
        d.pop("fired", None)
        if isinstance(d.get("cell"), list):
            d["cell"] = tuple(d["cell"])
        d["cells"] = tuple(d.get("cells") or ())
        return cls(**d)

    def __repr__(self) -> str:
        d = asdict(self)
        d.pop("fired")
        default = {f.name: f.default for f in
                   type(self).__dataclass_fields__.values()}
        args = ", ".join(f"{k}={v!r}" for k, v in d.items()
                         if k == "kind" or v != default.get(k))
        return f"Fault({args})"


class FaultInjector:
    """Deterministic, scripted fault source shared by the supervised
    loops (flow-state faults) and the equilibrium solver (Newton
    faults)."""

    def __init__(self):
        self.faults: list[Fault] = []
        self.log: list[dict] = []
        self._newton_calls = 0
        self._snapshot_writes = 0
        self._balloons: list = []   # keeps balloon pages resident

    # -- schedule (de)serialization -------------------------------------

    def to_json(self) -> dict:
        """The armed schedule as a JSON-able dict (see
        :meth:`from_json`); what the chaos harness embeds in a failing
        round's :class:`~repro.resilience.report.FailureReport`."""
        return {"faults": [f.to_json() for f in self.faults]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultInjector":
        """Re-arm an injector from :meth:`to_json` output — the same
        schedule, every fault fresh."""
        fi = cls()
        for d in data.get("faults", ()):
            fi.faults.append(Fault.from_json(d))
        return fi

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.faults)
        return f"FaultInjector([{inner}])"

    # -- arming ---------------------------------------------------------

    def inject_nan(self, *, step, cell, component=0, persistent=False):
        """Poison one state component of one cell with NaN after the
        given marching step completes."""
        self.faults.append(Fault(kind="nan", step=int(step), cell=cell,
                                 component=int(component),
                                 persistent=persistent))
        return self

    def inject_perturbation(self, *, step, cell, component=0, factor=10.0,
                            persistent=False):
        """Scale one state component of one cell by ``factor`` after the
        given marching step completes."""
        self.faults.append(Fault(kind="perturb", step=int(step), cell=cell,
                                 component=int(component),
                                 factor=float(factor),
                                 persistent=persistent))
        return self

    def inject_newton_failure(self, *, call=0, cells=(), value=120.0,
                              persistent=False):
        """Corrupt the equilibrium Newton initial guess (element
        potentials) for the given batch indices at the given solver call
        (0 = the next top-level ``solve_rho_T``)."""
        self.faults.append(Fault(kind="newton", call=int(call),
                                 cells=tuple(int(c) for c in cells),
                                 value=float(value),
                                 persistent=persistent))
        return self

    def inject_crash(self, *, step, persistent=False):
        """Kill the process (model: SIGKILL/OOM/preemption) by raising
        :class:`SimulatedCrash` after the given marching step completes
        — after any armed state faults for the same step have fired."""
        self.faults.append(Fault(kind="crash", step=int(step),
                                 persistent=persistent))
        return self

    def inject_hang(self, *, step, duration=600.0, persistent=False):
        """Wedge the process after the given marching step: SIGTERM is
        ignored and the march sleeps for ``duration`` seconds.  The
        in-process ladders cannot recover from this — only a
        supervising parent watching the heartbeat channel
        (:class:`~repro.resilience.isolation.IsolatedRunner`) can."""
        self.faults.append(Fault(kind="hang", step=int(step),
                                 duration=float(duration),
                                 persistent=persistent))
        return self

    def inject_memory_balloon(self, *, step, mb=256.0, hold=600.0,
                              persistent=False):
        """Allocate-and-hold ``mb`` MiB after the given marching step
        (the model for a leak marching toward the OOM killer), then
        stall for ``hold`` seconds with the pages resident so a
        supervising parent's RSS poll reliably observes the balloon."""
        self.faults.append(Fault(kind="memory_balloon", step=int(step),
                                 mb=float(mb), duration=float(hold),
                                 persistent=persistent))
        return self

    def inject_io_fault(self, *, kind, write=0, persistent=False):
        """Corrupt the ``write``-th durable snapshot commit (0 = the
        first snapshot a :class:`~repro.resilience.persistence.SnapshotStore`
        writes after arming).

        ``kind`` selects the corruption model:

        * ``"truncate"`` — the ``.npz`` payload is cut to half its size
          (interrupted write reaching the disk),
        * ``"bitflip"``  — one byte in the middle of the ``.npz`` is
          inverted (silent media corruption),
        * ``"torn"``     — the JSON manifest is cut mid-document (crash
          between payload rename and manifest commit).
        """
        if kind not in ("truncate", "bitflip", "torn"):
            raise ValueError(f"unknown io fault kind {kind!r}")
        self.faults.append(Fault(kind="io", io_kind=kind, call=int(write),
                                 persistent=persistent))
        return self

    # -- firing ---------------------------------------------------------

    @staticmethod
    def _index(cell, component):
        idx = cell if isinstance(cell, tuple) else (int(cell),)
        return idx + (int(component),)

    def apply(self, solver) -> bool:
        """Fire any armed flow-state faults matching ``solver.steps``.

        Mutates ``solver.U`` in place; returns True when something fired.
        A matching crash fault fires last (state faults at the same step
        land first, as they would in a real dying process) and raises
        :class:`SimulatedCrash`.
        """
        fired = False
        step = int(getattr(solver, "steps", 0) or 0)
        for f in self.faults:
            if f.kind not in ("nan", "perturb") or f.step != step:
                continue
            if f.fired and not f.persistent:
                continue
            idx = self._index(f.cell, f.component)
            if f.kind == "nan":
                solver.U[idx] = np.nan
            else:
                solver.U[idx] = solver.U[idx] * f.factor
            f.fired += 1
            fired = True
            self.log.append({"kind": f.kind, "step": step,
                             "cell": f.cell, "component": f.component})
        for f in self.faults:
            if f.kind not in ("hang", "memory_balloon") or f.step != step:
                continue
            if f.fired and not f.persistent:
                continue
            f.fired += 1
            fired = True
            if f.kind == "memory_balloon":
                # allocate-and-touch: RSS genuinely rises, then stalls
                # with the pages held so the supervising poll sees it
                self._balloons.append(np.full(int(f.mb * 131072), 1.0))
                self.log.append({"kind": "memory_balloon", "step": step,
                                 "mb": f.mb})
                time.sleep(f.duration)
            else:
                # a truly wedged process: TERM is ignored, the march
                # stops beating — only SIGKILL (or patience) ends this
                self.log.append({"kind": "hang", "step": step,
                                 "duration": f.duration})
                try:
                    prev = signal.signal(signal.SIGTERM, signal.SIG_IGN)
                except ValueError:          # not the main thread
                    prev = None
                try:
                    time.sleep(f.duration)
                finally:
                    if prev is not None:
                        signal.signal(signal.SIGTERM, prev)
        for f in self.faults:
            if f.kind != "crash" or f.step != step:
                continue
            if f.fired and not f.persistent:
                continue
            f.fired += 1
            self.log.append({"kind": "crash", "step": step})
            raise SimulatedCrash(f"scripted crash after step {step}",
                                 step=step)
        return fired

    def corrupt_snapshot(self, npz_path, manifest_path) -> bool:
        """Fire armed IO faults against a just-committed snapshot.

        Called by :class:`~repro.resilience.persistence.SnapshotStore`
        once per durable commit; the running write counter selects which
        commit each fault hits.  Returns True when something fired.
        """
        write = self._snapshot_writes
        self._snapshot_writes += 1
        fired = False
        for f in self.faults:
            if f.kind != "io" or f.call != write:
                continue
            if f.fired and not f.persistent:
                continue
            if f.io_kind == "truncate":
                size = os.path.getsize(npz_path)
                with open(npz_path, "r+b") as fh:
                    fh.truncate(size // 2)
            elif f.io_kind == "bitflip":
                size = os.path.getsize(npz_path)
                with open(npz_path, "r+b") as fh:
                    fh.seek(size // 2)
                    byte = fh.read(1)
                    fh.seek(size // 2)
                    fh.write(bytes([byte[0] ^ 0xFF]))
            elif f.io_kind == "torn":
                size = os.path.getsize(manifest_path)
                with open(manifest_path, "r+b") as fh:
                    fh.truncate(max(size // 2, 1))
            f.fired += 1
            fired = True
            self.log.append({"kind": "io", "io_kind": f.io_kind,
                             "write": write})
        return fired

    def corrupt_lambda(self, lam: np.ndarray) -> np.ndarray:
        """Fire armed Newton faults against a batch of initial element
        potentials (called once per top-level equilibrium solve)."""
        call = self._newton_calls
        self._newton_calls += 1
        out = lam
        for f in self.faults:
            if f.kind != "newton" or f.call != call:
                continue
            if f.fired and not f.persistent:
                continue
            out = np.array(out, dtype=float)
            cells = [c for c in f.cells if c < out.shape[0]]
            out[cells] = f.value
            f.fired += 1
            self.log.append({"kind": "newton", "call": call,
                             "cells": tuple(cells)})
        return out

    # -- bookkeeping ----------------------------------------------------

    @property
    def n_fired(self) -> int:
        return len(self.log)

    def reset(self):
        """Re-arm every fault and clear the log."""
        for f in self.faults:
            f.fired = 0
        self.log.clear()
        self._newton_calls = 0
        self._snapshot_writes = 0
        self._balloons.clear()
        return self
