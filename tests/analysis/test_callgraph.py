"""Call-graph construction + hot-path inference unit tests."""

import textwrap

from repro.analysis.callgraph import (
    RESOLUTION_STOPLIST,
    CallGraph,
    module_parts,
)
from repro.analysis.hotpath import (
    MAX_DEPTH,
    HotPathIndex,
    build_index,
    default_anchor,
)

SOLVER = "src/repro/solvers/example.py"
LIB = "src/repro/heating/example.py"


def graph_of(source, path=SOLVER):
    return CallGraph.from_source(textwrap.dedent(source), path=path)


class TestCollector:
    def test_functions_methods_and_nested_qualnames(self):
        g = graph_of("""
        def top():
            def inner():
                pass
            return inner

        class Solver:
            def step(self):
                pass
        """)
        quals = {q for (_, q) in g.nodes}
        assert quals == {"top", "top.<locals>.inner", "Solver.step"}
        assert g.nodes[(SOLVER, "Solver.step")].is_method
        assert g.nodes[(SOLVER, "top.<locals>.inner")].parent == "top"

    def test_call_sites_carry_loop_depth(self):
        g = graph_of("""
        def run(xs):
            f0()
            for x in xs:
                f1()
                while x:
                    f2()
            g0 = [f3(i) for i in xs]
            return g0
        """)
        run = g.nodes[(SOLVER, "run")]
        depths = {s.callee: s.loop_depth for s in run.calls}
        assert depths["f0"] == 0
        assert depths["f1"] == 1
        assert depths["f2"] == 2
        assert depths["f3"] == 1       # comprehension elt: one level

    def test_loop_iterable_evaluates_at_enclosing_depth(self):
        g = graph_of("""
        def run(xs):
            for x in make_iter(xs):
                body_call(x)
        """)
        run = g.nodes[(SOLVER, "run")]
        depths = {s.callee: s.loop_depth for s in run.calls}
        assert depths["make_iter"] == 0
        assert depths["body_call"] == 1

    def test_nested_def_callback_marking(self):
        g = graph_of("""
        def solve(z0):
            def rhs(t, z):
                return z
            def unused(t):
                return t
            return integrate(rhs, z0)
        """)
        assert (SOLVER, "solve.<locals>.rhs") in g.callbacks
        assert (SOLVER, "solve.<locals>.unused") not in g.callbacks

    def test_syntax_error_returns_graph(self):
        g = CallGraph.from_source("def broken(:", path=SOLVER)
        assert g.nodes == {}


class TestResolution:
    def test_by_trailing_name(self):
        g = graph_of("""
        class A:
            def _newton(self):
                pass

        def run(a):
            a._newton()
        """)
        run = g.nodes[(SOLVER, "run")]
        site = [s for s in run.calls if s.bare_name == "_newton"][0]
        assert g.resolve(site) == [(SOLVER, "A._newton")]

    def test_stoplist_blocks_builtinish_names(self):
        g = graph_of("""
        def append(x):
            pass

        def run(xs):
            xs.append(1)
        """)
        run = g.nodes[(SOLVER, "run")]
        site = run.calls[0]
        assert site.bare_name in RESOLUTION_STOPLIST
        assert g.resolve(site) == []

    def test_function_at_innermost(self):
        g = graph_of("""
        def outer():
            def inner():
                x = 1
                return x
            return inner
        """)
        # line 4 ("x = 1") is inside inner, which is inside outer
        fn = g.function_at(SOLVER, 4)
        assert fn.qualname == "outer.<locals>.inner"
        assert g.function_at(SOLVER, 999) is None


class TestAnchors:
    def test_solver_entry_names_anchor(self):
        g = graph_of("""
        class S:
            def step(self):
                pass
            def helper(self):
                pass
        """)
        assert default_anchor(g.nodes[(SOLVER, "S.step")])
        assert not default_anchor(g.nodes[(SOLVER, "S.helper")])

    def test_numerics_public_functions_anchor(self):
        path = "src/repro/numerics/example.py"
        g = graph_of("""
        def sweep(U):
            pass
        def _private(U):
            pass
        """, path=path)
        assert default_anchor(g.nodes[(path, "sweep")])
        assert not default_anchor(g.nodes[(path, "_private")])

    def test_kernel_subtrees_anchor_public(self):
        path = "src/repro/thermo/example.py"
        g = graph_of("""
        def cp_mix(T):
            pass
        """, path=path)
        assert default_anchor(g.nodes[(path, "cp_mix")])

    def test_bench_tests_anchor(self):
        path = "benchmarks/test_bench_example.py"
        g = graph_of("""
        def test_bench_thing(kernel_bench):
            pass
        def helper():
            pass
        """, path=path)
        assert default_anchor(g.nodes[(path, "test_bench_thing")])
        assert not default_anchor(g.nodes[(path, "helper")])

    def test_nested_defs_never_anchor(self):
        g = graph_of("""
        def run():
            def solve():
                pass
            return solve
        """)
        assert not default_anchor(g.nodes[(SOLVER, "run.<locals>.solve")])


class TestPropagation:
    def test_depth_adds_call_site_loop_depth(self):
        g = graph_of("""
        def run(xs):
            for x in xs:
                for y in x:
                    kernel(y)

        def kernel(y):
            inner(y)

        def inner(y):
            pass
        """)
        idx = HotPathIndex.build(g)
        assert idx.lookup(SOLVER, "run").depth == 0
        assert idx.lookup(SOLVER, "run").is_anchor
        assert idx.lookup(SOLVER, "kernel").depth == 2
        assert idx.lookup(SOLVER, "inner").depth == 2

    def test_cold_functions_absent(self):
        g = graph_of("""
        def helper(x):
            return x
        """, path=LIB)
        idx = HotPathIndex.build(g)
        assert idx.lookup(LIB, "helper") is None

    def test_cycles_terminate_and_cap(self):
        g = graph_of("""
        def run(x):
            for i in x:
                ping(i)

        def ping(x):
            for i in x:
                pong(i)

        def pong(x):
            for i in x:
                ping(i)
        """)
        idx = HotPathIndex.build(g)
        assert idx.lookup(SOLVER, "ping").depth == MAX_DEPTH
        assert idx.lookup(SOLVER, "pong").depth == MAX_DEPTH

    def test_callback_edge_adds_a_level(self):
        g = graph_of("""
        def solve(z0):
            def rhs(t, z):
                return z
            return integrate(rhs, z0)
        """)
        idx = HotPathIndex.build(g)
        assert idx.lookup(SOLVER, "solve").depth == 0
        assert idx.lookup(SOLVER, "solve.<locals>.rhs").depth == 1

    def test_multiplicity_counts_distinct_hot_sites(self):
        g = graph_of("""
        def run(x):
            kernel(x)
            kernel(x)

        def march(x):
            kernel(x)

        def kernel(x):
            pass
        """)
        idx = HotPathIndex.build(g)
        assert idx.lookup(SOLVER, "kernel").multiplicity == 3

    def test_via_chain_names_the_anchor(self):
        g = graph_of("""
        def run(x):
            for i in x:
                kernel(i)

        def kernel(i):
            pass
        """)
        idx = HotPathIndex.build(g)
        via = idx.lookup(SOLVER, "kernel").via
        assert via[0] == f"{SOLVER}::run"
        assert via[-1] == f"{SOLVER}::kernel"

    def test_hot_at_climbs_nested_scopes(self):
        g = graph_of("""
        def run(x):
            def local(y):
                return y
            return local(x)
        """)
        idx = HotPathIndex.build(g)
        # line 3 is inside the nested def, which inherits run's hotness
        assert idx.hot_at(SOLVER, 3) is not None
        assert idx.hot_at("nope.py", 3) is None


class TestBuildIndex:
    def test_over_real_tree_smoke(self):
        idx = build_index(["src/repro/analysis"])
        # analysis/ is not a hot subtree: nothing anchors
        assert all(not i.is_anchor for i in idx.info.values())

    def test_module_parts(self):
        assert module_parts("src/repro/solvers/vsl.py")[-2] == "solvers"
