"""Micro-benchmarks and ablations for the load-bearing kernels.

* equilibrium Gibbs solver throughput (batched states/second),
* EOS ablation: tabulated effective-gamma lookup vs direct Gibbs solve
  (the design choice behind the era's curve-fit EOS codes),
* upwind flux kernels,
* 2-D Euler residual evaluation.
"""

import numpy as np
import pytest

from repro.core.gas import IdealGasEOS, TabulatedEOS
from repro.numerics.fluxes import hlle_flux
from repro.numerics.upwind import steger_warming_flux, van_leer_flux
from repro.thermo.eos_table import build_air_table
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set


@pytest.fixture(scope="module")
def air_gas():
    db = species_set("air11")
    return EquilibriumGas(db, air_reference_mass_fractions(db))


@pytest.fixture(scope="module")
def eos_table():
    return build_air_table(n_rho=32, n_e=48)


@pytest.fixture(scope="module")
def state_batch():
    rng = np.random.default_rng(7)
    rho = 10.0 ** rng.uniform(-5, 0, 2000)
    e = 10.0 ** rng.uniform(5.5, 7.5, 2000)
    return rho, e


def test_bench_equilibrium_solver_batch(benchmark, air_gas):
    rho = np.full(2000, 0.01)
    T = np.linspace(500.0, 12000.0, 2000)
    y = benchmark(air_gas.composition_rho_T, rho, T)
    assert y.shape == (2000, 11)


def test_bench_eos_direct_gibbs(benchmark, air_gas, state_batch):
    """Ablation baseline: full Gibbs solve per (rho, e) state."""
    rho, e = state_batch
    out = benchmark(lambda: air_gas.state_rho_e(rho, e)["p"])
    assert np.all(out > 0)


def test_bench_eos_table_lookup(benchmark, eos_table, state_batch):
    """Ablation: the effective-gamma table on the same states.

    The measured speedup (typically 100-1000x) is the reason the era's
    production codes used curve-fit EOS tables.
    """
    rho, e = state_batch
    out = benchmark(lambda: eos_table.pressure(rho, e))
    assert np.all(out > 0)


def _face_states(n=20000):
    rng = np.random.default_rng(3)
    rho = rng.uniform(0.1, 2.0, n)
    u = rng.uniform(-1500.0, 1500.0, n)
    p = rng.uniform(1e3, 1e6, n)
    e = p / (0.4 * rho)
    U = np.stack([rho, rho * u, rho * (e + 0.5 * u**2)], axis=-1)
    return U[:-1], U[1:]


def test_bench_flux_hlle(benchmark):
    UL, UR = _face_states()
    eos = IdealGasEOS(1.4)
    F = benchmark(hlle_flux, UL, UR, eos)
    assert np.all(np.isfinite(F))


def test_bench_flux_steger_warming(benchmark):
    UL, UR = _face_states()
    F = benchmark(steger_warming_flux, UL, UR, 1.4)
    assert np.all(np.isfinite(F))


def test_bench_flux_van_leer(benchmark):
    UL, UR = _face_states()
    F = benchmark(van_leer_flux, UL, UR, 1.4)
    assert np.all(np.isfinite(F))


def test_bench_euler2d_residual(benchmark):
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.euler2d import AxisymmetricEulerSolver

    body = Hemisphere(1.0)
    grid = blunt_body_grid(body, n_s=41, n_normal=61)
    s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
    s.set_freestream(0.01, 2400.0, 0.01 * 287.0 * 220.0)
    R = benchmark(s.residual, s.U)
    assert R.shape == s.U.shape


def test_bench_ns2d_residual(benchmark):
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.ns2d import AxisymmetricNSSolver

    body = Hemisphere(0.1)
    grid = blunt_body_grid(body, n_s=31, n_normal=51)
    s = AxisymmetricNSSolver(grid, IdealGasEOS(1.4), T_wall=300.0)
    s.set_freestream(5e-4, 1800.0, 5e-4 * 287.0 * 220.0)
    R = benchmark(s.residual, s.U)
    assert R.shape == s.U.shape


def test_bench_kinetics_wdot(benchmark):
    from repro.thermo.kinetics import park_air_mechanism
    mech = park_air_mechanism("air11")
    rng = np.random.default_rng(5)
    y = rng.random((3000, 11))
    y /= y.sum(axis=1, keepdims=True)
    rho = np.full(3000, 0.01)
    T = np.linspace(2000.0, 12000.0, 3000)
    w = benchmark(mech.wdot, rho, T, y)
    assert w.shape == (3000, 11)
