"""Integration tests: 1-D Euler solver vs exact solutions."""

import numpy as np
import pytest

from repro.core.gas import IdealGasEOS, TabulatedEOS
from repro.errors import InputError
from repro.numerics.riemann import sod_exact
from repro.solvers.euler1d import Euler1DSolver


def sod_solver(n=200, **kw):
    x = np.linspace(0.0, 1.0, n + 1)
    xc = 0.5 * (x[1:] + x[:-1])
    s = Euler1DSolver(x, **kw)
    s.set_initial(np.where(xc < 0.5, 1.0, 0.125), 0.0,
                  np.where(xc < 0.5, 1.0, 0.1))
    return s


class TestSodProblem:
    @pytest.mark.parametrize("flux", ["hlle", "van_leer",
                                      "steger_warming", "ausm"])
    def test_l1_accuracy(self, flux):
        s = sod_solver(flux=flux)
        s.run(0.2)
        rho, u, p = s.primitives()
        re, ue, pe = sod_exact(s.xc, 0.2)
        assert np.abs(rho - re).mean() < 0.012
        assert np.abs(p - pe).mean() < 0.01

    def test_conservation(self):
        s = sod_solver()
        m0, E0 = s.total_mass(), s.total_energy()
        s.run(0.2)
        assert s.total_mass() == pytest.approx(m0, rel=1e-12)
        assert s.total_energy() == pytest.approx(E0, rel=1e-12)

    def test_grid_convergence(self):
        errs = []
        for n in (100, 200, 400):
            s = sod_solver(n)
            s.run(0.2)
            rho, _, _ = s.primitives()
            re, _, _ = sod_exact(s.xc, 0.2)
            errs.append(np.abs(rho - re).mean())
        # order ~0.7-1 for a shock-containing solution
        assert errs[2] < 0.65 * errs[0]

    def test_second_order_better_than_first(self):
        s1 = sod_solver(order=1)
        s1.run(0.2)
        s2 = sod_solver(order=2)
        s2.run(0.2)
        re, _, _ = sod_exact(s1.xc, 0.2)
        e1 = np.abs(s1.primitives()[0] - re).mean()
        e2 = np.abs(s2.primitives()[0] - re).mean()
        assert e2 < 0.7 * e1

    def test_positivity_123_problem(self):
        x = np.linspace(0.0, 1.0, 201)
        xc = 0.5 * (x[1:] + x[:-1])
        s = Euler1DSolver(x)
        s.set_initial(1.0, np.where(xc < 0.5, -2.0, 2.0), 0.4)
        s.run(0.1)
        rho, _, p = s.primitives()
        assert np.all(rho > 0) and np.all(p > 0)


class TestBoundaries:
    def test_reflective_wall_symmetry(self):
        # a pulse reflecting off a wall conserves mass
        x = np.linspace(0.0, 1.0, 101)
        xc = 0.5 * (x[1:] + x[:-1])
        s = Euler1DSolver(x, bc=("reflective", "reflective"))
        s.set_initial(1.0 + 0.2 * np.exp(-200 * (xc - 0.5) ** 2), 0.0, 1.0)
        m0 = s.total_mass()
        s.run(1.0)
        assert s.total_mass() == pytest.approx(m0, rel=1e-10)

    def test_uniform_flow_preserved(self):
        x = np.linspace(0.0, 1.0, 51)
        s = Euler1DSolver(x)
        s.set_initial(1.0, 100.0, 1e5)
        s.run(0.001)
        rho, u, p = s.primitives()
        assert np.allclose(rho, 1.0, rtol=1e-10)
        assert np.allclose(u, 100.0, rtol=1e-8)

    def test_invalid_inputs(self):
        with pytest.raises(InputError):
            Euler1DSolver(np.array([0.0, 0.0, 1.0]))
        with pytest.raises(InputError):
            Euler1DSolver(np.linspace(0, 1, 11), flux="magic")
        s = Euler1DSolver(np.linspace(0, 1, 11))
        with pytest.raises(InputError):
            s.run(0.1)  # no initial condition


class TestRealGasMode:
    def test_sod_with_tabulated_eos_runs(self):
        # scaled-up Sod in dimensional air conditions
        from repro.thermo.eos_table import build_air_table
        eos = TabulatedEOS(build_air_table(n_rho=24, n_e=32))
        x = np.linspace(0.0, 1.0, 101)
        xc = 0.5 * (x[1:] + x[:-1])
        s = Euler1DSolver(x, eos=eos)
        s.set_initial(np.where(xc < 0.5, 1e-2, 1.25e-3), 0.0,
                      np.where(xc < 0.5, 1e4, 1e3))
        s.run(2e-4)
        rho, u, p = s.primitives()
        assert np.all(np.isfinite(rho)) and np.all(rho > 0)
        # wave structure exists: a right-moving compression
        assert u.max() > 50.0
