"""Algebraic eddy-viscosity turbulence model (Cebeci–Smith type).

The paper treats small-scale turbulent transport with "eddy-viscosity and
eddy-conductivity approaches"; the boundary-layer and VSL solvers use this
two-layer algebraic model:

* inner layer: Prandtl mixing length with Van Driest damping::

      mu_t = rho (kappa y D)^2 |du/dy|,
      D = 1 - exp(-y+ / A+),  A+ = 26

* outer layer: Clauser form::

      mu_t = alpha rho u_e delta_star,  alpha = 0.0168

with a crossover at the first y where the inner value exceeds the outer.
Eddy conductivity follows from a constant turbulent Prandtl number.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cebeci_smith_eddy_viscosity", "PRANDTL_TURBULENT"]

#: Turbulent Prandtl number used to convert eddy viscosity to conductivity.
PRANDTL_TURBULENT = 0.90

_KAPPA = 0.40
_A_PLUS = 26.0
_ALPHA = 0.0168


def cebeci_smith_eddy_viscosity(y, u, rho, mu, *, u_edge=None):
    """Two-layer algebraic eddy viscosity along one wall-normal profile.

    Parameters
    ----------
    y:
        Wall-normal coordinate [m], increasing from the wall (y[0] == 0).
    u:
        Streamwise velocity profile [m/s] (u[0] == 0 at the wall).
    rho, mu:
        Density and molecular viscosity profiles.
    u_edge:
        Edge velocity; defaults to u[-1].

    Returns
    -------
    mu_t:
        Eddy viscosity profile, same shape as ``y``.
    """
    y = np.asarray(y, dtype=float)
    u = np.asarray(u, dtype=float)
    rho = np.asarray(rho, dtype=float)
    mu = np.asarray(mu, dtype=float)
    ue = float(u[-1]) if u_edge is None else float(u_edge)
    dudy = np.gradient(u, y)
    tau_w = mu[0] * dudy[0]
    # catlint: disable=CAT002 -- |tau_w| >= 0 over a positive wall density
    u_tau = np.sqrt(np.abs(tau_w) / rho[0])
    # Van Driest damping in wall units
    y_plus = rho[0] * u_tau * y / np.maximum(mu[0], 1e-300)
    # catlint: disable=CAT004 -- y_plus >= 0 in wall units, so the
    # exponent is <= 0: only benign underflow to 0 is possible
    damp = 1.0 - np.exp(-y_plus / _A_PLUS)
    mu_inner = rho * (_KAPPA * y * damp) ** 2 * np.abs(dudy)
    # displacement thickness for the outer layer
    if abs(ue) < 1e-12:
        return np.zeros_like(y)
    integrand = 1.0 - (rho * u) / (rho[-1] * ue)
    delta_star = float(np.trapezoid(np.clip(integrand, 0.0, None), y))
    mu_outer = _ALPHA * rho * abs(ue) * delta_star
    # crossover: inner law near the wall, outer beyond the matching point
    crossed = mu_inner >= mu_outer
    if np.any(crossed):
        i_match = int(np.argmax(crossed))
        mu_t = np.where(np.arange(y.size) < i_match, mu_inner, mu_outer)
    else:
        mu_t = mu_inner
    return mu_t
