"""The PERF rule family: hot-path performance lint.

catlint's CAT rules guard numerical *safety*; the PERF rules inventory
numerical *throughput* — every scalar-per-cell Python pattern left on a
hot path.  They run only under ``python -m repro.analysis perf``, which
builds the call graph and hot-path index first (a plain ``lint`` run
skips them: without hotness information every rule's ``applies`` is
False).  Pragmas, severity, baseline keys and JSON output are the
standard catlint machinery; suppression is
``# catlint: disable=PERF00x -- reason``.

Each finding carries score metadata and the engine emits a **ranked
vectorization worklist**::

    score = (hot_depth + local_depth) * trip_estimate * multiplicity

* ``hot_depth``   — loop depth accumulated along call edges from the
  anchors (a kernel invoked from a stepping loop starts at >= 1);
* ``local_depth`` — enclosing for/while/comprehension nesting at the
  finding, inside its function;
* ``trip_estimate`` — static iteration-count guess for the innermost
  relevant loop (``range(8)`` -> 8; species axes -> 16; unknown
  per-cell axes -> 256; see :func:`estimate_trips`);
* ``multiplicity`` — distinct hot call sites reaching the scope.

Findings inside ``except`` handlers are rescue paths, not steady
state: their score is discounted 100x (they stay in the inventory —
a rescue loop still deserves vectorizing — but never outrank the
per-step kernels).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.engine import (
    LintContext,
    Rule,
    call_name,
    const_value,
    dotted_name,
    iter_python_files,
    register,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.hotpath import HotInfo, HotPathIndex, default_anchor
from repro.analysis.pragmas import PragmaIndex

#: Static trip-count buckets (documented in DESIGN.md §7): a species
#: axis is ~10-20 wide, an element/constraint axis under 10, and an
#: unknown axis is assumed to be a per-cell axis.
SPECIES_TRIP = 16
ELEMENT_TRIP = 8
DEFAULT_TRIP = 256

#: Names whose ``range(...)`` iteration is an element/constraint axis.
_ELEMENT_NAMES = frozenset({"K", "n_el", "n_con", "n_constraints"})
#: Names whose iteration is a species axis.
_SPECIES_NAMES = frozenset({"ns", "n_s", "n_sp", "n_species", "nsp"})

#: Kernel callables assumed pure for PERF006 (loop-invariant
#: recomputation): NASA-7 / statmech / mixture property evaluators.
PURE_KERNELS = frozenset({
    "cp", "h", "s", "g0", "g0_over_RT", "gibbs",
    "cp_mass", "cv_mass", "h_mass", "e_mass", "s_mass",
    "gas_constant", "molar_mass", "viscosity", "conductivity",
    "e_vib_el", "cv_vib_el", "h_tr_rot", "cp_tr_rot",
    "_cp_tr_rot_mass", "sound_speed_frozen", "gamma_frozen",
})

_NP_ALLOC = frozenset({
    "np.zeros", "np.ones", "np.empty", "np.full", "np.eye",
    "np.zeros_like", "np.ones_like", "np.empty_like", "np.full_like",
    "np.arange", "np.linspace", "np.geomspace", "np.logspace",
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
    "numpy.zeros_like", "numpy.ones_like", "numpy.empty_like",
    "numpy.full_like",
})

_NP_GROW = frozenset({
    "np.append", "np.concatenate", "np.vstack", "np.hstack",
    "np.insert", "np.delete", "np.column_stack", "np.row_stack",
    "numpy.append", "numpy.concatenate", "numpy.vstack",
    "numpy.hstack", "numpy.insert", "numpy.delete",
})

_NP_FROM_COMP = frozenset({
    "np.array", "np.asarray", "np.stack", "np.concatenate",
    "np.vstack", "np.hstack", "np.column_stack",
    "numpy.array", "numpy.asarray", "numpy.stack",
    "numpy.concatenate", "numpy.vstack", "numpy.hstack",
})

_COMPS = (ast.ListComp, ast.GeneratorExp)
_ALL_COMPS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


# --------------------------------------------------------------------------
# trip estimation
# --------------------------------------------------------------------------

def estimate_trips(iter_node: ast.AST | None) -> tuple[int, str]:
    """Static trip-count estimate for a loop iterable.

    Returns ``(count, basis)`` where basis documents the heuristic
    (``"constant"``, ``"species-axis"``, ``"element-axis"``,
    ``"assumed-cell-axis"``).
    """
    if iter_node is None:
        return DEFAULT_TRIP, "assumed-cell-axis"
    if isinstance(iter_node, ast.Call) and call_name(iter_node) == "range":
        args = iter_node.args
        vals = [const_value(a) for a in args]
        if len(vals) == 1 and vals[0] is not None:
            return max(int(vals[0]), 1), "constant"
        if len(vals) >= 2 and vals[0] is not None and vals[1] is not None:
            return max(int(vals[1]) - int(vals[0]), 1), "constant"
        if args:
            return _axis_guess(args[0])
        return DEFAULT_TRIP, "assumed-cell-axis"
    if isinstance(iter_node, ast.Call) and call_name(iter_node) in (
            "enumerate", "zip", "reversed"):
        if iter_node.args:
            return estimate_trips(iter_node.args[0])
    return _axis_guess(iter_node)


def _axis_guess(node: ast.AST) -> tuple[int, str]:
    name = dotted_name(node)
    bare = name.rsplit(".", 1)[-1] if name else ""
    if bare in _ELEMENT_NAMES or name.endswith(".K"):
        return ELEMENT_TRIP, "element-axis"
    if (bare in _SPECIES_NAMES or name.endswith(".n")
            or "species" in name.lower()):
        return SPECIES_TRIP, "species-axis"
    v = const_value(node)
    if v is not None:
        return max(int(v), 1), "constant"
    return DEFAULT_TRIP, "assumed-cell-axis"


# --------------------------------------------------------------------------
# perf finding + context helpers
# --------------------------------------------------------------------------

@dataclass
class PerfFinding:
    """One PERF finding plus its worklist scoring metadata."""

    finding: Finding
    function: str              #: enclosing hot scope qualname
    hot_depth: int
    local_depth: int
    trips: int
    trip_basis: str
    multiplicity: int
    via: tuple[str, ...]
    rescue_path: bool = False  #: inside an except handler

    @property
    def loop_depth(self) -> int:
        return self.hot_depth + self.local_depth

    @property
    def score(self) -> float:
        s = float(max(self.loop_depth, 1) * self.trips
                  * max(self.multiplicity, 1))
        return round(s / 100.0, 2) if self.rescue_path else s

    def to_dict(self) -> dict:
        doc = self.finding.to_dict()
        doc.update({
            "function": self.function,
            "hot_depth": self.hot_depth,
            "local_depth": self.local_depth,
            "loop_depth": self.loop_depth,
            "trip_estimate": self.trips,
            "trip_basis": self.trip_basis,
            "multiplicity": self.multiplicity,
            "score": self.score,
            "rescue_path": self.rescue_path,
            "hot_via": list(self.via),
        })
        return doc


class _PerfScope:
    """Resolved hotness of one AST node's enclosing function."""

    def __init__(self, fn: FunctionNode | None, hot: HotInfo | None,
                 is_callback: bool) -> None:
        self.fn = fn
        self.hot = hot
        self.is_callback = is_callback

    @property
    def qualname(self) -> str:
        return self.fn.qualname if self.fn is not None else "<module>"


def _scope_of(ctx: LintContext, node: ast.AST) -> _PerfScope:
    index: HotPathIndex = ctx.hot          # type: ignore[attr-defined]
    graph: CallGraph = index.graph
    fn = graph.function_at(ctx.path, getattr(node, "lineno", 1))
    hot = None
    cur = fn
    while cur is not None:
        hot = index.info.get(cur.key)
        if hot is not None:
            break
        cur = (graph.nodes.get((ctx.path, cur.parent))
               if cur.parent else None)
    is_cb = fn is not None and fn.key in graph.callbacks
    return _PerfScope(fn, hot, is_cb)


def _local_depth(ctx: LintContext, node: ast.AST) -> int:
    """for/while/comprehension nesting of ``node`` inside its function."""
    depth = 0
    cur: ast.AST = node
    parent = ctx.parents.get(cur)
    while parent is not None and not isinstance(parent, _FUNCS):
        if isinstance(parent, ast.For):
            if cur is not parent.iter and cur is not parent.target:
                depth += 1
        elif isinstance(parent, ast.While):
            if cur is not parent.test:
                depth += 1
        elif isinstance(parent, _ALL_COMPS):
            skip = (isinstance(cur, ast.comprehension)
                    and parent.generators
                    and cur is parent.generators[0])
            if not skip:
                depth += len(parent.generators)
        cur = parent
        parent = ctx.parents.get(parent)
    return depth


def _in_except_handler(ctx: LintContext, node: ast.AST) -> bool:
    cur = ctx.parents.get(node)
    while cur is not None and not isinstance(cur, _FUNCS):
        if isinstance(cur, ast.ExceptHandler):
            return True
        cur = ctx.parents.get(cur)
    return False


def _enclosing_loop(ctx: LintContext, node: ast.AST):
    """Innermost For/While whose body contains ``node`` (same function)."""
    cur: ast.AST = node
    parent = ctx.parents.get(cur)
    while parent is not None and not isinstance(parent, _FUNCS):
        if isinstance(parent, ast.For) and cur is not parent.iter \
                and cur is not parent.target:
            return parent
        if isinstance(parent, ast.While) and cur is not parent.test:
            return parent
        cur = parent
        parent = ctx.parents.get(parent)
    return None


def _loop_vars(ctx: LintContext, node: ast.AST) -> set[str]:
    """Targets of every enclosing For / comprehension around ``node``."""
    out: set[str] = set()
    cur: ast.AST = node
    parent = ctx.parents.get(cur)
    while parent is not None and not isinstance(parent, _FUNCS):
        if isinstance(parent, ast.For) and cur is not parent.iter:
            for n in ast.walk(parent.target):
                if isinstance(n, ast.Name):
                    out.add(n.id)
        elif isinstance(parent, _ALL_COMPS):
            for gen in parent.generators:
                for n in ast.walk(gen.target):
                    if isinstance(n, ast.Name):
                        out.add(n.id)
        cur = parent
        parent = ctx.parents.get(parent)
    return out


def _iterating_trips(ctx: LintContext, node: ast.AST,
                     scope: _PerfScope) -> tuple[int, str]:
    """Trip estimate for a site that runs repeatedly (loop/callback)."""
    loop = _enclosing_loop(ctx, node)
    if isinstance(loop, ast.For):
        return estimate_trips(loop.iter)
    if loop is not None:
        return DEFAULT_TRIP, "while-loop"
    if scope.is_callback:
        return DEFAULT_TRIP, "per-step-callback"
    return DEFAULT_TRIP, "comprehension-axis"


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _subscripted_by(node: ast.AST, names: set[str]) -> list[str]:
    """Arrays subscripted with any of ``names`` inside ``node``."""
    hits: list[str] = []
    for n in ast.walk(node):
        if isinstance(n, ast.Subscript) and _names_in(n.slice) & names:
            base = dotted_name(n.value)
            if base:
                hits.append(base)
    return hits


# --------------------------------------------------------------------------
# rule base
# --------------------------------------------------------------------------

class PerfRule(Rule):
    """Base for PERF rules: fire only inside inferred hot scopes.

    Subclasses implement :meth:`check_perf` yielding
    :class:`PerfFinding`; the plain :meth:`check` view (used by the
    generic engine, should anyone select a PERF rule there) strips the
    metadata.
    """

    severity = Severity.WARNING

    def applies(self, ctx: LintContext) -> bool:
        return (getattr(ctx, "hot", None) is not None
                and not ctx.is_test)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for pf in self.check_perf(ctx):
            yield pf.finding

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        raise NotImplementedError

    # -- helpers shared by the concrete rules -----------------------------

    def _emit(self, ctx: LintContext, node: ast.AST, message: str,
              scope: _PerfScope, trips: int, basis: str,
              local: int | None = None) -> PerfFinding:
        hot = scope.hot
        return PerfFinding(
            finding=ctx.finding(self, node, message),
            function=scope.qualname,
            hot_depth=hot.depth if hot else 0,
            local_depth=(_local_depth(ctx, node) if local is None
                         else local),
            trips=trips, trip_basis=basis,
            multiplicity=hot.multiplicity if hot else 1,
            via=hot.via if hot else (),
            rescue_path=_in_except_handler(ctx, node))

    def _hot_nodes(self, ctx: LintContext, types) -> Iterator[tuple]:
        """(node, scope) for nodes of ``types`` inside hot scopes."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, types):
                continue
            scope = _scope_of(ctx, node)
            if scope.hot is None:
                continue
            yield node, scope

    @staticmethod
    def _in_iterating_context(scope: _PerfScope, local: int) -> bool:
        """Does this site run repeatedly?

        Either it sits inside a loop locally, or its whole scope is a
        callback an iterative consumer (ODE integrator, root finder)
        invokes per step.
        """
        return local >= 1 or scope.is_callback


# --------------------------------------------------------------------------
# the rules
# --------------------------------------------------------------------------

@register
class PerElementLoopRule(PerfRule):
    code = "PERF001"
    name = "per-element-loop"
    severity = Severity.WARNING
    description = ("Python for-loop over range(...) indexing ndarray "
                   "elements on a hot path — a per-cell interpreter "
                   "round-trip per element; replace with a whole-array "
                   "numpy expression.")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx, ast.For):
            if not (isinstance(node.iter, ast.Call)
                    and call_name(node.iter) == "range"):
                continue
            targets = {n.id for n in ast.walk(node.target)
                       if isinstance(n, ast.Name)}
            arrays = []
            for stmt in node.body:
                arrays += _subscripted_by(stmt, targets)
            if not arrays:
                continue
            uniq = sorted(set(arrays))
            trips, basis = estimate_trips(node.iter)
            yield self._emit(
                ctx, node,
                f"per-element loop indexing {', '.join(uniq[:4])} "
                f"(~{trips} trips) — vectorize over the array axis",
                scope, trips, basis,
                local=_local_depth(ctx, node) + 1)


@register
class ListCompToArrayRule(PerfRule):
    code = "PERF002"
    name = "listcomp-to-array"
    severity = Severity.WARNING
    description = ("Per-cell list comprehension materialised through "
                   "np.array/np.stack/np.concatenate on a hot path — "
                   "builds Python objects per element; use a batched "
                   "call over the axis (e.g. "
                   "repro.numerics.interp_columns).")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx, ast.Call):
            if call_name(node) not in _NP_FROM_COMP or not node.args:
                continue
            arg = node.args[0]
            if not isinstance(arg, _COMPS):
                continue
            gen = arg.generators[0]
            trips, basis = estimate_trips(gen.iter)
            yield self._emit(
                ctx, node,
                f"{call_name(node)} over a list comprehension "
                f"(~{trips} trips) — replace the per-element loop "
                "with one batched array operation",
                scope, trips, basis,
                local=_local_depth(ctx, node) + len(arg.generators))


@register
class ScalarMathInLoopRule(PerfRule):
    code = "PERF003"
    name = "scalar-math-in-loop"
    severity = Severity.WARNING
    description = ("math.* call or float(...) coercion inside a hot "
                   "loop/per-step callback — forces scalar Python "
                   "round-trips per element; keep the data in arrays "
                   "and use np.* on the whole axis.")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx, ast.Call):
            fn = call_name(node)
            is_math = fn.startswith("math.")
            is_coerce = (fn == "float" and node.args
                         and isinstance(node.args[0],
                                        (ast.Call, ast.Subscript)))
            if not (is_math or is_coerce):
                continue
            local = _local_depth(ctx, node)
            if not self._in_iterating_context(scope, local):
                continue
            trips, basis = _iterating_trips(ctx, node, scope)
            what = (f"scalar {fn} call" if is_math
                    else "float(...) scalar coercion")
            yield self._emit(
                ctx, node,
                f"{what} in an iterating hot scope (~{trips} "
                "trips) — batch the computation over the array axis",
                scope, trips, basis, local=max(local, 1))


@register
class AllocInLoopRule(PerfRule):
    code = "PERF004"
    name = "alloc-in-loop"
    severity = Severity.WARNING
    description = ("Array allocation (np.zeros/np.empty/.copy()/...) "
                   "inside a stepping loop or per-step callback — "
                   "allocator pressure per iteration; hoist the buffer "
                   "out and reuse it (out=, in-place ops).")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx, ast.Call):
            fn = call_name(node)
            is_alloc = fn in _NP_ALLOC or fn.endswith(".copy")
            if not is_alloc:
                continue
            local = _local_depth(ctx, node)
            if not self._in_iterating_context(scope, local):
                continue
            trips, basis = _iterating_trips(ctx, node, scope)
            yield self._emit(
                ctx, node,
                f"{fn} allocates inside an iterating hot scope "
                f"(~{trips} trips) — hoist the buffer and reuse it",
                scope, trips, basis, local=max(local, 1))


@register
class ArrayGrowthInLoopRule(PerfRule):
    code = "PERF005"
    name = "array-growth-in-loop"
    severity = Severity.WARNING
    description = ("np.append/np.concatenate/np.vstack inside a loop — "
                   "quadratic copying as the array regrows per "
                   "iteration; preallocate or collect once and "
                   "concatenate after the loop.")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx, ast.Call):
            if call_name(node) not in _NP_GROW:
                continue
            if node.args and isinstance(node.args[0], _COMPS):
                continue                      # PERF002's pattern
            local = _local_depth(ctx, node)
            if local < 1:
                continue
            loop = _enclosing_loop(ctx, node)
            trips, basis = (estimate_trips(loop.iter)
                            if isinstance(loop, ast.For)
                            else (DEFAULT_TRIP, "while-loop"))
            yield self._emit(
                ctx, node,
                f"{call_name(node)} grows an array inside a loop "
                f"(~{trips} trips, quadratic copying) — preallocate "
                "or concatenate once after the loop",
                scope, trips, basis, local=local)


@register
class LoopInvariantKernelRule(PerfRule):
    code = "PERF006"
    name = "loop-invariant-kernel"
    severity = Severity.WARNING
    description = ("Pure property-kernel call (NASA-7 cp/h/s, mixture "
                   "thermo, transport fits) re-evaluated inside a loop "
                   "with loop-invariant arguments — identical result "
                   "every iteration; hoist it above the loop.")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx, ast.Call):
            bare = call_name(node).rsplit(".", 1)[-1]
            if bare not in PURE_KERNELS:
                continue
            loop = _enclosing_loop(ctx, node)
            if loop is None:
                continue
            mutated = self._mutated_in(loop) | _loop_vars(ctx, node)
            args = [*node.args, *(kw.value for kw in node.keywords)]
            invariant = all(
                not (_names_in(a) & mutated)
                and not any(isinstance(n, ast.Call) for n in ast.walk(a))
                for a in args)
            # the bound object itself must not be rebound in the loop
            base = call_name(node).split(".", 1)[0]
            if base in mutated or not invariant:
                continue
            trips, basis = (estimate_trips(loop.iter)
                            if isinstance(loop, ast.For)
                            else (DEFAULT_TRIP, "while-loop"))
            yield self._emit(
                ctx, node,
                f"loop-invariant kernel {call_name(node)}(...) "
                f"recomputed ~{trips} times — hoist the call above "
                "the loop",
                scope, trips, basis)

    @staticmethod
    def _mutated_in(loop: ast.AST) -> set[str]:
        out: set[str] = set()
        for n in ast.walk(loop):
            if isinstance(n, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                tgts = (n.targets if isinstance(n, ast.Assign)
                        else [n.target])
                for t in tgts:
                    for nn in ast.walk(t):
                        if isinstance(nn, ast.Name):
                            out.add(nn.id)
            elif isinstance(n, ast.For):
                for nn in ast.walk(n.target):
                    if isinstance(nn, ast.Name):
                        out.add(nn.id)
        return out


@register
class ScalarAccumulationRule(PerfRule):
    code = "PERF007"
    name = "scalar-accumulation"
    severity = Severity.WARNING
    description = ("Python-float accumulation over array elements "
                   "(acc += x[i] in a loop, or sum(... x[i] ...)) — "
                   "per-element interpreter arithmetic; use "
                   "np.sum/np.dot/np.einsum over the axis.")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx,
                                           (ast.AugAssign, ast.Call)):
            if isinstance(node, ast.AugAssign):
                if not (isinstance(node.op, (ast.Add, ast.Sub))
                        and isinstance(node.target, ast.Name)):
                    continue
                lvars = _loop_vars(ctx, node)
                if not lvars or not _subscripted_by(node.value, lvars):
                    continue
                loop = _enclosing_loop(ctx, node)
                trips, basis = (estimate_trips(loop.iter)
                                if isinstance(loop, ast.For)
                                else (DEFAULT_TRIP, "while-loop"))
                yield self._emit(
                    ctx, node,
                    f"scalar accumulation of array elements into "
                    f"{node.target.id!r} (~{trips} trips) — use "
                    "np.sum/np.dot over the axis",
                    scope, trips, basis)
            else:
                if call_name(node) != "sum" or not node.args:
                    continue
                arg = node.args[0]
                if not isinstance(arg, _COMPS):
                    continue
                gvars = {n.id for gen in arg.generators
                         for n in ast.walk(gen.target)
                         if isinstance(n, ast.Name)}
                if not _subscripted_by(arg.elt, gvars):
                    continue
                trips, basis = estimate_trips(arg.generators[0].iter)
                yield self._emit(
                    ctx, node,
                    f"built-in sum over subscripted elements "
                    f"(~{trips} trips) — use np.sum/np.einsum",
                    scope, trips, basis,
                    local=_local_depth(ctx, node) + len(arg.generators))


@register
class DtypeChurnInLoopRule(PerfRule):
    code = "PERF008"
    name = "dtype-churn-in-loop"
    severity = Severity.WARNING
    description = ("Per-iteration dtype conversion/rewrap (.astype, "
                   "np.asarray(x, dtype=...), np.array(scalar)) inside "
                   "a hot loop or per-step callback — a full copy or "
                   "object round-trip every iteration; convert once "
                   "outside.")

    def check_perf(self, ctx: LintContext) -> Iterator[PerfFinding]:
        for node, scope in self._hot_nodes(ctx, ast.Call):
            fn = call_name(node)
            is_astype = fn.endswith(".astype")
            rewrap = (fn in ("np.asarray", "np.array", "numpy.asarray",
                             "numpy.array")
                      and node.args
                      and isinstance(node.args[0], ast.Name))
            if not (is_astype or rewrap):
                continue
            local = _local_depth(ctx, node)
            if not self._in_iterating_context(scope, local):
                continue
            trips, basis = _iterating_trips(ctx, node, scope)
            what = fn if not is_astype else ".astype"
            yield self._emit(
                ctx, node,
                f"{what} conversion repeated ~{trips} times in an "
                "iterating hot scope — convert once outside the loop",
                scope, trips, basis, local=max(local, 1))


#: The PERF rule view of the global registry.
def perf_rule_codes() -> list[str]:
    from repro.analysis.engine import RULES
    return sorted(code for code in RULES if code.startswith("PERF"))


# --------------------------------------------------------------------------
# the perf engine
# --------------------------------------------------------------------------

def perf_lint_source(source: str, path: str, index: HotPathIndex,
                     select: Iterable[str] | None = None,
                     ) -> list[PerfFinding]:
    """Run the PERF rules over one module with a prebuilt hot index."""
    from repro.analysis.engine import RULES
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    ctx = LintContext(path, source, tree)
    ctx.hot = index                       # type: ignore[attr-defined]
    pragmas = PragmaIndex.from_source(source)
    selected = set(select) if select is not None else None
    out: list[PerfFinding] = []
    for code in perf_rule_codes():
        rule = RULES[code]
        if selected is not None and code not in selected:
            continue
        if not rule.applies(ctx):
            continue
        for pf in rule.check_perf(ctx):
            if not pragmas.disabled(pf.finding.rule, pf.finding.line):
                out.append(pf)
    out.sort(key=lambda pf: (pf.finding.path, pf.finding.line,
                             pf.finding.col, pf.finding.rule))
    return out


def perf_lint_paths(paths: Iterable[str],
                    select: Iterable[str] | None = None,
                    anchor=default_anchor) -> list[PerfFinding]:
    """Build the call graph + hot index over ``paths``, run PERF rules.

    The whole path set feeds the graph (benchmarks anchor kernels even
    though PERF rules skip test files), then every non-test module is
    linted against the shared index.
    """
    sources: dict[str, str] = {}
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                sources[path] = fh.read()
        except (OSError, UnicodeDecodeError):
            continue
    graph = CallGraph()
    for path, source in sources.items():
        CallGraph.from_source(source, path=path, graph=graph)
    index = HotPathIndex.build(graph, anchor=anchor)
    findings: list[PerfFinding] = []
    for path, source in sources.items():
        findings.extend(perf_lint_source(source, path, index,
                                         select=select))
    return findings


def rank_worklist(findings: list[PerfFinding]) -> list[PerfFinding]:
    """Stable score-descending ranking (ties: path/line order)."""
    return sorted(findings,
                  key=lambda pf: (-pf.score, pf.finding.path,
                                  pf.finding.line, pf.finding.rule))
