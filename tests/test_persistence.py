"""Durable checkpoint/restart tests.

The contract under test (see DESIGN.md "Durable persistence"):

* save -> kill -> resume reproduces the uninterrupted trajectory **bit
  for bit** on every marching solver,
* corruption of the latest snapshot (truncation, bit flip, torn
  manifest) is detected by SHA-256 verification and recovery proceeds
  from the previous generation,
* writes are atomic (no live temp files), retention keeps last K,
* resuming into the wrong directory is refused by config fingerprint,
* a real SIGKILLed process resumes from disk,
* the figure suite skips completed figures and re-enters interrupted
  ones.
"""

import json
import os
import signal
import subprocess
import sys
import time
import types

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.resilience import (Checkpoint, FaultInjector, PersistencePolicy,
                              SimulatedCrash, SnapshotStore, resume_run,
                              solver_fingerprint)

# ----------------------------------------------------------------------
# solver case matrix
# ----------------------------------------------------------------------


def _make_euler1d():
    from repro.solvers.euler1d import Euler1DSolver
    s = Euler1DSolver(np.linspace(0.0, 1.0, 41))
    rho = np.where(s.xc < 0.5, 1.0, 0.125)
    p = np.where(s.xc < 0.5, 1.0, 0.1)
    return s.set_initial(rho, 0.0, p)


def _blunt(cls, **kw):
    from repro.core.gas import IdealGasEOS
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    grid = blunt_body_grid(Hemisphere(1.0), n_s=13, n_normal=17,
                           density_ratio=0.2, margin=2.5)
    s = cls(grid, IdealGasEOS(1.4), **kw)
    rho, T = 0.01, 220.0
    s.set_freestream(rho, 8.0 * np.sqrt(1.4 * 287.0528 * T),
                     rho * 287.0528 * T)
    return s


def _make_euler2d():
    from repro.solvers.euler2d import AxisymmetricEulerSolver
    return _blunt(AxisymmetricEulerSolver)


def _make_ns2d():
    from repro.solvers.ns2d import AxisymmetricNSSolver
    return _blunt(AxisymmetricNSSolver, T_wall=500.0)


def _make_reacting():
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.reacting_euler2d import ReactingEulerSolver
    from repro.thermo.species import species_set
    grid = blunt_body_grid(Hemisphere(0.05), n_s=9, n_normal=13,
                           density_ratio=0.12, margin=2.5)
    db = species_set("air5")
    s = ReactingEulerSolver(grid, db)
    y = np.zeros(db.n)
    y[db.index["N2"]] = 0.767
    y[db.index["O2"]] = 0.233
    return s.set_freestream(1e-3, 5000.0, 250.0, y)


#: name -> (factory, run(solver, **kw), total steps, crash step)
CASES = {
    "euler1d": (_make_euler1d,
                lambda s, **kw: s.run(0.1, cfl=0.4, **kw), 20, 13),
    "euler2d": (_make_euler2d,
                lambda s, **kw: s.run(n_steps=24, cfl=0.3, **kw), 24, 15),
    "ns2d": (_make_ns2d,
             lambda s, **kw: s.run(n_steps=16, cfl=0.3, **kw), 16, 11),
    "reacting_euler2d": (_make_reacting,
                         lambda s, **kw: s.run(n_steps=10, cfl=0.3, **kw),
                         10, 7),
}


def _state_bytes(solver):
    out = {}
    for k, v in solver.get_state().items():
        out[k] = v.tobytes() if isinstance(v, np.ndarray) else v
    return out


# ----------------------------------------------------------------------
# save -> kill -> resume round-trips
# ----------------------------------------------------------------------


class TestCrashResumeRoundTrip:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_bitwise_identical_after_crash_resume(self, name, tmp_path):
        factory, run, _n, crash_step = CASES[name]
        ref = factory()
        run(ref)

        d = tmp_path / name
        crashed = factory()
        faults = FaultInjector().inject_crash(step=crash_step)
        with pytest.raises(SimulatedCrash):
            run(crashed, faults=faults,
                persist=PersistencePolicy(d, every_n_steps=4))
        assert faults.n_fired == 1

        resumed = resume_run(d)
        assert type(resumed) is type(ref)
        ref_state, res_state = _state_bytes(ref), _state_bytes(resumed)
        assert sorted(ref_state) == sorted(res_state)
        for key in ref_state:
            assert res_state[key] == ref_state[key], key

    @pytest.mark.parametrize("name", ["euler1d", "euler2d"])
    def test_completed_run_resumes_as_noop(self, name, tmp_path):
        factory, run, n, _crash = CASES[name]
        d = tmp_path / name
        done = factory()
        run(done, persist=PersistencePolicy(d, every_n_steps=4))
        again = resume_run(d)
        assert again.steps == done.steps
        assert again.U.tobytes() == done.U.tobytes()

    def test_rerun_with_same_dir_continues_mid_march(self, tmp_path):
        """Re-entering run(persist=dir) after a crash (the figure-suite
        path) resumes instead of restarting."""
        factory, run, _n, crash_step = CASES["euler2d"]
        ref = factory()
        run(ref)
        d = tmp_path / "ck"
        s = factory()
        with pytest.raises(SimulatedCrash):
            run(s, faults=FaultInjector().inject_crash(step=crash_step),
                persist=PersistencePolicy(d, every_n_steps=4))
        s2 = factory()
        run(s2, persist=PersistencePolicy(d, every_n_steps=4))
        assert s2.U.tobytes() == ref.U.tobytes()
        # the resumed march must not have replayed from step 0
        assert len(s2.residual_history) == len(ref.residual_history)


# ----------------------------------------------------------------------
# corruption recovery
# ----------------------------------------------------------------------


def _persisted_euler2d(d, *, every=4, crash=15):
    factory, run, _n, _c = CASES["euler2d"]
    s = factory()
    with pytest.raises(SimulatedCrash):
        run(s, faults=FaultInjector().inject_crash(step=crash),
            persist=PersistencePolicy(d, every_n_steps=every))
    return s


class TestCorruptionRecovery:
    def test_truncated_npz_falls_back_a_generation(self, tmp_path):
        d = tmp_path / "ck"
        _persisted_euler2d(d)
        store = SnapshotStore(PersistencePolicy(d))
        seqs = store.sequences()
        assert len(seqs) >= 2
        npz, _man = store._paths(seqs[-1])
        size = os.path.getsize(npz)
        with open(npz, "r+b") as f:
            f.truncate(size // 2)
        snap = store.load_latest()
        assert snap.seq == seqs[-2]
        assert store.recovery_log and \
            store.recovery_log[0]["seq"] == seqs[-1]

    def test_flipped_checksum_byte_falls_back(self, tmp_path):
        d = tmp_path / "ck"
        _persisted_euler2d(d)
        store = SnapshotStore(PersistencePolicy(d))
        seqs = store.sequences()
        npz, _man = store._paths(seqs[-1])
        size = os.path.getsize(npz)
        with open(npz, "r+b") as f:
            f.seek(size // 2)
            b = f.read(1)
            f.seek(size // 2)
            f.write(bytes([b[0] ^ 0xFF]))
        snap = store.load_latest()
        assert snap.seq == seqs[-2]
        assert "sha" in store.recovery_log[0]["reason"].lower() or \
            store.recovery_log[0]["reason"]

    def test_torn_manifest_falls_back(self, tmp_path):
        d = tmp_path / "ck"
        _persisted_euler2d(d)
        store = SnapshotStore(PersistencePolicy(d))
        seqs = store.sequences()
        _npz, man = store._paths(seqs[-1])
        size = os.path.getsize(man)
        with open(man, "r+b") as f:
            f.truncate(size // 2)
        snap = store.load_latest()
        assert snap.seq == seqs[-2]

    def test_scripted_io_faults_and_resume_equivalence(self, tmp_path):
        """FaultInjector IO faults corrupt a commit; the resumed run
        still lands bitwise-identical to the uninterrupted one."""
        factory, run, _n, crash_step = CASES["euler2d"]
        ref = factory()
        run(ref)
        for kind in ("truncate", "bitflip", "torn"):
            d = tmp_path / kind
            s = factory()
            faults = (FaultInjector()
                      .inject_crash(step=crash_step)
                      .inject_io_fault(kind=kind, write=2))
            with pytest.raises(SimulatedCrash):
                run(s, faults=faults,
                    persist=PersistencePolicy(d, every_n_steps=4))
            kinds = [e["kind"] for e in faults.log]
            assert "io" in kinds and "crash" in kinds
            resumed = resume_run(d)
            assert resumed.U.tobytes() == ref.U.tobytes(), kind

    def test_all_generations_corrupt_raises_with_trail(self, tmp_path):
        d = tmp_path / "ck"
        _persisted_euler2d(d)
        store = SnapshotStore(PersistencePolicy(d))
        for seq in store.sequences():
            npz, _man = store._paths(seq)
            with open(npz, "r+b") as f:
                f.truncate(8)
        with pytest.raises(CheckpointError) as exc:
            store.load_latest()
        assert len(exc.value.recovery_log) == len(store.sequences())


# ----------------------------------------------------------------------
# store mechanics
# ----------------------------------------------------------------------


class TestStoreMechanics:
    def test_retention_keeps_last_k(self, tmp_path):
        d = tmp_path / "ck"
        factory, run, _n, _c = CASES["euler1d"]
        s = factory()
        run(s, persist=PersistencePolicy(d, every_n_steps=2,
                                         keep_last=2))
        store = SnapshotStore(PersistencePolicy(d))
        assert len(store.sequences()) == 2

    def test_no_temp_files_survive(self, tmp_path):
        d = tmp_path / "ck"
        _persisted_euler2d(d)
        assert not [f for f in os.listdir(d) if f.startswith(".tmp-")]

    def test_keep_last_below_two_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            SnapshotStore(PersistencePolicy(tmp_path, keep_last=1))

    def test_manifest_schema_fields(self, tmp_path):
        d = tmp_path / "ck"
        _persisted_euler2d(d)
        store = SnapshotStore(PersistencePolicy(d))
        _npz, man = store._paths(store.sequences()[-1])
        with open(man) as f:
            m = json.load(f)
        for key in ("schema_version", "seq", "solver_class", "config",
                    "fingerprint", "step", "march", "run", "completed",
                    "converged", "payload", "npz"):
            assert key in m, key
        assert m["schema_version"] == 1
        assert m["solver_class"].startswith("repro.solvers.")
        for entry in m["payload"].values():
            if entry["type"] != "none":
                assert len(entry["sha256"]) == 64

    def test_fingerprint_mismatch_refused(self, tmp_path):
        from repro.core.gas import IdealGasEOS
        from repro.solvers.euler1d import Euler1DSolver
        d = tmp_path / "ck"
        factory, run, _n, _c = CASES["euler1d"]
        run(factory(), persist=PersistencePolicy(d, every_n_steps=4))
        other = Euler1DSolver(np.linspace(0.0, 1.0, 41),
                              IdealGasEOS(1.3))
        rho = np.where(other.xc < 0.5, 1.0, 0.125)
        other.set_initial(rho, 0.0, np.where(other.xc < 0.5, 1.0, 0.1))
        store = SnapshotStore(PersistencePolicy(d))
        with pytest.raises(CheckpointError, match="fingerprint"):
            store.load_latest(solver=other)

    def test_fingerprint_stable_across_rebuild(self, tmp_path):
        for name in ("euler1d", "euler2d", "ns2d", "reacting_euler2d"):
            factory, run, _n, crash = CASES[name]
            d = tmp_path / name
            s = factory()
            with pytest.raises(SimulatedCrash):
                run(s, faults=FaultInjector().inject_crash(step=crash),
                    persist=PersistencePolicy(d, every_n_steps=4))
            from repro.resilience.persistence import rebuild_solver
            snap = SnapshotStore(PersistencePolicy(d)).load_latest()
            rebuilt = rebuild_solver(snap)
            assert solver_fingerprint(rebuilt) == \
                snap.manifest["fingerprint"], name

    def test_resume_empty_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            resume_run(tmp_path / "nothing-here")


# ----------------------------------------------------------------------
# checkpoint deep-copy regression (satellite fix)
# ----------------------------------------------------------------------


class TestCheckpointDeepCopy:
    def test_nested_arrays_are_not_aliased(self):
        class Toy:
            def __init__(self):
                self.U = np.ones(3)
                self.steps = 0
                self.cache = {"warm": np.arange(3.0),
                              "trace": [np.zeros(2)]}

            def get_state(self):
                return {"U": self.U.copy(), "steps": self.steps,
                        "cache": self.cache}

            def set_state(self, state):
                self.U = state["U"]
                self.steps = state["steps"]
                self.cache = state["cache"]

        toy = Toy()
        ck = Checkpoint.capture(toy)
        # mutate live state through the ORIGINAL nested arrays
        toy.cache["warm"][:] = -99.0
        toy.cache["trace"][0][:] = -99.0
        ck.restore(toy)
        assert np.all(toy.cache["warm"] == np.arange(3.0))
        # catlint: disable=CAT010 -- bitwise restore contract: restored array must be exact
        assert np.all(toy.cache["trace"][0] == 0.0)
        # and restore() must hand out fresh copies each time
        toy.cache["warm"][:] = -1.0
        ck.restore(toy)
        assert np.all(toy.cache["warm"] == np.arange(3.0))


# ----------------------------------------------------------------------
# real SIGKILL: a separate process dies mid-march, we resume its files
# ----------------------------------------------------------------------


_SIGKILL_DRIVER = """
import sys, time
import numpy as np
from repro.solvers.euler1d import Euler1DSolver
from repro.resilience import PersistencePolicy

d = sys.argv[1]
s = Euler1DSolver(np.linspace(0.0, 1.0, 41))
rho = np.where(s.xc < 0.5, 1.0, 0.125)
p = np.where(s.xc < 0.5, 1.0, 0.1)
s.set_initial(rho, 0.0, p)
_orig = s.step
def slow_step(dt):
    time.sleep(0.05)   # stretch the march so the parent can SIGKILL it
    _orig(dt)
s.step = slow_step
s.run(0.1, cfl=0.4, persist=PersistencePolicy(d, every_n_steps=2))
"""


class TestRealSigkill:
    def test_sigkilled_process_resumes_bitwise(self, tmp_path):
        factory, run, _n, _c = CASES["euler1d"]
        ref = factory()
        run(ref)

        d = str(tmp_path / "ck")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen([sys.executable, "-c", _SIGKILL_DRIVER, d],
                                env=env, stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 60.0
            store = SnapshotStore(PersistencePolicy(d))
            while time.monotonic() < deadline:
                if len(store.sequences()) >= 2 or proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert store.sequences(), "driver never committed a snapshot"
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        resumed = resume_run(d)
        assert resumed.U.tobytes() == ref.U.tobytes()
        assert resumed.t == ref.t
        assert resumed.steps == ref.steps


# ----------------------------------------------------------------------
# figure suite: done markers + mid-march resume
# ----------------------------------------------------------------------


class TestFigureSuiteResume:
    def _fake_modules(self, calls, fail_on=None):
        def make(name):
            def main(quick=True):
                if name == fail_on:
                    raise SimulatedCrash(f"{name} killed")
                calls.append(name)
                return f"{name} output"
            return types.SimpleNamespace(__doc__=f"{name} doc\n",
                                         main=main)
        return [(n, make(n)) for n in ("figA", "figB", "figC")]

    def test_done_markers_skip_completed_figures(self, tmp_path,
                                                 monkeypatch):
        import io

        from repro.experiments import runner
        calls: list = []
        monkeypatch.setattr(runner, "_MODULES",
                            self._fake_modules(calls, fail_on="figB"))
        d = str(tmp_path / "suite")
        with pytest.raises(SimulatedCrash):
            runner.run_all(checkpoint_dir=d, stream=io.StringIO())
        assert calls == ["figA"]
        assert os.path.exists(os.path.join(d, "figA.done"))

        calls.clear()
        monkeypatch.setattr(runner, "_MODULES",
                            self._fake_modules(calls))
        out = io.StringIO()
        res = runner.run_all(checkpoint_dir=d, resume=True, stream=out)
        assert res["skipped"] == ["figA"]
        assert calls == ["figB", "figC"]   # figA replayed, not re-run
        assert "figA output" in out.getvalue()
        assert not res["failures"]

    def test_non_resume_run_clears_stale_state(self, tmp_path,
                                               monkeypatch):
        import io

        from repro.experiments import runner
        calls: list = []
        monkeypatch.setattr(runner, "_MODULES",
                            self._fake_modules(calls))
        d = str(tmp_path / "suite")
        runner.run_all(checkpoint_dir=d, stream=io.StringIO())
        calls.clear()
        res = runner.run_all(checkpoint_dir=d, resume=False,
                             stream=io.StringIO())
        assert calls == ["figA", "figB", "figC"]  # everything re-ran
        assert res["skipped"] == []


# ----------------------------------------------------------------------
# CLI flag handling (satellite)
# ----------------------------------------------------------------------


class TestFiguresCLI:
    def test_help_exits_zero(self, capsys):
        from repro.__main__ import main
        assert main(["--help"]) == 0
        assert "checkpoint-dir" in capsys.readouterr().out

    def test_unknown_command_exits_two_with_usage(self, capsys):
        from repro.__main__ import main
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown command" in err and "usage" in err

    def test_unknown_figures_flag_exits_two(self, capsys):
        from repro.__main__ import main
        assert main(["figures", "--fast"]) == 2

    def test_resume_without_dir_exits_two(self, capsys):
        from repro.__main__ import main
        assert main(["figures", "--resume"]) == 2

    def test_checkpoint_dir_needs_value(self, capsys):
        from repro.__main__ import main
        assert main(["figures", "--checkpoint-dir"]) == 2


# ----------------------------------------------------------------------
# concurrent writers: the exclusive manifest commit (satellite)
# ----------------------------------------------------------------------


class TestConcurrentCommit:
    """Two live processes hammering one store must settle every
    generation race at the ``os.link`` commit point: exactly one writer
    wins each sequence number, the loser retries on the next, and the
    store stays loadable with no temp-file litter."""

    def test_two_process_manifest_race_stays_consistent(self, tmp_path):
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        d = str(tmp_path / "store")
        barrier = ctx.Barrier(2)
        n_saves = 6

        def writer():
            solver = _make_euler1d()
            store = SnapshotStore(PersistencePolicy(
                dir=d, keep_last=100, fsync=False))
            barrier.wait()   # maximise overlap of the save loops
            for _ in range(n_saves):
                store.save(solver)

        procs = [ctx.Process(target=writer) for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
            assert p.exitcode == 0
        store = SnapshotStore(PersistencePolicy(dir=d, keep_last=100))
        # every save committed exactly one generation; probing upward
        # from a stale scan can skip a number only if it is occupied,
        # so the committed sequence is gapless
        assert store.sequences() == list(range(2 * n_saves))
        # the temporally-last commit holds the highest seq and its
        # payload was written by the same process, so the walk finds a
        # verified generation even if a raced npz was clobbered
        loaded = store.load_latest()
        assert loaded is not None
        reference = _make_euler1d().get_state()
        for name in reference:
            np.testing.assert_array_equal(loaded.state[name],
                                          reference[name])
        assert not [n for n in os.listdir(d) if n.startswith(".tmp-")]
