"""Exception hierarchy for the CAT toolkit.

Every error the library raises deliberately derives from :class:`CatError`
so callers can catch toolkit failures without catching programming errors.
"""

from __future__ import annotations


class CatError(Exception):
    """Base class for all errors raised by the `repro` toolkit."""


class ConvergenceError(CatError):
    """An iterative solver failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual (solver-defined norm), if known.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class InputError(CatError, ValueError):
    """User-supplied input is out of the physically meaningful range."""


class SpeciesError(CatError, KeyError):
    """Unknown chemical species or inconsistent species set."""


class GridError(CatError):
    """Grid construction or metric evaluation failed."""


class StabilityError(CatError):
    """A time-marching solution became non-physical (NaN, negative density)."""

    def __init__(self, message: str, *, step: int | None = None) -> None:
        super().__init__(message)
        self.step = step


class TableRangeError(CatError):
    """A tabulated property lookup fell outside the table's domain."""

    def __init__(self, message: str, *, value: float | None = None,
                 lo: float | None = None, hi: float | None = None) -> None:
        super().__init__(message)
        self.value = value
        self.lo = lo
        self.hi = hi
