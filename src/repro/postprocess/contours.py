"""Marching-squares contour extraction on structured (possibly
curvilinear) grids."""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["contour_lines"]

# marching-squares segment table: case -> list of (edge_a, edge_b) pairs;
# edges: 0 bottom (j), 1 right (i+1), 2 top (j+1), 3 left (i)
_SEGMENTS = {
    0: [], 15: [],
    1: [(3, 0)], 14: [(3, 0)],
    2: [(0, 1)], 13: [(0, 1)],
    3: [(3, 1)], 12: [(3, 1)],
    4: [(1, 2)], 11: [(1, 2)],
    6: [(0, 2)], 9: [(0, 2)],
    7: [(3, 2)], 8: [(3, 2)],
    5: [(3, 0), (1, 2)],
    10: [(0, 1), (3, 2)],
}


def _edge_point(edge, i, j, x, y, f, level):
    """Linear interpolation of the level crossing on a cell edge."""
    if edge == 0:
        (i0, j0), (i1, j1) = (i, j), (i + 1, j)
    elif edge == 1:
        (i0, j0), (i1, j1) = (i + 1, j), (i + 1, j + 1)
    elif edge == 2:
        (i0, j0), (i1, j1) = (i, j + 1), (i + 1, j + 1)
    else:
        (i0, j0), (i1, j1) = (i, j), (i, j + 1)
    f0, f1 = f[i0, j0], f[i1, j1]
    # catlint: disable=CAT003 -- division only taken on the f1 != f0 branch
    t = 0.5 if f1 == f0 else np.clip((level - f0) / (f1 - f0), 0.0, 1.0)
    return (x[i0, j0] + t * (x[i1, j1] - x[i0, j0]),
            y[i0, j0] + t * (y[i1, j1] - y[i0, j0]))


def contour_lines(x, y, f, level):
    """Extract contour segments f == level from a structured field.

    Parameters
    ----------
    x, y, f:
        Node coordinate and field arrays, all shape (ni, nj).
    level:
        Contour value.

    Returns
    -------
    List of ((x0, y0), (x1, y1)) segments.  Segments are unordered (no
    polyline stitching) — sufficient for rendering and for locating
    contour positions in tests.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    f = np.asarray(f, dtype=float)
    if not (x.shape == y.shape == f.shape) or x.ndim != 2:
        raise InputError("x, y, f must share a 2-D shape")
    ni, nj = f.shape
    segments = []
    above = f > level
    for i in range(ni - 1):
        for j in range(nj - 1):
            case = (int(above[i, j])
                    | int(above[i + 1, j]) << 1
                    | int(above[i + 1, j + 1]) << 2
                    | int(above[i, j + 1]) << 3)
            for ea, eb in _SEGMENTS[case]:
                pa = _edge_point(ea, i, j, x, y, f, level)
                pb = _edge_point(eb, i, j, x, y, f, level)
                segments.append((pa, pb))
    return segments
