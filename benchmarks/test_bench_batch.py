"""Benchmark: batch front-door throughput and per-request latency.

Two perf trajectories for the "millions of users" service layer, the
same numbers the CI ``batch-smoke`` job records to ``BENCH_batch.json``
(requests/sec plus p50/p99 per-request latency):

* **serial throughput** — a mixed batch of light requests (correlation
  points + equilibrium compositions) measures the envelope/validation/
  breaker overhead per request on top of the raw physics;
* **farm overhead** — the same workload sharded through the solve farm
  (``evaluate_batch_farm``) quantifies what the durable queue, sandbox
  spawn and exactly-once commit cost per chunk.
"""

import os

from repro.resilience.farm import write_bench_json
from repro.service import (BatchPolicy, batch_bench_record,
                           evaluate_batch, evaluate_batch_farm)

BENCH_PATH = os.environ.get("BENCH_BATCH_JSON", "BENCH_batch.json")


def _requests(n):
    reqs = []
    for i in range(n):
        pick = i % 3
        if pick == 0:
            reqs.append({"method": "heat_point", "V": 5000.0 + i,
                         "h": 45e3 + 10.0 * i, "nose_radius": 1.0})
        elif pick == 1:
            reqs.append({"method": "stagnation_correlation",
                         "V": 6000.0 + i, "h": 55e3,
                         "nose_radius": 1.3})
        else:
            reqs.append({"method": "equilibrium_composition",
                         "T": 3000.0 + 5.0 * i, "p": 1.0e4})
    return reqs


def test_bench_batch_serial_throughput(once):
    """Requests/sec of the serial front door on a mixed light batch."""
    n = 300
    result = once(lambda: evaluate_batch(_requests(n)))
    led = result.ledger
    assert led["counts"] == {"ok": n}
    lat = led["latency_s"]
    print(f"\nbatch serial: {n} requests in {led['wall_s']:.3f} s -> "
          f"{led['requests_per_s']:.1f} req/s "
          f"(p50 {lat['p50'] * 1e3:.2f} ms, "
          f"p99 {lat['p99'] * 1e3:.2f} ms)")
    assert led["requests_per_s"] > 20
    write_bench_json(BENCH_PATH, batch_bench_record(result,
                                                    mode="serial"))


def test_bench_batch_farm_overhead(once, tmp_path):
    """Chunked farm path vs serial on the same workload."""
    n = 60
    serial = evaluate_batch(_requests(n))
    farm = once(lambda: evaluate_batch_farm(
        _requests(n), BatchPolicy(),
        queue_dir=str(tmp_path / "q"), n_workers=2, chunk_size=15))
    assert farm.ledger["ok"], farm.ledger
    assert farm.ledger["audit"]["ok"]
    assert farm.counts == serial.counts
    print(f"\nbatch farm -j 2 (4 chunks of 15): "
          f"{farm.ledger['requests_per_s']:.1f} req/s vs serial "
          f"{serial.ledger['requests_per_s']:.1f} req/s "
          f"(farm wall {farm.ledger['wall_s']:.2f} s)")
    assert farm.ledger["n_requests"] == n
