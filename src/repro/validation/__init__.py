"""Code-validation tooling.

"The last challenge to be mentioned here is code validation, in which
much work remains to be done" — this subpackage provides the
infrastructure the test suite uses for it: error norms, observed-order
estimation from grid sequences, and closed-form reference solutions
(Couette flow, isentropic nozzle relations) beyond the exact Riemann
solver in :mod:`repro.numerics.riemann`.
"""

from repro.validation.metrics import (error_norms, observed_order,
                                      richardson_extrapolate)
from repro.validation.exact import (couette_temperature_profile,
                                    couette_velocity_profile,
                                    isentropic_nozzle_mach)

__all__ = ["error_norms", "observed_order", "richardson_extrapolate",
           "couette_velocity_profile", "couette_temperature_profile",
           "isentropic_nozzle_mach"]
