"""Benchmark: regenerate Fig. 5 (Orbiter geometry model)."""

import numpy as np

from repro.experiments import fig5_orbiter_geometry
from repro.geometry.orbiter import ORBITER_LENGTH


def test_bench_fig5_orbiter_geometry(once):
    res = once(fig5_orbiter_geometry.run, True)
    pf = res["planform"]
    wp = res["windward_profile"]
    # --- the engineering dimensions -------------------------------------
    assert res["length"] == ORBITER_LENGTH
    assert pf["x"].max() == ORBITER_LENGTH
    # half span ~ 11.9 m (23.79 m wingspan)
    assert 10.0 < pf["y"].max() < 13.5
    # the windward equivalent profile runs nose to tail
    # catlint: disable=CAT010 -- profile grid starts exactly at the
    # nose (constructed from linspace(0, L)), equality is intentional
    assert wp["x"][0] == 0.0
    assert wp["x"][-1] > 0.95 * ORBITER_LENGTH
    # profile is monotone in x (a marching-solver requirement)
    assert np.all(np.diff(wp["x"]) > -1e-12)
    assert len(res["cross_sections"]) >= 5
    print(f"\nFig. 5: L = {res['length']:.2f} m, half-span = "
          f"{pf['y'].max():.2f} m, windward ramp angle = 40 deg, "
          f"{len(res['cross_sections'])} cross sections")
