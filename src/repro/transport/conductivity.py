"""Thermal conductivity from the Eucken relation.

For each species, the modified Eucken correction ties conductivity to
viscosity and the internal heat capacity::

    k = mu * (cp_trans + 1.9 * cp_internal)
      = mu * (5/2 cv_trans + 1.9 (cp - 5/2 R - R)) / M   in molar terms

We use the common CAT simplification k = mu (cp + 5/4 R/M) for the
translational-dominant limit and the modified form when internal modes are
active; both reduce to the monatomic Eucken value k = 2.5 mu cv for atoms.
"""

from __future__ import annotations

import numpy as np

from repro.constants import R_UNIVERSAL as R
from repro.thermo.species import SpeciesDB, species_set
from repro.thermo.statmech import ThermoSet

__all__ = ["eucken_conductivity", "species_conductivities"]


def eucken_conductivity(mu, cp_molar, molar_mass):
    """Modified Eucken conductivity [W/(m K)] for one species.

    Parameters
    ----------
    mu:
        Species viscosity [Pa s].
    cp_molar:
        Molar heat capacity at constant pressure [J/(mol K)].
    molar_mass:
        [kg/mol].
    """
    mu = np.asarray(mu, dtype=float)
    cp = np.asarray(cp_molar, dtype=float)
    # split cp into translational (5/2 R) and internal parts
    cp_int = np.maximum(cp - 2.5 * R, 0.0)
    # Eucken factors: 15/4 R on translation (via cv=3/2R), 1.3 on internal
    k_molar = mu * (3.75 * R + 1.3 * cp_int)
    return k_molar / molar_mass


def species_conductivities(db: SpeciesDB | str, T, mu_species):
    """Conductivity of every species, shape (..., n) [W/(m K)]."""
    db = db if isinstance(db, SpeciesDB) else species_set(db)
    thermo = ThermoSet(db)
    cp = thermo.cp(T)
    return eucken_conductivity(mu_species, cp, db.molar_mass)
