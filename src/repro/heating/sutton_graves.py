"""Sutton–Graves stagnation-point heating correlation.

q = k sqrt(rho / R_n) V^3, with k a gas-composition constant.  The air
value is the flight-mechanics standard; the N2 value serves the Titan
entry, and H2/He the Jupiter entry.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["sutton_graves_heating", "SG_CONSTANTS"]

#: Sutton-Graves constants k [kg^0.5 / m] by atmosphere.
SG_CONSTANTS = {
    "earth": 1.7415e-4,
    "air": 1.7415e-4,
    "titan": 1.7407e-4,   # N2-dominated: air-like within the correlation
    "jupiter": 6.35e-5,   # H2/He
    "mars": 1.9027e-4,
}


def sutton_graves_heating(rho, V, nose_radius, *, atmosphere="earth"):
    """Stagnation convective heat flux [W/m^2].

    Parameters
    ----------
    rho:
        Freestream density [kg/m^3].
    V:
        Flight speed [m/s].
    nose_radius:
        [m].
    atmosphere:
        Key in :data:`SG_CONSTANTS`.
    """
    k = SG_CONSTANTS[atmosphere]
    if nose_radius <= 0 or np.any(np.asarray(rho, float) < 0):
        raise InputError("need nose_radius > 0 and rho >= 0")
    # catlint: disable=CAT002 -- rho and nose_radius validated above
    return k * np.sqrt(np.asarray(rho, float) / nose_radius) \
        * np.asarray(V, float) ** 3
