"""Shuttle-Orbiter-like windward geometry (the Fig. 5 shape).

The PNS and E+BL experiments (Figs. 4 and 6) run on the *windward
centerline* of the Orbiter at high angle of attack.  Following the
axisymmetric-analogue practice of the era (Ref. 18), we model the windward
symmetry-plane profile as an equivalent axisymmetric body: a spherical nose
(R_n ~ 1.3 m effective at alpha ~ 30-40 deg) followed by a shallow ramp
whose local inclination equals alpha plus the local surface slope of the
lower fuselage.

The full planform/cross-section outline (for rendering Fig. 5) is a
piecewise description of the Orbiter's true dimensions: 32.77 m length,
23.79 m span, double-delta wing with 81/45-deg sweep.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError
from repro.geometry.bodies import AxisymBody

__all__ = ["OrbiterWindwardProfile", "orbiter_planform",
           "orbiter_cross_sections", "ORBITER_LENGTH"]

#: Orbiter fuselage reference length [m].
ORBITER_LENGTH = 32.77


class OrbiterWindwardProfile(AxisymBody):
    """Equivalent-axisymmetric windward centerline at angle of attack.

    Parameters
    ----------
    alpha_deg:
        Angle of attack.  The equivalent body's surface inclination is
        ``alpha`` far from the nose (the windward surface is nearly flat),
        blended from the 90-deg stagnation value over the nose region.
    nose_radius:
        Effective windward nose radius (~1.3 m for the Orbiter).
    """

    def __init__(self, alpha_deg: float = 40.0, nose_radius: float = 1.3,
                 length: float = ORBITER_LENGTH):
        if not (0.0 < alpha_deg < 90.0):
            raise InputError("alpha must be in (0, 90) deg")
        self.alpha = np.deg2rad(alpha_deg)
        self.nose_radius = nose_radius
        self.length = length
        # spherical cap until the surface angle reaches alpha
        self._phi_t = np.pi / 2.0 - self.alpha
        self._s_t = nose_radius * self._phi_t
        self._x_t = nose_radius * (1.0 - np.cos(self._phi_t))
        self._r_t = nose_radius * np.sin(self._phi_t)
        run = (length - self._x_t) / np.cos(self.alpha)
        self.s_max = self._s_t + run

    def point(self, s):
        s = np.asarray(s, dtype=float)
        phi = np.minimum(s, self._s_t) / self.nose_radius
        x_sph = self.nose_radius * (1.0 - np.cos(phi))
        r_sph = self.nose_radius * np.sin(phi)
        ds = np.maximum(s - self._s_t, 0.0)
        x_aft = self._x_t + ds * np.cos(self.alpha)
        r_aft = self._r_t + ds * np.sin(self.alpha)
        aft = s > self._s_t
        return np.where(aft, x_aft, x_sph), np.where(aft, r_aft, r_sph)

    def angle(self, s):
        s = np.asarray(s, dtype=float)
        phi = np.minimum(s, self._s_t) / self.nose_radius
        return np.where(s > self._s_t, self.alpha, np.pi / 2.0 - phi)

    def curvature(self, s):
        s = np.asarray(s, dtype=float)
        return np.where(s > self._s_t, 0.0, 1.0 / self.nose_radius)

    def x_over_L(self, s):
        """Normalised axial station x/L for plotting against flight data."""
        x, _ = self.point(s)
        return x / self.length

    def s_at_x(self, x):
        """Invert x(s) (monotonic) for arc length at an axial station."""
        x = np.asarray(x, dtype=float)
        # nose: x = rn (1-cos phi) => phi = arccos(1 - x/rn)
        on_nose = x <= self._x_t
        phi = np.arccos(np.clip(1.0 - x / self.nose_radius, -1.0, 1.0))
        s_nose = self.nose_radius * phi
        s_aft = self._s_t + (x - self._x_t) / np.cos(self.alpha)
        return np.where(on_nose, s_nose, s_aft)


def orbiter_planform(n: int = 200):
    """Top-view outline of the Orbiter (x from nose, y half-span) [m].

    Piecewise-linear engineering outline of the double-delta planform:
    returns arrays (x, y) tracing nose -> wing glove -> wing -> wing tip ->
    trailing edge -> body flap centerline.
    """
    L = ORBITER_LENGTH
    pts = np.array([
        (0.00 * L, 0.000),   # nose apex
        (0.05 * L, 0.030 * L),
        (0.15 * L, 0.060 * L),
        (0.40 * L, 0.080 * L),   # glove start (81-deg strake)
        (0.62 * L, 0.160 * L),   # strake -> wing break
        (0.80 * L, 0.363 * L),   # 45-deg main wing leading edge to tip
        (0.95 * L, 0.363 * L),   # wing tip chord
        (0.98 * L, 0.120 * L),   # trailing edge toward body
        (1.00 * L, 0.070 * L),   # body flap corner
        (1.00 * L, 0.000),       # centerline aft
    ])
    # resample each segment for a smooth-looking outline
    xs, ys = [], []
    for (x0, y0), (x1, y1) in zip(pts[:-1], pts[1:]):
        m = max(int(n * 0.1), 2)
        t = np.linspace(0.0, 1.0, m, endpoint=False)
        xs.append(x0 + (x1 - x0) * t)
        ys.append(y0 + (y1 - y0) * t)
    xs.append(np.array([pts[-1][0]]))
    ys.append(np.array([pts[-1][1]]))
    return np.concatenate(xs), np.concatenate(ys)


def orbiter_cross_sections(stations=(0.1, 0.3, 0.5, 0.7, 0.9), n: int = 60):
    """Fuselage cross-section outlines at x/L stations (for Fig. 5).

    Returns a list of (x_over_L, y, z) tuples; each (y, z) traces a
    rounded-bottom / flat-top engineering section.
    """
    out = []
    L = ORBITER_LENGTH
    for xl in stations:
        # width and height grow toward mid-body then hold
        w = 0.5 * 0.17 * L * min(xl / 0.3, 1.0)   # half width
        hgt = 0.20 * L * min(xl / 0.35, 1.0)      # total height
        t = np.linspace(-np.pi / 2, np.pi / 2, n)
        y = w * np.cos(t)
        z = np.where(t < 0, 0.55 * hgt * np.sin(t), 0.45 * hgt * np.sin(t))
        out.append((xl, y, z))
    return out
