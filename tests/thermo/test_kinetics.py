"""Tests for the Park finite-rate air mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.thermo.kinetics import (Reaction, ReactionMechanism,
                                   park_air_mechanism)
from repro.thermo.species import species_set


@pytest.fixture(scope="module")
def mech11():
    return park_air_mechanism("air11")


@pytest.fixture(scope="module")
def mech5():
    return park_air_mechanism("air5")


class TestMechanismConstruction:
    def test_air11_reaction_count(self, mech11):
        assert mech11.n_reactions == 15

    def test_air5_restriction_drops_ion_reactions(self, mech5):
        # only dissociation + Zeldovich survive without ions
        assert mech5.n_reactions == 5
        for rx in mech5.reactions:
            assert "e-" not in rx.reactants and "e-" not in rx.products

    def test_stoichiometry_conserves_mass(self, mech11, air11):
        # dnu . M == 0 for every reaction
        imbalance = mech11.dnu @ air11.molar_mass
        assert np.allclose(imbalance, 0.0, atol=1e-15)

    def test_stoichiometry_conserves_elements_and_charge(self, mech11,
                                                         air11):
        # comp_matrix @ dnu^T == 0
        residual = air11.comp_matrix @ mech11.dnu.T
        assert np.allclose(residual, 0.0)

    def test_cgs_conversion(self):
        rx = Reaction.from_cgs("A + B <=> C", {"N": 1, "O": 1}, {"NO": 1},
                               1.0e12, 0.0, 100.0)
        assert rx.A == pytest.approx(1.0e6)  # cm^3 -> m^3

    def test_bad_rate_T_raises(self):
        with pytest.raises(InputError):
            Reaction("x", {"N": 1}, {"N": 1}, 1.0, 0.0, 0.0, rate_T="Tx")

    def test_empty_mechanism_raises(self, air11):
        with pytest.raises(InputError):
            ReactionMechanism(air11, [])


class TestRateConstants:
    def test_kf_monotonic_for_dissociation(self, mech11):
        # dissociation rates grow with T
        T = np.array([2000.0, 4000.0, 8000.0])
        kf = mech11.kf(T)
        assert np.all(np.diff(kf[:, 0]) > 0)  # N2 dissociation

    def test_two_temperature_control(self, mech11):
        # dissociation slows when Tv < T (Park sqrt(T*Tv))
        T = np.array([8000.0])
        kf_eq = mech11.kf(T, T)
        kf_cold_v = mech11.kf(T, np.array([2000.0]))
        assert kf_cold_v[0, 0] < kf_eq[0, 0]
        # exchange reactions (index 3: N2+O) are T-controlled, unchanged
        assert kf_cold_v[0, 3] == pytest.approx(kf_eq[0, 3])

    def test_detailed_balance_kc(self, mech11, air_gas):
        # Kc from Gibbs equals the concentration ratio at equilibrium
        rho, T = np.array([0.01]), np.array([6500.0])
        y = air_gas.composition_rho_T(rho, T)
        c = (rho[:, None] * y / mech11.db.molar_mass)[0]
        Kc = mech11.Kc(T)[0]
        logc = np.log(np.maximum(c, 1e-300))
        for i in range(mech11.n_reactions):
            lhs = float(mech11.dnu[i] @ logc)
            assert lhs == pytest.approx(np.log(Kc[i]), abs=1e-5)


class TestProductionRates:
    def test_wdot_zero_at_equilibrium(self, mech11, air_gas, air11):
        rho = np.array([0.05])
        T = np.array([5500.0])
        y = air_gas.composition_rho_T(rho, T)
        w_eq = np.abs(mech11.wdot(rho, T, y)).max()
        # scale: the same mechanism driving frozen air at this state
        y0 = np.zeros((1, 11))
        y0[0, air11.index["N2"]], y0[0, air11.index["O2"]] = 0.767, 0.233
        w_frozen = np.abs(mech11.wdot(rho, T, y0)).max()
        assert w_eq < 1e-8 * w_frozen

    def test_mass_conservation(self, mech11, rng):
        y = rng.random((8, 11))
        y /= y.sum(axis=1, keepdims=True)
        w = mech11.wdot(np.full(8, 0.01), np.full(8, 7000.0), y)
        assert np.allclose(w.sum(axis=1), 0.0, atol=1e-10 * np.abs(w).max())

    def test_frozen_air_dissociates_oxygen_first(self, mech11, air11):
        y0 = np.zeros(11)
        y0[air11.index["N2"]] = 0.767
        y0[air11.index["O2"]] = 0.233
        w = mech11.wdot(np.array([0.01]), np.array([5000.0]), y0[None, :])[0]
        assert w[air11.index["O2"]] < 0          # O2 destroyed
        assert w[air11.index["O"]] > 0           # O produced
        assert abs(w[air11.index["O2"]]) > 10 * abs(w[air11.index["N2"]])

    def test_recombination_in_cold_atomic_gas(self, mech11, air11):
        # pure atomic N at low T must recombine to N2
        y = np.zeros(11)
        y[air11.index["N"]] = 1.0
        w = mech11.wdot(np.array([0.1]), np.array([1000.0]), y[None, :])[0]
        assert w[air11.index["N2"]] > 0
        assert w[air11.index["N"]] < 0

    def test_cold_air_is_inert(self, mech11, air11):
        y0 = np.zeros(11)
        y0[air11.index["N2"]] = 0.767
        y0[air11.index["O2"]] = 0.233
        w = mech11.wdot(np.array([1.2]), np.array([300.0]), y0[None, :])[0]
        assert np.abs(w).max() < 1e-12

    def test_batched_shapes(self, mech11, rng):
        y = rng.random((3, 4, 11))
        y /= y.sum(axis=-1, keepdims=True)
        w = mech11.wdot(np.full((3, 4), 0.01), np.full((3, 4), 6000.0), y)
        assert w.shape == (3, 4, 11)

    @given(T=st.floats(min_value=3000.0, max_value=12000.0))
    @settings(max_examples=15, deadline=None)
    def test_relaxation_toward_equilibrium(self, T):
        """Stiff integration of dY/dt = w/rho must land on the equilibrium
        solver's composition (detailed-balance consistency, end to end)."""
        from scipy.integrate import solve_ivp

        mech = park_air_mechanism("air5")
        db = mech.db
        from repro.thermo.equilibrium import (EquilibriumGas,
                                              air_reference_mass_fractions)
        gas = EquilibriumGas(db, air_reference_mass_fractions(db))
        rho = np.array([0.1])
        y_eq = gas.composition_rho_T(rho, np.array([T]))[0]
        y0 = np.zeros(5)
        y0[db.index["N2"]], y0[db.index["O2"]] = 0.767, 0.233

        def rhs(t, y):
            return mech.wdot(rho, np.array([T]),
                             np.clip(y, 0.0, 1.0)[None, :])[0] / rho[0]

        sol = solve_ivp(rhs, (0.0, 10.0), y0, method="BDF",
                        rtol=1e-8, atol=1e-12)
        assert sol.success
        assert np.abs(sol.y[:, -1] - y_eq).max() < 5e-4


class TestJacobian:
    def test_jacobian_matches_finite_difference(self, mech5, rng):
        y = rng.random((2, 5))
        y /= y.sum(axis=1, keepdims=True)
        rho = np.full(2, 0.05)
        T = np.full(2, 6000.0)
        J = mech5.jacobian_y(rho, T, y)
        assert J.shape == (2, 5, 5)
        # perturb one species and compare
        j = 2
        dy = 1e-6
        yp = y.copy()
        yp[..., j] += dy
        fd = (mech5.wdot(rho, T, yp) - mech5.wdot(rho, T, y)) / dy
        assert np.allclose(J[..., j], fd, rtol=2e-2, atol=1e-4)
