"""Explicit time integration: CFL control and SSP Runge–Kutta steps.

The steady-state solvers march "in a time-like manner until a steady state
is asymptotically achieved" (the paper's words); these helpers provide the
stable step sizes and strong-stability-preserving update formulas.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StabilityError

__all__ = ["cfl_timestep_1d", "ssp_rk2_step", "ssp_rk3_step",
           "check_state"]


def cfl_timestep_1d(dx, u, a, cfl=0.5):
    """Global explicit timestep dt = cfl * min(dx / (|u| + a))."""
    dx = np.asarray(dx, dtype=float)
    wave = np.abs(np.asarray(u, dtype=float)) + np.asarray(a, dtype=float)
    return float(cfl * np.min(dx / np.maximum(wave, 1e-12)))


def ssp_rk2_step(U, dt, residual):
    """Heun / SSP-RK2 update: U^{n+1} = (U + U1 + dt R(U1)) / 2."""
    U1 = U + dt * residual(U)
    return 0.5 * (U + U1 + dt * residual(U1))


def ssp_rk3_step(U, dt, residual):
    """Shu–Osher SSP-RK3 update."""
    U1 = U + dt * residual(U)
    U2 = 0.75 * U + 0.25 * (U1 + dt * residual(U1))
    return U / 3.0 + 2.0 / 3.0 * (U2 + dt * residual(U2))


def check_state(U, *, step: int | None = None, label: str = "solver"):
    """Raise StabilityError on NaN or non-positive density/energy."""
    U = np.asarray(U)
    if not np.all(np.isfinite(U)):
        raise StabilityError(f"{label}: non-finite state", step=step)
    if np.any(U[..., 0] <= 0.0):
        raise StabilityError(f"{label}: non-positive density", step=step)
