"""Physical constants used throughout the CAT toolkit.

All values are SI unless the name says otherwise.  Chemistry literature
(reaction-rate coefficients in particular) is CGS-molar; conversion helpers
for those units live here so the rest of the library never hand-rolls unit
factors.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants (CODATA, truncated to the precision the solvers need)
# ---------------------------------------------------------------------------

#: Universal gas constant [J/(mol K)].
R_UNIVERSAL = 8.31446261815324

#: Boltzmann constant [J/K].
K_BOLTZMANN = 1.380649e-23

#: Avogadro constant [1/mol].
N_AVOGADRO = 6.02214076e23

#: Planck constant [J s].
H_PLANCK = 6.62607015e-34

#: Speed of light in vacuum [m/s].
C_LIGHT = 2.99792458e8

#: Stefan-Boltzmann constant [W/(m^2 K^4)].
SIGMA_SB = 5.670374419e-8

#: Elementary charge [C].
E_CHARGE = 1.602176634e-19

#: Electron mass [kg].
M_ELECTRON = 9.1093837015e-31

#: First radiation constant for spectral radiance, 2 h c^2 [W m^2 / sr].
C1_RADIANCE = 2.0 * H_PLANCK * C_LIGHT**2

#: Second radiation constant, h c / k  [m K].
C2_RADIATION = H_PLANCK * C_LIGHT / K_BOLTZMANN

# ---------------------------------------------------------------------------
# Standard reference values
# ---------------------------------------------------------------------------

#: Standard atmospheric pressure [Pa].
P_ATM = 101325.0

#: Standard reference temperature for thermodynamic tables [K].
T_REF = 298.15

#: One Torr in pascals.
TORR = 133.322

#: Standard gravitational acceleration at Earth's surface [m/s^2].
G0_EARTH = 9.80665

# ---------------------------------------------------------------------------
# Planetary data used by the atmosphere and trajectory substrates
# ---------------------------------------------------------------------------

#: Earth mean radius [m].
R_EARTH = 6.371e6

#: Earth gravitational parameter GM [m^3/s^2].
MU_EARTH = 3.986004418e14

#: Titan mean radius [m].
R_TITAN = 2.575e6

#: Titan gravitational parameter GM [m^3/s^2].
MU_TITAN = 8.978e12

#: Jupiter equatorial radius [m].
R_JUPITER = 7.1492e7

#: Jupiter gravitational parameter GM [m^3/s^2].
MU_JUPITER = 1.26686534e17

# ---------------------------------------------------------------------------
# Unit conversions for chemistry (CGS-molar <-> SI)
# ---------------------------------------------------------------------------

#: Multiply a cm^3/(mol s) bimolecular rate coefficient by this to get
#: m^3/(mol s).
CM3_PER_MOL_TO_M3_PER_MOL = 1.0e-6

#: Multiply a cm^6/(mol^2 s) termolecular rate coefficient by this to get
#: m^6/(mol^2 s).
CM6_PER_MOL2_TO_M6_PER_MOL2 = 1.0e-12

#: Calories (thermochemical) to joules.
CAL_TO_J = 4.184


def arrhenius_si(a_cgs: float, order: int) -> float:
    """Convert a CGS-molar Arrhenius pre-exponential to SI-molar.

    Parameters
    ----------
    a_cgs:
        Pre-exponential in cm^3/(mol s) (``order=2``) or cm^6/(mol^2 s)
        (``order=3``).  First-order (1/s) coefficients pass through.
    order:
        Overall reaction order (1, 2 or 3).
    """
    if order == 1:
        return a_cgs
    if order == 2:
        return a_cgs * CM3_PER_MOL_TO_M3_PER_MOL
    if order == 3:
        return a_cgs * CM6_PER_MOL2_TO_M6_PER_MOL2
    raise ValueError(f"unsupported reaction order: {order}")


def ev_to_joule(ev: float) -> float:
    """Electron-volts to joules."""
    return ev * E_CHARGE


def wavenumber_to_joule(cm1: float) -> float:
    """Spectroscopic wavenumber (1/cm) to photon energy in joules."""
    return H_PLANCK * C_LIGHT * cm1 * 100.0


def wavenumber_to_kelvin(cm1: float) -> float:
    """Spectroscopic wavenumber (1/cm) to characteristic temperature [K]."""
    return wavenumber_to_joule(cm1) / K_BOLTZMANN


def planck_lambda(wavelength_m, temperature):
    """Planck spectral radiance B_lambda(T) [W/(m^2 sr m)].

    Vectorised over both arguments (NumPy broadcasting applies).
    """
    import numpy as np

    lam = np.asarray(wavelength_m, dtype=float)
    t = np.asarray(temperature, dtype=float)
    x = C2_RADIATION / (lam * np.maximum(t, 1.0e-30))
    # expm1 keeps precision for small x (long wavelengths / high T)
    return C1_RADIANCE / lam**5 / np.expm1(np.clip(x, 1e-12, 700.0))


#: Loschmidt-like reference number density at 1 atm, 273.15 K [1/m^3].
N_LOSCHMIDT = P_ATM / (K_BOLTZMANN * 273.15)

#: Square root of pi, used by line-shape and similarity solutions.
SQRT_PI = math.sqrt(math.pi)
