"""Pragma grammar, logical-span coverage, and CAT090 hygiene."""

import textwrap

from repro.analysis.engine import lint_source
from repro.analysis.pragmas import PragmaIndex

LIB = "src/repro/heating/example.py"


def codes(source):
    return [f.rule for f in lint_source(textwrap.dedent(source), path=LIB)]


class TestPragmaSuppression:
    def test_trailing_pragma_suppresses_its_line(self):
        src = """
        def f(x):
            return x == 0.5  # catlint: disable=CAT010 -- exact sentinel
        """
        assert "CAT010" not in codes(src)

    def test_standalone_pragma_covers_next_statement(self):
        src = """
        def f(x):
            # catlint: disable=CAT010 -- exact sentinel
            return x == 0.5
        """
        assert "CAT010" not in codes(src)

    def test_standalone_pragma_covers_whole_multiline_statement(self):
        # the finding anchors on the continuation line, not the first
        src = """
        def f(a, b, c, x):
            # catlint: disable=CAT010 -- exact sentinel
            y = (a + b + c +
                 (x == 0.5))
            return y
        """
        assert "CAT010" not in codes(src)

    def test_trailing_pragma_covers_whole_multiline_statement(self):
        src = """
        def f(x):
            y = (x ==
                 0.5)  # catlint: disable=CAT010 -- exact sentinel
            return y
        """
        assert "CAT010" not in codes(src)

    def test_pragma_does_not_leak_to_later_lines(self):
        src = """
        def f(x):
            # catlint: disable=CAT010 -- only the next statement
            a = x == 0.5
            b = x == 1.5
            return a or b
        """
        assert codes(src).count("CAT010") == 1

    def test_wrong_code_does_not_suppress(self):
        src = """
        def f(x):
            return x == 0.5  # catlint: disable=CAT001 -- wrong rule
        """
        assert "CAT010" in codes(src)

    def test_multi_code_pragma(self):
        src = """
        import numpy as np
        def f(a, b):
            return np.log(a) / (a - b)  # catlint: disable=CAT001,CAT003 -- r
        """
        out = codes(src)
        assert "CAT001" not in out and "CAT003" not in out

    def test_disable_all(self):
        src = """
        def f(x):
            return x == 0.5  # catlint: disable=all -- generated code
        """
        assert "CAT010" not in codes(src)

    def test_disable_file(self):
        src = """
        # catlint: disable-file=CAT010 -- fixture of exact sentinels
        def f(x):
            a = x == 0.5
            b = x == 1.5
            return a or b
        """
        assert "CAT010" not in codes(src)

    def test_pragma_inside_string_is_ignored(self):
        src = '''
        PRAGMA = "# catlint: disable-file=CAT010 -- not a real pragma"
        def f(x):
            return x == 0.5
        '''
        assert "CAT010" in codes(src)


class TestPragmaHygieneCAT090:
    def test_missing_reason_reported(self):
        src = """
        def f(x):
            return x == 0.5  # catlint: disable=CAT010
        """
        out = lint_source(textwrap.dedent(src), path=LIB)
        assert [f.rule for f in out] == ["CAT090"]
        assert out[0].severity == "info"

    def test_reason_satisfies_cat090(self):
        src = """
        def f(x):
            return x == 0.5  # catlint: disable=CAT010 -- exact sentinel
        """
        assert codes(src) == []


class TestPragmaIndex:
    def test_index_answers_per_line(self):
        idx = PragmaIndex.from_source(
            "x = 1  # catlint: disable=CAT010 -- reason\ny = 2\n")
        assert idx.disabled("CAT010", 1)
        assert not idx.disabled("CAT010", 2)
        assert not idx.disabled("CAT001", 1)

    def test_file_wide(self):
        idx = PragmaIndex.from_source(
            "# catlint: disable-file=CAT021 -- storage module\nx = 1\n")
        assert idx.disabled("CAT021", 99)

    def test_missing_reason_records_codes(self):
        idx = PragmaIndex.from_source(
            "x = 1  # catlint: disable=CAT010,CAT001\n")
        assert idx.missing_reason == [(1, ("CAT001", "CAT010"))]
