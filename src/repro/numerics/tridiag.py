"""(Block-)tridiagonal direct solvers.

Thomas algorithm for scalar systems (vectorised over a batch axis) and its
block generalisation for the line-implicit viscous/chemistry updates the
paper-era implicit codes relied on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["thomas", "block_thomas"]


def thomas(a, b, c, d):
    """Solve tridiagonal systems b_i x_i + a_i x_{i-1} + c_i x_{i+1} = d_i.

    Parameters
    ----------
    a:
        Sub-diagonal, shape (..., n) with a[..., 0] ignored.
    b:
        Diagonal, shape (..., n).
    c:
        Super-diagonal, shape (..., n) with c[..., -1] ignored.
    d:
        Right-hand side, shape (..., n).

    Leading axes are independent systems solved simultaneously.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    d = np.asarray(d, dtype=float)
    n = b.shape[-1]
    if not (a.shape[-1] == c.shape[-1] == d.shape[-1] == n):
        raise InputError("tridiagonal bands must share the last-axis size")
    cp = np.empty_like(b)
    dp = np.empty_like(d)
    cp[..., 0] = c[..., 0] / b[..., 0]
    dp[..., 0] = d[..., 0] / b[..., 0]
    for i in range(1, n):
        m = b[..., i] - a[..., i] * cp[..., i - 1]
        cp[..., i] = c[..., i] / m
        dp[..., i] = (d[..., i] - a[..., i] * dp[..., i - 1]) / m
    x = np.empty_like(d)
    x[..., -1] = dp[..., -1]
    for i in range(n - 2, -1, -1):
        x[..., i] = dp[..., i] - cp[..., i] * x[..., i + 1]
    return x


def block_thomas(A, B, C, D):
    """Solve block-tridiagonal systems.

    Parameters
    ----------
    A, B, C:
        Sub/main/super diagonal blocks, shape (n, m, m); A[0] and C[-1]
        are ignored.
    D:
        Right-hand side, shape (n, m).

    Returns
    -------
    x, shape (n, m).
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    C = np.asarray(C, dtype=float)
    D = np.asarray(D, dtype=float)
    n, m = D.shape
    if B.shape != (n, m, m):
        raise InputError("block shapes inconsistent with RHS")
    Cp = np.empty_like(C)
    Dp = np.empty_like(D)
    Binv = np.linalg.inv(B[0])
    Cp[0] = Binv @ C[0]
    Dp[0] = Binv @ D[0]
    for i in range(1, n):
        M = B[i] - A[i] @ Cp[i - 1]
        Minv = np.linalg.inv(M)
        Cp[i] = Minv @ C[i]
        Dp[i] = Minv @ (D[i] - A[i] @ Dp[i - 1])
    x = np.empty_like(D)
    x[-1] = Dp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = Dp[i] - Cp[i] @ x[i + 1]
    return x
