"""Static units/dimension checker.

Conservative intraprocedural dimensional analysis over the unit tags
the codebase already carries:

* function parameter/return units from numpy-style docstrings
  (``e:`` … ``Specific internal energy [J/kg]``),
* module constants from ``#: … [unit].`` comments
  (:func:`repro.analysis.registry.constants_units`),
* the curated API registry (:data:`~repro.analysis.registry.API_SIGNATURES`),
  matched by call-site name (``gas.h_mass(T)`` → ``h_mass``).

Unknown quantities are wildcards — a finding is only emitted when
**both** sides of an operation have known, incompatible dimensions,
so silence is never a guarantee, but every finding is a real tag
inconsistency:

* ``UNIT001`` — addition/subtraction/comparison of incompatible
  dimensions (the J/mol + J/kg class of bug),
* ``UNIT002`` — a declared parameter rebound to a value of a
  different dimension,
* ``UNIT003`` — a call argument whose dimension contradicts the
  callee's declared parameter unit.

Suppression uses the same pragmas as catlint
(``# catlint: disable=UNIT001 -- reason``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.dimensions import (
    DIMENSIONLESS,
    Dim,
    find_unit_tag,
)
from repro.analysis.engine import dotted_name, iter_python_files
from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import PragmaIndex
from repro.analysis.registry import API_SIGNATURES, Signature, constants_units

# numpy helpers that return a value with their first argument's units
_PASSTHROUGH = {
    "np.asarray", "np.array", "np.atleast_1d", "np.atleast_2d",
    "np.ascontiguousarray", "np.abs", "np.absolute", "np.maximum",
    "np.minimum", "np.fmax", "np.fmin", "np.clip", "np.sum", "np.mean",
    "np.max", "np.min", "np.amax", "np.amin", "np.copy", "np.squeeze",
    "np.ravel", "np.reshape", "np.transpose", "np.cumsum", "np.diff",
    "np.gradient", "np.interp", "abs", "float", "np.full_like",
    "np.broadcast_to", "np.nan_to_num", "np.trapz",
}

_DIMLESS_CALLS = {
    "np.log", "np.log10", "np.log2", "np.exp", "np.expm1", "np.log1p",
    "np.tanh", "np.sin", "np.cos", "np.sign", "np.isfinite", "np.isnan",
    "math.log", "math.exp", "math.tanh", "len",
}


class _FunctionUnits:
    """Declared + inferred units inside one function."""

    def __init__(self, checker: "UnitChecker",
                 fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.checker = checker
        self.fn = fn
        self.env: dict[str, Dim] = {}
        self.declared: dict[str, Dim] = {}
        sig = checker.local_signatures.get(fn.name) \
            or API_SIGNATURES.get(fn.name)
        if sig is not None:
            for name, dim in sig.param_units.items():
                if dim is not None:
                    self.declared[name] = dim
                    self.env[name] = dim

    # -- inference --------------------------------------------------

    def infer(self, node: ast.AST) -> Dim | None:
        if isinstance(node, ast.Constant):
            return None  # numeric literals are wildcards
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_name(node)
            if name in self.env:
                return self.env[name]
            return self.checker.constant_dim(name)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Subscript):
            return self.infer(node.value)
        if isinstance(node, ast.IfExp):
            a, b = self.infer(node.body), self.infer(node.orelse)
            return a if a is not None else b
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        return None

    def _infer_binop(self, node: ast.BinOp) -> Dim | None:
        left, right = self.infer(node.left), self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and left != right:
                self.checker.finding(
                    "UNIT001", node,
                    f"{'adding' if isinstance(node.op, ast.Add) else 'subtracting'} "
                    f"incompatible dimensions {left!r} and {right!r}")
                return None
            return left if left is not None else right
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return left * right
            if left is not None and _is_scalar_literal(node.right):
                return left
            if right is not None and _is_scalar_literal(node.left):
                return right
            return None
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None:
                return left / right
            if left is not None and _is_scalar_literal(node.right):
                return left
            if right is not None and _is_scalar_literal(node.left):
                return DIMENSIONLESS / right
            return None
        if isinstance(node.op, ast.Pow):
            if (left is not None and isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)):
                return left ** node.right.value
            return None
        return None

    def _infer_call(self, node: ast.Call) -> Dim | None:
        name = dotted_name(node.func)
        short = name.rsplit(".", 1)[-1] if name else ""
        if name in _PASSTHROUGH or f"np.{short}" in _PASSTHROUGH:
            return self.infer(node.args[0]) if node.args else None
        if name in _DIMLESS_CALLS:
            return DIMENSIONLESS
        sig = self.checker.local_signatures.get(short) \
            or API_SIGNATURES.get(short)
        if sig is None:
            return None
        self._check_call(node, short, sig)
        return sig.returns

    # -- checking ---------------------------------------------------

    def _check_call(self, node: ast.Call, name: str, sig: Signature) -> None:
        if len(node.args) > len(sig.param_order):
            return  # signature mismatch (different arity) — not ours
        slots = list(zip(sig.param_order, node.args))
        slots += [(kw.arg, kw.value) for kw in node.keywords
                  if kw.arg in sig.param_units]
        for pname, arg in slots:
            want = sig.param_units.get(pname)
            got = self.infer(arg)
            if want is None or got is None or want == got:
                continue
            self.checker.finding(
                "UNIT003", arg,
                f"argument {pname!r} of {name}() declared {want!r} "
                f"but receives {got!r}")

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        dims = [self.infer(o) for o in operands]
        known = [(o, d) for o, d in zip(operands, dims) if d is not None]
        for (_, d1), (o2, d2) in zip(known, known[1:]):
            if d1 != d2:
                self.checker.finding(
                    "UNIT001", o2,
                    f"comparing incompatible dimensions {d1!r} and {d2!r}")

    # -- statement walk ---------------------------------------------

    def run(self) -> None:
        for stmt in self.fn.body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are checked separately
        if isinstance(stmt, ast.Assign):
            dim = self.infer(stmt.value)
            for tgt in stmt.targets:
                self._bind(tgt, dim, stmt)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.infer(stmt.value), stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            tname = dotted_name(stmt.target)
            have = self.env.get(tname)
            got = self.infer(stmt.value)
            if (isinstance(stmt.op, (ast.Add, ast.Sub))
                    and have is not None and got is not None
                    and have != got):
                self.checker.finding(
                    "UNIT001", stmt,
                    f"augmented {'+=' if isinstance(stmt.op, ast.Add) else '-='} "
                    f"mixes {have!r} and {got!r}")
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            got = self.infer(stmt.value)
            want = self._declared_return()
            if want is not None and got is not None and want != got:
                self.checker.finding(
                    "UNIT002", stmt,
                    f"{self.fn.name}() declared to return {want!r} "
                    f"but returns {got!r}")
            return
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self.infer(child)

    def _declared_return(self) -> Dim | None:
        sig = self.checker.local_signatures.get(self.fn.name) \
            or API_SIGNATURES.get(self.fn.name)
        return sig.returns if sig is not None else None

    def _bind(self, tgt: ast.AST, dim: Dim | None, stmt: ast.stmt) -> None:
        name = dotted_name(tgt)
        if not name:
            return
        if (name in self.declared and dim is not None
                and dim != self.declared[name]):
            self.checker.finding(
                "UNIT002", stmt,
                f"parameter {name!r} declared {self.declared[name]!r} "
                f"rebound to {dim!r}")
        if dim is not None:
            self.env[name] = dim
        elif name in self.env and name not in self.declared:
            del self.env[name]  # rebound to something unknown


def _is_scalar_literal(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))) or (
        isinstance(node, ast.UnaryOp)
        and _is_scalar_literal(node.operand))


_SECTION_RE = re.compile(r"^\s*(Parameters|Returns|Yields|Raises|Notes|"
                         r"Examples|Attributes|See Also|References)\s*$")
_PARAM_RE = re.compile(r"^(\w+)\s*(?::.*)?$")


def signature_from_docstring(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                             ) -> Signature | None:
    """Extract a unit signature from a numpy-style docstring."""
    doc = ast.get_docstring(fn, clean=True)
    if not doc:
        return None
    lines = doc.splitlines()
    params: dict[str, str | None] = {}
    returns: str | None = None

    summary_dim = find_unit_tag(lines[0]) if lines else None

    section = None
    current: str | None = None
    for i, raw in enumerate(lines):
        m = _SECTION_RE.match(raw)
        if m and i + 1 < len(lines) and set(lines[i + 1].strip()) == {"-"}:
            section = m.group(1)
            current = None
            continue
        if set(raw.strip()) == {"-"} and raw.strip():
            continue
        if section == "Parameters":
            if raw and not raw.startswith(" "):
                pm = _PARAM_RE.match(raw.strip())
                head = raw.split(":")[0].strip()
                if pm and head.isidentifier():
                    current = head
                    params.setdefault(current, None)
                    tail_dim = find_unit_tag(raw)
                    if tail_dim is not None:
                        params[current] = _dim_tag(raw)
                    continue
            if current is not None and params.get(current) is None:
                if find_unit_tag(raw) is not None:
                    params[current] = _dim_tag(raw)
        elif section in ("Returns", "Yields") and returns is None:
            if find_unit_tag(raw) is not None:
                returns = _dim_tag(raw)

    if returns is None and summary_dim is not None:
        returns = _dim_tag(lines[0])
    arg_names = [a.arg for a in fn.args.args if a.arg not in ("self", "cls")]
    arg_names += [a.arg for a in fn.args.kwonlyargs]
    ordered = [(n, params.get(n)) for n in arg_names]
    if returns is None and all(u is None for _, u in ordered):
        return None
    return Signature(ordered, returns)


def _dim_tag(line: str) -> str | None:
    """Return the raw tag text of the first parseable unit in `line`."""
    for m in re.finditer(r"\[([^\][]{1,40})\]", line):
        if find_unit_tag(f"[{m.group(1)}]") is not None:
            return m.group(1)
    return None


class UnitChecker:
    def __init__(self, source: str, path: str,
                 constants: dict[str, Dim] | None = None) -> None:
        self.source = source
        self.path = path
        self.lines = source.splitlines()
        self.findings: list[Finding] = []
        self.constants = dict(constants or {})
        # constants declared in this very file (e.g. constants.py itself)
        self.constants.update(constants_units(source))
        self.local_signatures: dict[str, Signature] = {}
        self.import_aliases: dict[str, str] = {}

    def constant_dim(self, name: str) -> Dim | None:
        if name in self.constants:
            return self.constants[name]
        short = name.rsplit(".", 1)[-1]
        base = name.rsplit(".", 1)[0] if "." in name else ""
        if base and self.import_aliases.get(base) == "repro.constants":
            return self.constants.get(short)
        return None

    def finding(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        text = (self.lines[line - 1].strip()
                if 1 <= line <= len(self.lines) else "")
        self.findings.append(Finding(
            rule=rule, severity=Severity.ERROR, path=self.path,
            line=line, col=getattr(node, "col_offset", 0),
            message=message, source_line=text))

    def run(self) -> list[Finding]:
        try:
            tree = ast.parse(self.source)
        except SyntaxError:
            return []  # catlint reports syntax errors
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro.constants":
                    for alias in node.names:
                        dim = self.constants.get(alias.name)
                        if dim is not None:
                            self.constants[alias.asname or alias.name] = dim
                elif node.module == "repro" and any(
                        a.name == "constants" for a in node.names):
                    self.import_aliases["constants"] = "repro.constants"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.constants":
                        self.import_aliases[alias.asname or "repro"] = \
                            "repro.constants"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = signature_from_docstring(node)
                if sig is not None:
                    self.local_signatures[node.name] = sig
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionUnits(self, node).run()
        pragmas = PragmaIndex.from_source(self.source)
        kept = [f for f in self.findings
                if not pragmas.disabled(f.rule, f.line)]
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return kept


def _global_constants() -> dict[str, Dim]:
    """Units of repro.constants, scraped from its source (no import)."""
    try:
        import importlib.util
        spec = importlib.util.find_spec("repro.constants")
        origin = spec.origin if spec else None
    except (ImportError, ValueError):
        origin = None
    if not origin:
        return {}
    try:
        with open(origin, "r", encoding="utf-8") as fh:
            return constants_units(fh.read())
    except OSError:
        return {}


def check_units_source(source: str, path: str = "<string>",
                       constants: dict[str, Dim] | None = None,
                       ) -> list[Finding]:
    consts = _global_constants() if constants is None else constants
    return UnitChecker(source, path, consts).run()


def check_units_paths(paths: Iterable[str]) -> list[Finding]:
    consts = _global_constants()
    out: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError):
            continue  # catlint reports unreadable files
        out.extend(UnitChecker(source, path, consts).run())
    return out
