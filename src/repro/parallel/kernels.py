"""Registered stencil kernels for the shared-memory pool.

A kernel advances the *owned* rows of a padded local block one step::

    kernel(local_padded, out_owned, params) -> None

Kernels must be module-level (picklable by name) and touch only NumPy —
they are the "vector loops" of the Cray-era codes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KERNELS", "heat5_step", "euler1d_hlle_step"]


def heat5_step(local: np.ndarray, out: np.ndarray, params: dict) -> None:
    """Explicit 5-point heat-equation step on a 2-D block.

    du/dt = alpha laplacian(u); boundary columns are held fixed
    (Dirichlet), and the j-direction is entirely local to the block.
    """
    r = params.get("r", 0.2)  # alpha dt / dx^2
    u = local
    interior = u[1:-1, 1:-1]
    lap = (u[2:, 1:-1] + u[:-2, 1:-1] + u[1:-1, 2:] + u[1:-1, :-2]
           - 4.0 * interior)
    new = u.copy()
    new[1:-1, 1:-1] = interior + r * lap
    # write the owned rows (caller aligned `out` with the owned slice)
    out[...] = new[params["own"]]


def euler1d_hlle_step(local: np.ndarray, out: np.ndarray,
                      params: dict) -> None:
    """First-order HLLE Euler step on a 1-D block of cells (rows x 3).

    Ghost rows supply the upwind neighbours; the global domain boundary
    rows are transmissive (held by the driver).
    """
    from repro.core.gas import IdealGasEOS
    from repro.numerics.fluxes import hlle_flux

    eos = IdealGasEOS(params.get("gamma", 1.4))
    dt_dx = params["dt_dx"]
    U = local
    F = hlle_flux(U[:-1], U[1:], eos)            # faces between rows
    new = U.copy()
    new[1:-1] = U[1:-1] - dt_dx * (F[1:] - F[:-1])
    out[...] = new[params["own"]]


#: Name -> kernel registry used by the worker processes.
KERNELS = {
    "heat5": heat5_step,
    "euler1d_hlle": euler1d_hlle_step,
}
