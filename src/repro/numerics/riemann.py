"""Exact Riemann solver for the calorically perfect gas.

Classic two-state exact solution (Toro's formulation): Newton iteration on
the star-region pressure, then self-similar sampling.  Used to validate the
approximate fluxes and the 1-D Euler solver (Sod problem).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, InputError

__all__ = ["exact_riemann", "sample_riemann", "sod_exact"]


def _pressure_function(p, rho_k, p_k, a_k, gamma):
    """f_k(p) and its derivative for the star-pressure iteration."""
    g = gamma
    if p > p_k:  # shock
        A = 2.0 / ((g + 1.0) * rho_k)
        B = (g - 1.0) / (g + 1.0) * p_k
        # catlint: disable=CAT002 -- A > 0 and p + B > 0: inputs are
        # validated in exact_riemann and p is clamped positive each step
        sq = np.sqrt(A / (p + B))
        f = (p - p_k) * sq
        df = sq * (1.0 - 0.5 * (p - p_k) / (p + B))
    else:        # rarefaction
        # catlint: disable=CAT003 -- gamma > 1 for a calorically
        # perfect gas (validated in exact_riemann)
        f = (2.0 * a_k / (g - 1.0)) * ((p / p_k) ** ((g - 1.0)
                                                     / (2.0 * g)) - 1.0)
        df = (1.0 / (rho_k * a_k)) * (p / p_k) ** (-(g + 1.0) / (2.0 * g))
    return f, df


def exact_riemann(rho_l, u_l, p_l, rho_r, u_r, p_r, gamma=1.4, *,
                  tol=1e-12, max_iter=100):
    """Star-region state of the exact Riemann problem.

    Returns
    -------
    dict with ``p_star``, ``u_star`` and the four outer states echoed.

    Raises
    ------
    InputError
        If a state is non-physical or the initial states generate
        vacuum.
    """
    if min(rho_l, rho_r, p_l, p_r) <= 0.0:
        raise InputError("Riemann states need positive density and "
                         "pressure")
    if gamma <= 1.0:
        raise InputError("gamma must exceed 1 for a perfect gas")
    a_l = np.sqrt(gamma * p_l / rho_l)  # catlint: disable=CAT002 -- validated > 0 above
    a_r = np.sqrt(gamma * p_r / rho_r)  # catlint: disable=CAT002 -- validated > 0 above
    # vacuum check
    # catlint: disable=CAT003 -- gamma > 1 validated above
    if (2.0 / (gamma - 1.0)) * (a_l + a_r) <= (u_r - u_l):
        raise InputError("initial states generate vacuum")
    # initial guess: two-rarefaction approximation
    z = (gamma - 1.0) / (2.0 * gamma)
    p = ((a_l + a_r - 0.5 * (gamma - 1.0) * (u_r - u_l))
         / (a_l / p_l**z + a_r / p_r**z)) ** (1.0 / z)
    p = max(p, 1e-10 * min(p_l, p_r))
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, rho_l, p_l, a_l, gamma)
        f_r, df_r = _pressure_function(p, rho_r, p_r, a_r, gamma)
        g_val = f_l + f_r + (u_r - u_l)
        dp = -g_val / (df_l + df_r)
        p_new = max(p + dp, 1e-12 * min(p_l, p_r))
        if abs(p_new - p) < tol * p:
            p = p_new
            break
        p = p_new
    else:
        raise ConvergenceError("exact Riemann star-pressure iteration "
                               "failed", iterations=max_iter)
    f_l, _ = _pressure_function(p, rho_l, p_l, a_l, gamma)
    f_r, _ = _pressure_function(p, rho_r, p_r, a_r, gamma)
    u = 0.5 * (u_l + u_r) + 0.5 * (f_r - f_l)
    return {"p_star": p, "u_star": u,
            "left": (rho_l, u_l, p_l), "right": (rho_r, u_r, p_r),
            "gamma": gamma}


def sample_riemann(sol, xi):
    """Sample the self-similar solution at speeds ``xi = x/t``.

    Returns (rho, u, p) arrays.
    """
    g = sol["gamma"]
    p_s, u_s = sol["p_star"], sol["u_star"]
    rho_l, u_l, p_l = sol["left"]
    rho_r, u_r, p_r = sol["right"]
    a_l = np.sqrt(g * p_l / rho_l)  # catlint: disable=CAT002 -- outer states validated by exact_riemann
    a_r = np.sqrt(g * p_r / rho_r)  # catlint: disable=CAT002 -- outer states validated by exact_riemann
    xi = np.asarray(xi, dtype=float)

    gp1 = g + 1.0
    gm1 = g - 1.0

    left_of_contact = xi <= u_s
    # --- left side -----------------------------------------------------
    if p_s > p_l:  # left shock
        # catlint: disable=CAT002 -- positive: p_s, p_l > 0 and g > 1
        s_l = u_l - a_l * np.sqrt(gp1 / (2 * g) * p_s / p_l
                                  + gm1 / (2 * g))
        rho_sl = rho_l * ((p_s / p_l + gm1 / gp1)
                          / (gm1 / gp1 * p_s / p_l + 1.0))
        in_l = xi < s_l
        rho = np.where(in_l, rho_l, rho_sl)
        u = np.where(in_l, u_l, u_s)
        p = np.where(in_l, p_l, p_s)
    else:          # left rarefaction
        a_sl = a_l * (p_s / p_l) ** (gm1 / (2 * g))
        head = u_l - a_l
        tail = u_s - a_sl
        in_l = xi < head
        in_fan = (xi >= head) & (xi < tail)
        rho_fan = rho_l * (2.0 / gp1 + gm1 / (gp1 * a_l)
                           * (u_l - xi)) ** (2.0 / gm1)
        u_fan = 2.0 / gp1 * (a_l + gm1 / 2.0 * u_l + xi)
        p_fan = p_l * (2.0 / gp1 + gm1 / (gp1 * a_l)
                       * (u_l - xi)) ** (2.0 * g / gm1)
        rho_sl = rho_l * (p_s / p_l) ** (1.0 / g)
        rho = np.where(in_l, rho_l, np.where(in_fan, rho_fan, rho_sl))
        u = np.where(in_l, u_l, np.where(in_fan, u_fan, u_s))
        p = np.where(in_l, p_l, np.where(in_fan, p_fan, p_s))
    rho_left, u_left, p_left = rho.copy(), u.copy(), p.copy()

    # --- right side ----------------------------------------------------
    if p_s > p_r:  # right shock
        # catlint: disable=CAT002 -- positive: p_s, p_r > 0 and g > 1
        s_r = u_r + a_r * np.sqrt(gp1 / (2 * g) * p_s / p_r
                                  + gm1 / (2 * g))
        rho_sr = rho_r * ((p_s / p_r + gm1 / gp1)
                          / (gm1 / gp1 * p_s / p_r + 1.0))
        out_r = xi > s_r
        rho = np.where(out_r, rho_r, rho_sr)
        u = np.where(out_r, u_r, u_s)
        p = np.where(out_r, p_r, p_s)
    else:          # right rarefaction
        a_sr = a_r * (p_s / p_r) ** (gm1 / (2 * g))
        head = u_r + a_r
        tail = u_s + a_sr
        out_r = xi > head
        in_fan = (xi <= head) & (xi > tail)
        rho_fan = rho_r * (2.0 / gp1 - gm1 / (gp1 * a_r)
                           * (u_r - xi)) ** (2.0 / gm1)
        u_fan = 2.0 / gp1 * (-a_r + gm1 / 2.0 * u_r + xi)
        p_fan = p_r * (2.0 / gp1 - gm1 / (gp1 * a_r)
                       * (u_r - xi)) ** (2.0 * g / gm1)
        rho_sr = rho_r * (p_s / p_r) ** (1.0 / g)
        rho = np.where(out_r, rho_r, np.where(in_fan, rho_fan, rho_sr))
        u = np.where(out_r, u_r, np.where(in_fan, u_fan, u_s))
        p = np.where(out_r, p_r, np.where(in_fan, p_fan, p_s))

    rho = np.where(left_of_contact, rho_left, rho)
    u = np.where(left_of_contact, u_left, u)
    p = np.where(left_of_contact, p_left, p)
    return rho, u, p


def sod_exact(x, t, *, gamma=1.4, x0=0.5):
    """Exact Sod shock-tube solution at time t on grid x.

    Standard initial data: (rho, u, p) = (1, 0, 1) | (0.125, 0, 0.1).
    Returns (rho, u, p).
    """
    if t <= 0:
        raise InputError("t must be positive")
    sol = exact_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1, gamma)
    xi = (np.asarray(x, dtype=float) - x0) / t
    return sample_riemann(sol, xi)
