"""Fixed-width table formatting for benchmark reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 *, floatfmt: str = ".4g", title: str = "") -> str:
    """Render a simple aligned text table.

    Numbers are formatted with ``floatfmt``; everything else with str().
    """
    def cell(v):
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, (int,)):
            return str(v)
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in str_rows:
        out.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(out)
