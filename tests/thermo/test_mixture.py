"""Tests for frozen-composition mixture thermodynamics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import R_UNIVERSAL as R
from repro.thermo.mixture import MixtureThermo
from repro.thermo.species import species_set


@pytest.fixture(scope="module")
def mix():
    return MixtureThermo("air11")


def air_y(db):
    y = np.zeros(db.n)
    y[db.index["N2"]] = 0.767
    y[db.index["O2"]] = 0.233
    return y


class TestGasConstants:
    def test_air_gas_constant(self, mix, air11):
        Rair = float(mix.gas_constant(air_y(air11)))
        assert Rair == pytest.approx(288.2, rel=2e-3)  # 0.767/0.233 split

    def test_pure_species_limits(self, mix, air11):
        y = np.zeros(air11.n)
        y[air11.index["N2"]] = 1.0
        assert float(mix.gas_constant(y)) == pytest.approx(
            R / 28.0134e-3, rel=1e-10)

    def test_molar_mass_inverse(self, mix, air11):
        y = air_y(air11)
        assert float(mix.molar_mass(y) * mix.gas_constant(y)) == (
            pytest.approx(R, rel=1e-12))


class TestCaloric:
    def test_air_cp_room_temperature(self, mix, air11):
        cp = float(mix.cp_mass(300.0, air_y(air11)))
        assert cp == pytest.approx(1005.0, rel=0.01)

    def test_gamma_room_temperature(self, mix, air11):
        g = float(mix.gamma_frozen(300.0, air_y(air11)))
        assert g == pytest.approx(1.40, abs=0.005)

    def test_sound_speed_room_temperature(self, mix, air11):
        a = float(mix.sound_speed_frozen(300.0, air_y(air11)))
        assert a == pytest.approx(347.0, rel=0.005)

    def test_gamma_drops_when_hot(self, mix, air11):
        y = air_y(air11)
        assert float(mix.gamma_frozen(3000.0, y)) < float(
            mix.gamma_frozen(300.0, y))

    def test_h_is_e_plus_RT(self, mix, air11):
        y = air_y(air11)
        for T in (300.0, 1500.0, 6000.0):
            h = float(mix.h_mass(T, y))
            e = float(mix.e_mass(T, y))
            assert h - e == pytest.approx(float(mix.gas_constant(y)) * T,
                                          rel=1e-10)

    def test_ideal_gas_law_roundtrip(self, mix, air11):
        y = air_y(air11)
        p = float(mix.pressure(1.2, 300.0, y))
        rho = float(mix.density(p, 300.0, y))
        assert rho == pytest.approx(1.2, rel=1e-12)


class TestInverseLookups:
    @given(T=st.floats(min_value=200.0, max_value=1.5e4))
    @settings(max_examples=40, deadline=None)
    def test_T_from_e_roundtrip(self, T):
        mix = MixtureThermo("air11")
        db = mix.db
        y = air_y(db)
        e = mix.e_mass(np.array(T), y)
        T_back = mix.T_from_e(e, y)
        assert float(T_back) == pytest.approx(T, rel=1e-6)

    @given(T=st.floats(min_value=200.0, max_value=1.5e4))
    @settings(max_examples=40, deadline=None)
    def test_T_from_h_roundtrip(self, T):
        mix = MixtureThermo("air11")
        y = air_y(mix.db)
        h = mix.h_mass(np.array(T), y)
        T_back = mix.T_from_h(h, y)
        assert float(T_back) == pytest.approx(T, rel=1e-6)

    def test_T_from_e_batched_mixed_compositions(self, mix, air11, rng):
        y = rng.random((20, air11.n))
        y /= y.sum(axis=1, keepdims=True)
        T_true = rng.uniform(300.0, 9000.0, 20)
        e = mix.e_mass(T_true, y)
        T_back = mix.T_from_e(e, y)
        assert np.allclose(T_back, T_true, rtol=1e-6)

    def test_T_from_e_bad_guess_recovers(self, mix, air11):
        y = air_y(air11)
        e = mix.e_mass(np.array(5000.0), y)
        T = mix.T_from_e(e, y, T_guess=np.array(100.0))
        assert float(T) == pytest.approx(5000.0, rel=1e-6)
