"""Entry point for ``python -m repro.analysis``."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # stdout piped into head/grep and closed early: not an error,
        # but detach stdout so the interpreter's flush-at-exit does not
        # raise a second time.
        sys.stdout = open("/dev/null" if sys.platform != "win32"
                          else "nul", "w")
        code = 0
    raise SystemExit(code)
