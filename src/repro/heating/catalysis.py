"""Catalytic-wall heating models.

The Fig. 6 experiment turns on "the catalytic efficiency of the Orbiter's
TPS" (Refs. 16-17): dissociated boundary-layer atoms recombine at the wall
only as fast as the surface allows, so a finitely catalytic tile receives
less than the equilibrium (fully catalytic) heat flux.

Model: the chemical fraction of the heat load scales with a catalytic
effectiveness phi in [0, 1]::

    q(phi) = q_frozen + phi * (q_fc - q_frozen)

where q_fc is the fully catalytic flux and q_frozen = q_fc (1 - hD/h0).
The effectiveness follows from the recombination-rate coefficient k_w
through the surface Damkohler number Da = k_w / (k_w + D/delta)::

    phi = Da
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InputError

__all__ = ["catalytic_factor", "CatalyticWall"]


def catalytic_factor(h_dissociation, h0, phi):
    """Heating ratio q(phi)/q_fully_catalytic.

    Parameters
    ----------
    h_dissociation:
        Chemical (dissociation) enthalpy content at the BL edge [J/kg].
    h0:
        Total enthalpy [J/kg].
    phi:
        Catalytic effectiveness in [0, 1].
    """
    phi = np.asarray(phi, dtype=float)
    if np.any((phi < 0) | (phi > 1)):
        raise InputError("phi must lie in [0, 1]")
    frac = np.clip(np.asarray(h_dissociation, float)
                   / np.maximum(np.asarray(h0, float), 1.0), 0.0, 1.0)
    return 1.0 - (1.0 - phi) * frac


@dataclass(frozen=True)
class CatalyticWall:
    """Finite-rate catalytic surface.

    Parameters
    ----------
    k_w:
        Surface recombination-rate coefficient [m/s] (RCG tile coatings:
        ~1 m/s; bare metals: 10-100 m/s; perfectly catalytic: inf).
    """

    k_w: float

    def effectiveness(self, D, delta):
        """Catalytic effectiveness from the diffusion conductance D/delta.

        Parameters
        ----------
        D:
            Atom diffusion coefficient at the wall [m^2/s].
        delta:
            Boundary-layer (diffusion) thickness [m].
        """
        if np.isinf(self.k_w):
            return 1.0
        conductance = np.asarray(D, float) / np.maximum(
            np.asarray(delta, float), 1e-12)
        return self.k_w / (self.k_w + conductance)

    def heating_ratio(self, h_dissociation, h0, D, delta):
        """q/q_fc for this surface at the given BL state."""
        return catalytic_factor(h_dissociation, h0,
                                self.effectiveness(D, delta))
