"""Fay–Riddell stagnation-point convective heating.

The classic correlation for dissociated-air stagnation heating::

    q = 0.763 Pr^-0.6 (rho_e mu_e)^0.4 (rho_w mu_w)^0.1
        sqrt(due/dx) (h0e - hw) [1 + (Le^0.52 - 1) hD/h0e]

with the modified-Newtonian stagnation velocity gradient::

    due/dx = (1/R_n) sqrt(2 (p_e - p_inf) / rho_e)
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["fay_riddell_heating", "newtonian_velocity_gradient"]


def newtonian_velocity_gradient(nose_radius, p_e, p_inf, rho_e):
    """Stagnation velocity gradient due/dx [1/s]."""
    if nose_radius <= 0:
        raise InputError("nose radius must be positive")
    if np.any(np.asarray(rho_e, dtype=float) <= 0):
        raise InputError("edge density must be positive")
    # catlint: disable=CAT002 -- numerator clamped >= 0, rho_e validated
    return (1.0 / nose_radius) * np.sqrt(
        2.0 * np.maximum(p_e - p_inf, 0.0) / rho_e)


def fay_riddell_heating(*, rho_e, mu_e, rho_w, mu_w, due_dx, h0e, hw,
                        prandtl=0.71, lewis=1.4, h_dissociation=0.0,
                        catalytic=True):
    """Stagnation-point heat flux [W/m^2].

    Parameters
    ----------
    rho_e, mu_e:
        Boundary-layer-edge (stagnation external) density and viscosity.
    rho_w, mu_w:
        Wall-temperature density and viscosity.
    due_dx:
        Stagnation velocity gradient [1/s].
    h0e, hw:
        Edge total enthalpy and wall enthalpy [J/kg].
    h_dissociation:
        Dissociation enthalpy content of the edge gas [J/kg].
    catalytic:
        Fully catalytic wall (True) recovers chemical energy via the
        Lewis-number term; non-catalytic (False) loses the atom
        recombination energy entirely.
    """
    if np.any(np.asarray(due_dx, dtype=float) < 0):
        raise InputError("stagnation velocity gradient must be >= 0")
    base = (0.763 * prandtl**-0.6
            * (rho_e * mu_e) ** 0.4 * (rho_w * mu_w) ** 0.1
            # catlint: disable=CAT002 -- due_dx validated >= 0 above
            * np.sqrt(due_dx) * (h0e - hw))
    frac = np.clip(h_dissociation / np.maximum(h0e, 1.0), 0.0, 1.0)
    if catalytic:
        return base * (1.0 + (lewis**0.52 - 1.0) * frac)
    return base * (1.0 - frac)
