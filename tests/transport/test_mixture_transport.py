"""Tests for Wilke mixing, conductivity, diffusion and the facade model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.thermo.species import SPECIES, species_set
from repro.transport.conductivity import eucken_conductivity
from repro.transport.diffusion import (binary_diffusion_coefficient,
                                       lewis_diffusivity)
from repro.transport.mixture_rules import wilke_mixture
from repro.transport.properties import TransportModel
from repro.transport.viscosity import species_viscosities


class TestWilke:
    def test_pure_species_limit(self, air11):
        # mixture of one species returns that species' property
        x = np.zeros(11)
        x[air11.index["N2"]] = 1.0
        mu_s = species_viscosities(air11, np.array(1000.0))
        mu = wilke_mixture(air11, x, mu_s)
        assert float(mu) == pytest.approx(mu_s[air11.index["N2"]],
                                          rel=1e-12)

    def test_air_viscosity_room_temperature(self, air11):
        # Blottner fits target the hypersonic range; at 300 K the O2 fit
        # overshoots, so allow ~10 % here (the 1000 K check below is tight)
        x = np.zeros(11)
        x[air11.index["N2"]] = 0.79
        x[air11.index["O2"]] = 0.21
        mu_s = species_viscosities(air11, np.array(300.0))
        mu = wilke_mixture(air11, x, mu_s)
        assert float(mu) == pytest.approx(1.85e-5, rel=0.12)

    def test_air_viscosity_1000K(self, air11):
        # CRC air at 1000 K: 4.15e-5 Pa s
        x = np.zeros(11)
        x[air11.index["N2"]] = 0.79
        x[air11.index["O2"]] = 0.21
        mu_s = species_viscosities(air11, np.array(1000.0))
        mu = wilke_mixture(air11, x, mu_s)
        assert float(mu) == pytest.approx(4.15e-5, rel=0.06)

    @given(w=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_between_pure_limits(self, w):
        db = species_set("air11")
        x = np.zeros(11)
        x[db.index["N2"]] = w
        x[db.index["O"]] = 1.0 - w
        mu_s = species_viscosities(db, np.array(2000.0))
        mu = float(wilke_mixture(db, x, mu_s))
        lo = min(mu_s[db.index["N2"]], mu_s[db.index["O"]])
        hi = max(mu_s[db.index["N2"]], mu_s[db.index["O"]])
        # Wilke can undershoot slightly but stays near the pure bracket
        assert 0.8 * lo < mu < 1.2 * hi

    def test_batched(self, air11, rng):
        x = rng.random((4, 11))
        x /= x.sum(axis=1, keepdims=True)
        mu_s = species_viscosities(air11, np.full(4, 1500.0))
        mu = wilke_mixture(air11, x, mu_s)
        assert mu.shape == (4,)


class TestEucken:
    def test_air_conductivity_room_temperature(self, air11):
        model = TransportModel(air11)
        y = np.zeros(11)
        y[air11.index["N2"]], y[air11.index["O2"]] = 0.767, 0.233
        k = float(model.conductivity(np.array(300.0), y))
        assert k == pytest.approx(0.026, rel=0.12)

    def test_monatomic_limit(self):
        # for an atom: k = mu * 15/4 R / M (Eucken exact monatomic value)
        from repro.constants import R_UNIVERSAL as R
        mu = 2.0e-5
        M = SPECIES["Ar"].molar_mass
        k = float(eucken_conductivity(mu, 2.5 * R, M))
        assert k == pytest.approx(mu * 3.75 * R / M, rel=1e-12)

    def test_prandtl_number_air(self, air11):
        model = TransportModel(air11)
        y = np.zeros(11)
        y[air11.index["N2"]], y[air11.index["O2"]] = 0.767, 0.233
        Pr = float(model.prandtl(np.array(300.0), y))
        assert Pr == pytest.approx(0.71, rel=0.12)


class TestDiffusion:
    def test_lewis_consistency(self):
        D = lewis_diffusivity(0.026, 1.2, 1005.0, 1.4)
        assert float(D) == pytest.approx(1.4 * 0.026 / (1.2 * 1005.0))

    def test_binary_n2_o2_room(self):
        # D(N2-O2) at 300 K, 1 atm ~ 0.2 cm^2/s
        D = binary_diffusion_coefficient(
            "N2", "O2", 300.0, 101325.0,
            SPECIES["N2"].molar_mass, SPECIES["O2"].molar_mass)
        assert float(D) == pytest.approx(2.0e-5, rel=0.2)

    def test_binary_scales_inverse_pressure(self):
        D1 = binary_diffusion_coefficient("N2", "O2", 500.0, 101325.0,
                                          0.028, 0.032)
        D2 = binary_diffusion_coefficient("N2", "O2", 500.0, 1013250.0,
                                          0.028, 0.032)
        assert float(D1 / D2) == pytest.approx(10.0, rel=1e-10)


class TestTransportModelFacade:
    def test_all_properties_consistent(self, air11, rng):
        model = TransportModel(air11)
        y = rng.random((3, 11))
        y /= y.sum(axis=1, keepdims=True)
        T = np.array([500.0, 2000.0, 6000.0])
        rho = np.array([1.0, 0.1, 0.01])
        props = model.all_properties(rho, T, y)
        assert np.allclose(props["mu"], model.viscosity(T, y), rtol=1e-12)
        assert np.allclose(props["k"], model.conductivity(T, y),
                           rtol=1e-12)
        assert np.allclose(props["D"], model.diffusivity(rho, T, y),
                           rtol=1e-12)
        assert np.all(props["Pr"] > 0.3) and np.all(props["Pr"] < 1.5)

    def test_viscosity_grows_into_plasma_regime(self, air11, air_gas):
        model = TransportModel(air11)
        mu = []
        for T in (300.0, 2000.0, 6000.0):
            y = air_gas.composition_rho_T(np.array([0.01]),
                                          np.array([T]))[0]
            mu.append(float(model.viscosity(np.array(T), y)))
        assert mu[0] < mu[1] < mu[2]
