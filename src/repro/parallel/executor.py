"""Fork-based shared-memory stencil pool with barrier synchronisation.

The execution model is bulk-synchronous (the era's multitasked vector
codes): each worker owns a contiguous block of rows; per step it

1. copies its halo-padded slice out of the shared source buffer,
2. waits at a barrier (everyone holds a consistent snapshot),
3. writes its owned rows of the destination buffer through the kernel,
4. waits again, then the buffers swap roles.

Two barriers per step make the double-buffered scheme race-free.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory

import numpy as np

from repro.errors import InputError
from repro.parallel.decomposition import partition_1d
from repro.parallel.kernels import KERNELS

__all__ = ["SharedMemoryStencilPool"]


def _worker(shm_a_name, shm_b_name, shape, dtype_str, block, kernel_name,
            n_steps, params, barrier):
    shm_a = shared_memory.SharedMemory(name=shm_a_name)
    shm_b = shared_memory.SharedMemory(name=shm_b_name)
    try:
        A = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm_a.buf)
        B = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm_b.buf)
        kernel = KERNELS[kernel_name]
        p = dict(params)
        p["own"] = block.owned_slice_in_padded()
        src, dst = A, B
        for _ in range(n_steps):
            local = np.array(src[block.padded_lo:block.padded_hi])
            barrier.wait()
            kernel(local, dst[block.lo:block.hi], p)
            barrier.wait()
            src, dst = dst, src
    finally:
        shm_a.close()
        shm_b.close()


class SharedMemoryStencilPool:
    """Run a registered kernel over a decomposed array with N workers."""

    def __init__(self, kernel: str, *, n_workers: int = 2, halo: int = 1):
        if kernel not in KERNELS:
            raise InputError(f"unknown kernel {kernel!r}; registered: "
                             f"{sorted(KERNELS)}")
        if n_workers < 1:
            raise InputError("n_workers must be >= 1")
        self.kernel = kernel
        self.n_workers = n_workers
        self.halo = halo

    def run(self, U0: np.ndarray, n_steps: int, params: dict | None = None):
        """Advance U0 by n_steps; returns (U_final, elapsed_seconds).

        The timing covers the stepping loop only (not process spawn), the
        convention strong-scaling studies use.
        """
        params = dict(params or {})
        U0 = np.ascontiguousarray(U0, dtype=np.float64)
        blocks = partition_1d(U0.shape[0], self.n_workers, halo=self.halo)
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(self.n_workers + 1)
        nbytes = U0.nbytes
        shm_a = shared_memory.SharedMemory(create=True, size=nbytes)
        shm_b = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            A = np.ndarray(U0.shape, dtype=np.float64, buffer=shm_a.buf)
            B = np.ndarray(U0.shape, dtype=np.float64, buffer=shm_b.buf)
            A[...] = U0
            B[...] = U0  # boundary rows persist through the swaps
            procs = [ctx.Process(
                target=_worker,
                args=(shm_a.name, shm_b.name, U0.shape, "float64", blk,
                      self.kernel, n_steps, params, barrier))
                for blk in blocks]
            for p in procs:
                p.start()
            t0 = time.perf_counter()
            for _ in range(n_steps):
                barrier.wait()   # snapshot barrier
                barrier.wait()   # write barrier
            elapsed = time.perf_counter() - t0
            for p in procs:
                p.join(timeout=60)
                if p.exitcode != 0:
                    raise RuntimeError(
                        f"worker exited with code {p.exitcode}")
            out = np.array(B if n_steps % 2 == 1 else A)
            return out, elapsed
        finally:
            shm_a.close()
            shm_a.unlink()
            shm_b.close()
            shm_b.unlink()

    def run_serial(self, U0: np.ndarray, n_steps: int,
                   params: dict | None = None):
        """Single-process reference (same kernel, no decomposition)."""
        params = dict(params or {})
        U = np.ascontiguousarray(U0, dtype=np.float64).copy()
        out = U.copy()
        kernel = KERNELS[self.kernel]
        p = dict(params)
        p["own"] = slice(0, U.shape[0])
        t0 = time.perf_counter()
        for _ in range(n_steps):
            kernel(U, out[0:U.shape[0]], p)
            U, out = out, U
        return U, time.perf_counter() - t0
