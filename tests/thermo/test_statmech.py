"""Tests for statistical-mechanics thermodynamics.

Reference values are JANAF/NIST tabulations; the RRHO+electronic model
should land within a percent or two at ordinary temperatures.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import R_UNIVERSAL as R
from repro.thermo.species import SPECIES, species_set
from repro.thermo.statmech import P_STANDARD, SpeciesThermo, ThermoSet

TEMPS = st.floats(min_value=150.0, max_value=2.0e4)
ALL_NAMES = sorted(SPECIES)


class TestAgainstJANAF:
    """Spot checks against standard-table values at 298.15 K / 1 bar."""

    @pytest.mark.parametrize("name,cp_ref", [
        ("N2", 29.12), ("O2", 29.38), ("NO", 29.86), ("N", 20.79),
        ("O", 21.91), ("Ar", 20.79), ("H2", 28.84), ("H", 20.79),
        ("CH4", 35.6),
    ])
    def test_cp_298(self, name, cp_ref):
        st_ = SpeciesThermo(SPECIES[name])
        assert float(st_.cp(298.15)) == pytest.approx(cp_ref, rel=0.02)

    @pytest.mark.parametrize("name,s_ref", [
        ("N2", 191.61), ("O2", 205.15), ("NO", 210.76), ("N", 153.30),
        ("O", 161.06), ("Ar", 154.85), ("H2", 130.68), ("H", 114.72),
    ])
    def test_s_298(self, name, s_ref):
        st_ = SpeciesThermo(SPECIES[name])
        assert float(st_.s(298.15, P_STANDARD)) == pytest.approx(
            s_ref, rel=0.01)

    def test_n2_cp_high_temperature(self):
        # vibration fully excited: cp -> 7/2 R + R = 4.5 R minus electronic
        st_ = SpeciesThermo(SPECIES["N2"])
        cp3000 = float(st_.cp(3000.0))
        assert 35.0 < cp3000 < 38.5  # JANAF: 37.0 J/mol/K

    def test_h_increment_n2(self):
        # JANAF H(1000) - H(298) for N2 = 21.46 kJ/mol
        st_ = SpeciesThermo(SPECIES["N2"])
        dh = float(st_.h(1000.0) - st_.h(298.15))
        assert dh == pytest.approx(21.46e3, rel=0.01)

    def test_monatomic_cp_is_5_2R_plus_electronic(self):
        st_ = SpeciesThermo(SPECIES["Ar"])
        assert float(st_.cp(500.0)) == pytest.approx(2.5 * R, rel=1e-10)


class TestThermodynamicIdentities:
    @given(T=TEMPS, name=st.sampled_from(ALL_NAMES))
    @settings(max_examples=80, deadline=None)
    def test_cp_minus_cv_is_R(self, T, name):
        st_ = SpeciesThermo(SPECIES[name])
        assert float(st_.cp(T) - st_.cv(T)) == pytest.approx(R, rel=1e-12)

    @given(T=TEMPS, name=st.sampled_from(ALL_NAMES))
    @settings(max_examples=80, deadline=None)
    def test_h_minus_e_is_RT(self, T, name):
        st_ = SpeciesThermo(SPECIES[name])
        assert float(st_.h(T) - st_.e(T)) == pytest.approx(R * T, rel=1e-10)

    @given(T=TEMPS, name=st.sampled_from(ALL_NAMES))
    @settings(max_examples=60, deadline=None)
    def test_cp_is_dh_dT(self, T, name):
        st_ = SpeciesThermo(SPECIES[name])
        dT = max(T * 1e-5, 1e-3)
        cp_fd = float(st_.h(T + dT) - st_.h(T - dT)) / (2 * dT)
        assert cp_fd == pytest.approx(float(st_.cp(T)), rel=1e-4)

    @given(T=TEMPS, name=st.sampled_from(ALL_NAMES))
    @settings(max_examples=60, deadline=None)
    def test_cp_over_T_is_ds_dT(self, T, name):
        # (ds/dT)_p = cp / T
        st_ = SpeciesThermo(SPECIES[name])
        dT = max(T * 1e-5, 1e-3)
        ds_fd = float(st_.s(T + dT) - st_.s(T - dT)) / (2 * dT)
        assert ds_fd == pytest.approx(float(st_.cp(T)) / T, rel=1e-4)

    @given(T=TEMPS, name=st.sampled_from(ALL_NAMES),
           pr=st.floats(min_value=-4.0, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_pressure_dependence_of_entropy(self, T, name, pr):
        # s(T, p) = s(T, p0) - R ln(p/p0)
        p = P_STANDARD * 10.0**pr
        st_ = SpeciesThermo(SPECIES[name])
        expected = float(st_.s(T)) - R * np.log(p / P_STANDARD)
        assert float(st_.s(T, p)) == pytest.approx(expected, rel=1e-10)

    @given(T=TEMPS, name=st.sampled_from(ALL_NAMES))
    @settings(max_examples=60, deadline=None)
    def test_gibbs_helmholtz(self, T, name):
        # d(g0/T)/dT = -h/T^2
        st_ = SpeciesThermo(SPECIES[name])
        dT = max(T * 1e-5, 1e-2)
        lhs = (float(st_.g0(T + dT)) / (T + dT)
               - float(st_.g0(T - dT)) / (T - dT)) / (2 * dT)
        rhs = -float(st_.h(T)) / T**2
        assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-6)

    def test_h_at_zero_kelvin_is_hf0(self):
        for name in ("N2", "N", "NO", "NO+", "CH4"):
            st_ = SpeciesThermo(SPECIES[name])
            # T -> 0 limit (evaluate at 1 K; thermal content ~ 3.5R*1K)
            h1 = float(st_.h(1.0))
            assert abs(h1 - SPECIES[name].hf0) < 50.0


class TestTwoTemperatureSplit:
    def test_energy_split_consistency(self):
        # h(T) == h_tr_rot(T) + e_vib_el(T) + ... for equal temperatures
        st_ = SpeciesThermo(SPECIES["N2"])
        for T in (300.0, 2000.0, 8000.0):
            total = float(st_.h(T))
            split = float(st_.h_tr_rot(T)) + float(st_.e_vib_el(T))
            assert total == pytest.approx(split, rel=1e-10)

    def test_vib_energy_monotonic_in_Tv(self):
        st_ = SpeciesThermo(SPECIES["N2"])
        Tv = np.linspace(200.0, 15000.0, 50)
        ev = st_.e_vib_el(Tv)
        assert np.all(np.diff(ev) > 0)

    def test_cv_vib_el_is_derivative(self):
        st_ = SpeciesThermo(SPECIES["O2"])
        Tv = 4000.0
        fd = float(st_.e_vib_el(Tv + 1.0) - st_.e_vib_el(Tv - 1.0)) / 2.0
        assert fd == pytest.approx(float(st_.cv_vib_el(Tv)), rel=1e-5)

    def test_atom_has_no_vibrational_energy_but_electronic(self):
        st_ = SpeciesThermo(SPECIES["O"])
        # O fine-structure levels contribute at modest T
        assert float(st_.e_vib_el(1000.0)) > 0.0
        st_ar = SpeciesThermo(SPECIES["Ar"])
        # catlint: disable=CAT010 -- Ar has no vibrational modes: e_vib_el is a zeros array
        assert float(st_ar.e_vib_el(1000.0)) == 0.0


class TestThermoSet:
    def test_shapes(self, air11):
        ts = ThermoSet(air11)
        T = np.linspace(300, 5000, 7).reshape(7)
        assert ts.cp(T).shape == (7, 11)
        assert ts.h(np.ones((2, 3))).shape == (2, 3, 11)

    def test_matches_per_species(self, air11):
        ts = ThermoSet(air11)
        T = np.array([1234.5])
        batch = ts.h(T)[0]
        for j, sp in enumerate(air11.species):
            single = float(SpeciesThermo(sp).h(1234.5))
            assert batch[j] == pytest.approx(single, rel=1e-12)

    def test_mass_units(self, air11):
        ts = ThermoSet(air11)
        T = np.array([1000.0])
        h_molar = ts.h(T)[0]
        h_mass = ts.h_mass(T)[0]
        assert np.allclose(h_mass, h_molar / air11.molar_mass)

    def test_scalar_input(self, air11):
        ts = ThermoSet(air11)
        out = ts.cp(300.0)
        assert out.shape == (11,)
