"""Positive + negative fixtures for every PERF rule.

Same convention as test_rules.py: offending code lives in string
literals.  Each source is linted under a hot-path index built from the
same module, placed on a solver path so entry-point names anchor.
"""

import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.hotpath import HotPathIndex
from repro.analysis.perf_rules import (
    DEFAULT_TRIP,
    ELEMENT_TRIP,
    SPECIES_TRIP,
    estimate_trips,
    perf_lint_source,
    rank_worklist,
)

SOLVER = "src/repro/solvers/example.py"
LIB = "src/repro/util/example.py"


def findings(source, path=SOLVER):
    source = textwrap.dedent(source)
    graph = CallGraph.from_source(source, path=path)
    index = HotPathIndex.build(graph)
    return perf_lint_source(source, path, index)


def codes(source, path=SOLVER):
    return [pf.finding.rule for pf in findings(source, path=path)]


class TestPERF001PerElementLoop:
    def test_positive(self):
        src = """
        import numpy as np
        def solve(x):
            out = np.empty_like(x)
            for i in range(x.shape[0]):
                out[i] = x[i] * 2.0
            return out
        """
        assert "PERF001" in codes(src)

    def test_negative_no_indexing(self):
        src = """
        def solve(x):
            acc = 1.0
            for _ in range(80):
                acc = 0.5 * (acc + x / acc)
            return acc
        """
        assert "PERF001" not in codes(src)

    def test_negative_cold_scope(self):
        src = """
        import numpy as np
        def build_table(x):
            out = np.empty_like(x)
            for i in range(x.shape[0]):
                out[i] = x[i]
            return out
        """
        assert codes(src, path=LIB) == []


class TestPERF002ListCompToArray:
    def test_positive(self):
        src = """
        import numpy as np
        def solve(xq, x, Y):
            return np.stack([np.interp(xq, x, Y[:, j])
                             for j in range(Y.shape[1])], axis=-1)
        """
        assert "PERF002" in codes(src)

    def test_negative_literal_list(self):
        src = """
        import numpy as np
        def solve(a, b):
            return np.array([a, b])
        """
        assert "PERF002" not in codes(src)

    def test_pragma_suppresses(self):
        src = """
        import numpy as np
        def solve(xs):
            # catlint: disable=PERF002 -- tiny fixed axis
            return np.array([f(x) for x in xs])
        """
        assert "PERF002" not in codes(src)


class TestPERF003ScalarMathInLoop:
    def test_positive_math_call(self):
        src = """
        import math
        def step(xs, out):
            for i in range(len(xs)):
                out[i] = math.exp(xs[i])
        """
        assert "PERF003" in codes(src)

    def test_positive_float_coercion(self):
        src = """
        import numpy as np
        def step(xs, out):
            for i in range(len(xs)):
                out[i] = float(np.clip(xs[i], 0.0, 1.0))
        """
        assert "PERF003" in codes(src)

    def test_positive_in_callback(self):
        src = """
        import math
        def solve(z0):
            def rhs(t, z):
                return math.exp(t) * z
            return integrate(rhs, z0)
        """
        assert "PERF003" in codes(src)

    def test_negative_outside_loop(self):
        src = """
        import math
        def step(x):
            return math.sqrt(x)
        """
        assert "PERF003" not in codes(src)


class TestPERF004AllocInLoop:
    def test_positive_ctor(self):
        src = """
        import numpy as np
        def march(n):
            x = 0.0
            while x < 1.0:
                buf = np.zeros(n, dtype=np.float64)
                x = x + buf.sum()
            return x
        """
        assert "PERF004" in codes(src)

    def test_positive_copy(self):
        src = """
        def step(y, n):
            for j in range(n):
                yj = y.copy()
                use(yj)
        """
        assert "PERF004" in codes(src)

    def test_negative_hoisted(self):
        src = """
        import numpy as np
        def march(n):
            buf = np.zeros(n, dtype=np.float64)
            for _ in range(10):
                buf += 1.0
            return buf
        """
        assert "PERF004" not in codes(src)


class TestPERF005ArrayGrowthInLoop:
    def test_positive(self):
        src = """
        import numpy as np
        def march(xs):
            hist = np.zeros(0)
            for x in xs:
                hist = np.append(hist, x)
            return hist
        """
        assert "PERF005" in codes(src)

    def test_negative_outside_loop(self):
        src = """
        import numpy as np
        def march(a, b):
            return np.concatenate([a, b])
        """
        assert "PERF005" not in codes(src)

    def test_listcomp_arg_is_perf002_not_perf005(self):
        src = """
        import numpy as np
        def march(xs):
            for _ in range(3):
                out = np.concatenate([f(x) for x in xs])
            return out
        """
        got = codes(src)
        assert "PERF002" in got
        assert "PERF005" not in got


class TestPERF006LoopInvariantKernel:
    def test_positive(self):
        src = """
        def solve(db, T, xs):
            acc = 0.0
            for i in range(8):
                acc = acc + db.cp(T)
            return acc
        """
        assert "PERF006" in codes(src)

    def test_negative_loop_variant_arg(self):
        src = """
        def solve(db, T, xs):
            acc = 0.0
            for i in range(8):
                acc = acc + db.cp(T[i])
            return acc
        """
        # T[i] depends on the loop variable: hoisting would be wrong
        assert "PERF006" not in codes(src)

    def test_negative_not_a_known_kernel(self):
        src = """
        def solve(db, T):
            acc = 0.0
            for i in range(8):
                acc = acc + db.sample(T)
            return acc
        """
        assert "PERF006" not in codes(src)


class TestPERF007ScalarAccumulation:
    def test_positive_augassign(self):
        src = """
        def solve(x, n):
            s = 0.0
            for i in range(n):
                s += x[i]
            return s
        """
        assert "PERF007" in codes(src)

    def test_positive_sum_genexp(self):
        src = """
        def solve(x, n):
            return sum(x[i] * 2.0 for i in range(n))
        """
        assert "PERF007" in codes(src)

    def test_negative_plain_counter(self):
        src = """
        def solve(n):
            total = 0.0
            for _ in range(n):
                total += 1.0
            return total
        """
        assert "PERF007" not in codes(src)


class TestPERF008DtypeChurnInLoop:
    def test_positive_astype(self):
        src = """
        import numpy as np
        def step(xs, n):
            for _ in range(n):
                ys = xs.astype(np.float64)
                use(ys)
        """
        assert "PERF008" in codes(src)

    def test_positive_rewrap(self):
        src = """
        import numpy as np
        def step(xs, n):
            for _ in range(n):
                ys = np.asarray(xs)
                use(ys)
        """
        assert "PERF008" in codes(src)

    def test_negative_outside_loop(self):
        src = """
        import numpy as np
        def step(xs):
            return xs.astype(np.float64)
        """
        assert "PERF008" not in codes(src)


class TestTripEstimate:
    def trips(self, source):
        import ast
        tree = ast.parse(textwrap.dedent(source))
        loop = next(n for n in ast.walk(tree) if isinstance(n, ast.For))
        return estimate_trips(loop.iter)

    def test_constant_range(self):
        assert self.trips("for i in range(80): pass") == (80, "constant")

    def test_constant_range_start_stop(self):
        assert self.trips("for i in range(2, 10): pass") == (8, "constant")

    def test_species_axis_name(self):
        n, basis = self.trips("for j in range(db.n): pass")
        assert (n, basis) == (SPECIES_TRIP, "species-axis")

    def test_element_axis_name(self):
        n, basis = self.trips("for k in range(n_el): pass")
        assert (n, basis) == (ELEMENT_TRIP, "element-axis")

    def test_unknown_defaults_to_cell_axis(self):
        n, basis = self.trips("for i in range(nx): pass")
        assert (n, basis) == (DEFAULT_TRIP, "assumed-cell-axis")


class TestScoringAndRanking:
    def test_score_formula(self):
        src = """
        import numpy as np
        def solve(x):
            out = np.empty_like(x)
            for i in range(80):
                out[i] = x[i]
            return out
        """
        (pf,) = findings(src)
        assert pf.finding.rule == "PERF001"
        assert pf.hot_depth == 0 and pf.local_depth == 1
        assert pf.trips == 80 and pf.multiplicity == 1
        # catlint: disable=CAT010 -- integer-product score, exact float
        assert pf.score == 80.0

    def test_rescue_path_discount(self):
        src = """
        import numpy as np
        def solve(x, out):
            for i in range(100):
                try:
                    out[i] = x[i]
                except ValueError:
                    fallback = np.array([v * 2.0 for v in x])
                    out[i] = fallback[i]
        """
        all_f = findings(src)
        steady = next(pf for pf in all_f if pf.finding.rule == "PERF001")
        assert not steady.rescue_path
        # findings landing in the except handler are discounted 100x
        rescue = [pf for pf in all_f if pf.rescue_path]
        assert rescue, "expected a rescue-path finding in the handler"
        for pf in rescue:
            assert pf.score < steady.score

    def test_rank_worklist_orders_by_score(self):
        src = """
        import numpy as np
        def solve(x):
            small = np.empty(4)
            for i in range(4):
                small[i] = x[i]
            big = np.empty(500)
            for i in range(500):
                big[i] = x[i]
            return small, big
        """
        ranked = rank_worklist(findings(src))
        assert ranked[0].trips == 500
        assert ranked[0].score >= ranked[-1].score

    def test_worklist_entry_dict_shape(self):
        src = """
        import numpy as np
        def solve(x):
            out = np.empty_like(x)
            for i in range(x.shape[0]):
                out[i] = x[i]
            return out
        """
        (pf,) = findings(src)
        doc = pf.to_dict()
        for field in ("rule", "path", "line", "score", "function",
                      "hot_depth", "local_depth", "loop_depth",
                      "trip_estimate", "trip_basis", "multiplicity",
                      "rescue_path", "hot_via", "key"):
            assert field in doc
        assert doc["function"] == "solve"
        assert doc["hot_via"][0].endswith("::solve")


class TestHotGating:
    def test_rules_need_hot_context(self):
        # the generic lint engine never attaches hotness: PERF rules
        # must stay silent there even on flagrant sources
        from repro.analysis.engine import lint_source
        src = textwrap.dedent("""
        import numpy as np
        def solve(x):
            out = np.empty_like(x)
            for i in range(x.shape[0]):
                out[i] = x[i]
            return out
        """)
        got = [f.rule for f in lint_source(src, path=SOLVER)]
        assert not any(r.startswith("PERF") for r in got)

    def test_test_files_exempt(self):
        src = """
        import numpy as np
        def solve(x):
            out = np.empty_like(x)
            for i in range(x.shape[0]):
                out[i] = x[i]
            return out
        """
        assert codes(src, path="tests/test_example.py") == []
