"""Integration tests for the axisymmetric Navier-Stokes solver."""

import numpy as np
import pytest

from repro.core.gas import IdealGasEOS
from repro.errors import InputError
from repro.geometry import Hemisphere
from repro.grid import blunt_body_grid
from repro.solvers.ns2d import AxisymmetricNSSolver


@pytest.fixture(scope="module")
def m6_viscous():
    body = Hemisphere(0.1)
    grid = blunt_body_grid(body, n_s=25, n_normal=51, density_ratio=0.2,
                           margin=2.5, wall_cluster_beta=2.5)
    rho, T = 5e-4, 220.0
    a = np.sqrt(1.4 * 287.0528 * T)
    s = AxisymmetricNSSolver(grid, IdealGasEOS(1.4), T_wall=300.0)
    s.set_freestream(rho, 6.0 * a, rho * 287.0528 * T)
    s.run(n_steps=2000, cfl=0.3)
    return s


class TestViscousM6:
    def test_stagnation_heating_vs_fay_riddell(self, m6_viscous):
        from repro.solvers.shock import frozen_post_shock_state
        from repro.transport.viscosity import sutherland_viscosity
        q = m6_viscous.wall_heat_flux()
        rho, T = 5e-4, 220.0
        V = 6.0 * np.sqrt(1.4 * 287.0528 * T)
        ps = frozen_post_shock_state(rho, T, V)
        h0 = 1004.5 * T + 0.5 * V**2
        T0 = h0 / 1004.5
        rho_s = ps["p2"] / (287.0528 * T0)
        K = (1.0 / 0.1) * np.sqrt(2.0 * (ps["p2"] - rho * 287.0528 * T)
                                  / rho_s)
        q_fr = (0.763 * 0.72**-0.6 * np.sqrt(rho_s
                                             * sutherland_viscosity(T0))
                * np.sqrt(K) * (h0 - 1004.5 * 300.0))
        assert q[0] == pytest.approx(q_fr, rel=0.25)

    def test_heating_decreases_around_body(self, m6_viscous):
        q = m6_viscous.wall_heat_flux()
        # Lees: ~0.5-0.9 of stagnation at 45 deg, lower at the shoulder
        assert q[-1] < 0.8 * q[0]
        assert np.all(q > 0)

    def test_no_slip_wall(self, m6_viscous):
        f = m6_viscous.fields()
        speed = np.hypot(f["u"][:, 0], f["v"][:, 0])
        V = 6.0 * np.sqrt(1.4 * 287.0528 * 220.0)
        # first-cell velocity far below freestream (boundary layer)
        assert np.all(speed < 0.25 * V)

    def test_wall_shear_positive_off_stagnation(self, m6_viscous):
        tau = m6_viscous.wall_shear()
        assert np.all(tau[1:] > 0)
        # shear vanishes toward the stagnation point
        assert tau[0] < tau[len(tau) // 2]

    def test_adiabatic_wall_heating_raises(self):
        body = Hemisphere(0.1)
        grid = blunt_body_grid(body, n_s=11, n_normal=15)
        s = AxisymmetricNSSolver(grid, T_wall=None)
        s.set_freestream(1e-4, 1000.0, 10.0)
        with pytest.raises(InputError):
            s.wall_heat_flux()

    def test_viscous_timestep_smaller_than_inviscid(self, m6_viscous):
        from repro.solvers.euler2d import AxisymmetricEulerSolver
        dt_ns = m6_viscous.local_timestep(0.5)
        dt_euler = AxisymmetricEulerSolver.local_timestep(m6_viscous, 0.5)
        assert np.all(dt_ns <= dt_euler + 1e-18)
