"""Tests for time integration, tridiagonal solvers, point-implicit update."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError, StabilityError
from repro.numerics.implicit import point_implicit_species_update
from repro.numerics.time_integration import (cfl_timestep_1d, check_state,
                                             ssp_rk2_step, ssp_rk3_step)
from repro.numerics.tridiag import block_thomas, thomas
from repro.thermo.kinetics import park_air_mechanism


class TestCFL:
    def test_uniform(self):
        dt = cfl_timestep_1d(0.01, np.zeros(5), np.full(5, 100.0), cfl=0.5)
        assert dt == pytest.approx(0.5 * 0.01 / 100.0)

    def test_fastest_wave_controls(self):
        u = np.array([0.0, 500.0, -800.0])
        a = np.array([300.0, 300.0, 300.0])
        dt = cfl_timestep_1d(0.01, u, a, cfl=1.0)
        assert dt == pytest.approx(0.01 / 1100.0)


class TestSSPRK:
    def test_exponential_decay_order(self):
        # dy/dt = -y: compare convergence order of RK2 vs RK3
        def residual(y):
            return -y

        def integrate(stepper, dt):
            y = np.array([1.0])
            t = 0.0
            while t < 1.0 - 1e-12:
                y = stepper(y, dt, residual)
                t += dt
            return float(y[0])

        exact = np.exp(-1.0)
        e2 = [abs(integrate(ssp_rk2_step, dt) - exact)
              for dt in (0.1, 0.05)]
        e3 = [abs(integrate(ssp_rk3_step, dt) - exact)
              for dt in (0.1, 0.05)]
        order2 = np.log2(e2[0] / e2[1])
        order3 = np.log2(e3[0] / e3[1])
        assert order2 == pytest.approx(2.0, abs=0.3)
        assert order3 == pytest.approx(3.0, abs=0.3)

    def test_linear_residual_exactness_rk3(self):
        # RK3 integrates quadratic-in-t exactly for residual R(t-like)
        def residual(y):
            return np.array([2.0])  # dy/dt const
        y = ssp_rk3_step(np.array([1.0]), 0.5, residual)
        assert float(y[0]) == pytest.approx(2.0)


class TestCheckState:
    def test_ok(self):
        check_state(np.array([[1.0, 2.0, 3.0]]))

    def test_nan_raises(self):
        with pytest.raises(StabilityError):
            check_state(np.array([[np.nan, 0.0, 0.0]]), step=7)

    def test_negative_density_raises(self):
        with pytest.raises(StabilityError):
            check_state(np.array([[-1.0, 0.0, 1.0]]))

    def test_non_positive_total_energy_raises(self):
        with pytest.raises(StabilityError, match="total energy"):
            check_state(np.array([[1.0, 0.5, -3.0]]))

    def test_non_positive_internal_energy_raises(self):
        # rhoE = 2 but |rho u|^2/(2 rho) = 4.5 -> e_int < 0 while rhoE > 0
        with pytest.raises(StabilityError, match="internal energy"):
            check_state(np.array([[1.0, 3.0, 2.0]]))

    def test_internal_energy_2d_momentum(self):
        # 2D layout [rho, rho u, rho v, rhoE]: kinetic = (9+16)/2 = 12.5
        U = np.array([[1.0, 3.0, 4.0, 12.0]])
        with pytest.raises(StabilityError, match="internal energy"):
            check_state(U, energy_index=3, momentum_indices=(1, 2))
        check_state(np.array([[1.0, 3.0, 4.0, 13.0]]),
                    energy_index=3, momentum_indices=(1, 2))

    def test_e_min_none_skips_internal_energy_check(self):
        # heat-of-formation energy bases legitimately dip below kinetic
        check_state(np.array([[1.0, 3.0, 2.0]]), e_min=None)

    def test_error_carries_step_and_label(self):
        with pytest.raises(StabilityError) as exc:
            check_state(np.array([[1.0, 3.0, 2.0]]), step=12,
                        label="euler1d")
        assert exc.value.step == 12
        assert "euler1d" in str(exc.value)


class TestThomas:
    @given(n=st.integers(min_value=3, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_against_dense_solve(self, n):
        rng = np.random.default_rng(n)
        b = 4.0 + rng.random(n)
        a = rng.random(n) * 0.5
        c = rng.random(n) * 0.5
        d = rng.random(n)
        x = thomas(a, b, c, d)
        A = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
        assert np.allclose(A @ x, d, atol=1e-10)

    def test_batched(self, rng):
        B, n = 5, 12
        b = 4.0 + rng.random((B, n))
        a = rng.random((B, n)) * 0.5
        c = rng.random((B, n)) * 0.5
        d = rng.random((B, n))
        x = thomas(a, b, c, d)
        for k in range(B):
            A = np.diag(b[k]) + np.diag(a[k, 1:], -1) + np.diag(c[k, :-1],
                                                                1)
            assert np.allclose(A @ x[k], d[k], atol=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(InputError):
            thomas(np.zeros(3), np.ones(4), np.zeros(4), np.ones(4))


class TestBlockThomas:
    def test_against_dense(self, rng):
        n, m = 8, 3
        A = rng.random((n, m, m)) * 0.2
        C = rng.random((n, m, m)) * 0.2
        B = np.tile(np.eye(m) * 3.0, (n, 1, 1)) + rng.random((n, m, m))
        D = rng.random((n, m))
        x = block_thomas(A, B, C, D)
        # build dense
        K = np.zeros((n * m, n * m))
        for i in range(n):
            K[i * m:(i + 1) * m, i * m:(i + 1) * m] = B[i]
            if i > 0:
                K[i * m:(i + 1) * m, (i - 1) * m:i * m] = A[i]
            if i < n - 1:
                K[i * m:(i + 1) * m, (i + 1) * m:(i + 2) * m] = C[i]
        x_dense = np.linalg.solve(K, D.ravel()).reshape(n, m)
        assert np.allclose(x, x_dense, atol=1e-9)

    def test_scalar_blocks_match_thomas(self, rng):
        n = 10
        b = 4.0 + rng.random(n)
        a = rng.random(n) * 0.3
        c = rng.random(n) * 0.3
        d = rng.random(n)
        x1 = thomas(a, b, c, d)
        x2 = block_thomas(a[:, None, None], b[:, None, None],
                          c[:, None, None], d[:, None])
        assert np.allclose(x1, x2[:, 0], atol=1e-12)

    def test_bad_shapes(self):
        with pytest.raises(InputError):
            block_thomas(np.zeros((3, 2, 2)), np.zeros((4, 2, 2)),
                         np.zeros((3, 2, 2)), np.zeros((3, 2)))


class TestPointImplicit:
    def test_matches_explicit_for_tiny_dt(self):
        mech = park_air_mechanism("air5")
        db = mech.db
        y = np.zeros((2, 5))
        y[:, db.index["N2"]], y[:, db.index["O2"]] = 0.767, 0.233
        rho = np.full(2, 0.05)
        T = np.full(2, 6000.0)
        dt = 1e-12
        y_pi = point_implicit_species_update(mech, rho, T, y, dt,
                                             limit=False)
        w = mech.wdot(rho, T, y) / rho[..., None]
        y_ex = y + dt * w
        # the implicit correction is O(dt^2 J w): allow it on top of the
        # explicit step
        assert np.allclose(y_pi, y_ex, rtol=1e-4,
                           atol=1e-5 * np.abs(dt * w).max())

    def test_stable_for_large_dt(self):
        # explicit Euler would blow up at this dt; point-implicit stays
        # bounded and mass fractions remain physical
        mech = park_air_mechanism("air5")
        db = mech.db
        y = np.zeros((1, 5))
        y[:, db.index["N2"]], y[:, db.index["O2"]] = 0.767, 0.233
        rho = np.array([0.1])
        T = np.array([8000.0])
        for _ in range(50):
            y = point_implicit_species_update(mech, rho, T, y, 1e-4)
        assert np.all(y >= 0.0) and np.all(y <= 1.0)
        # mass closure is exact up to the finite-difference Jacobian
        # truncation error, which the enormous dt*J here amplifies
        assert np.allclose(y.sum(axis=-1), 1.0, atol=1e-4)

    def test_element_conservation_through_stiff_transient(self, air5):
        # the step limiter must not trade atoms between elements
        from repro.thermo.equilibrium import element_moles
        mech = park_air_mechanism("air5")
        db = mech.db
        y = np.zeros((1, 5))
        y[:, db.index["N2"]], y[:, db.index["O2"]] = 0.767, 0.233
        b0 = element_moles(db, y)
        rho = np.array([0.1])
        T = np.array([6000.0])
        dt = 1e-7
        for _ in range(200):
            y = point_implicit_species_update(mech, rho, T, y, dt)
            dt = min(dt * 1.3, 0.02)
        b1 = element_moles(db, y)
        assert np.allclose(b1, b0, rtol=1e-6)

    def test_drives_toward_equilibrium(self, air5_gas):
        mech = park_air_mechanism("air5")
        db = mech.db
        y = np.zeros((1, 5))
        y[:, db.index["N2"]], y[:, db.index["O2"]] = 0.767, 0.233
        rho = np.array([0.1])
        T = np.array([6000.0])
        y_eq = air5_gas.composition_rho_T(rho, T)
        d0 = np.abs(y - y_eq).max()
        dt = 1e-7
        for _ in range(400):
            y = point_implicit_species_update(mech, rho, T, y, dt)
            dt = min(dt * 1.3, 0.02)
        d1 = np.abs(y - y_eq).max()
        assert d1 < 0.05 * d0
