"""Chaos campaign for the batch front door (``chaos --batch``).

A seeded campaign mixes fault-injected requests (hangs, child crashes,
injected solver failures, NaN corruption) into a batch of good
requests and asserts the service's robustness contract:

* exactly one envelope per request, no exception, no hang past the
  batch deadline;
* every good request's result is **bitwise-identical** to a fault-free
  reference run of the same requests;
* every injected failure is captured in its own envelope (a failure
  record with report, or an explicit breaker-routing record);
* circuit-breaker open/half-open/close transitions are ledgered in a
  deterministic sequence — the campaign drives the cooldown with an
  offset clock, trips both faulted cells, then probes them back closed.

The report lands in ``<out>/chaos-batch.json``; exit code 0 iff every
check holds.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from repro.service.batch import BatchPolicy, evaluate_batch
from repro.service.breaker import BreakerBoard, BreakerPolicy

__all__ = ["build_campaign_requests", "run_chaos_batch"]

#: Deterministic fault mix over the faulted slots (cycled in order).
_FAULT_CYCLE = ("fail", "crash", "hang", "nan")

#: Known-good VSL condition (same as the tier-1 API tests) used for the
#: half-open probe that must re-close the tripped solver cell.
_PROBE_STAGNATION = {"method": "stagnation", "V": 6700.0, "h": 65500.0,
                     "nose_radius": 1.3}
_PROBE_HEAT_TITAN = {"method": "heat_point", "V": 5200.0, "h": 60.0e3,
                     "nose_radius": 1.1, "gas": "titan"}

#: Breaker cells the campaign trips (and must re-close).
_VSL_CELL = "stagnation/vsl:equilibrium-air"
_TITAN_CELL = "heat_point/correlation:titan"


def _good_request(i: int, rng) -> dict:
    """One cheap, deterministic, always-valid request."""
    pick = i % 3
    if pick == 0:
        return {"method": "heat_point",
                "V": round(3000.0 + 9000.0 * rng.random(), 3),
                "h": round(25.0e3 + 55.0e3 * rng.random(), 3),
                "nose_radius": round(0.3 + 4.0 * rng.random(), 4)}
    if pick == 1:
        return {"method": "stagnation_correlation",
                "V": round(4000.0 + 8000.0 * rng.random(), 3),
                "h": round(30.0e3 + 50.0e3 * rng.random(), 3),
                "nose_radius": round(0.5 + 3.0 * rng.random(), 4)}
    gas = ("equilibrium-air", "titan", "jupiter")[i % 9 // 3]
    return {"method": "equilibrium_composition",
            "T": round(1500.0 + 6000.0 * rng.random(), 3),
            "p": round(10.0 ** (3.0 + 2.0 * rng.random()), 3),
            "gas": gas}


def _faulted_request(i: int, rng) -> dict:
    """One fault-injected request.

    Solver-rung faults (fail/crash/hang) target the VSL rung of
    ``stagnation`` — the correlation rung still answers, so these come
    back ``degraded`` with the injected failure captured.  NaN faults
    corrupt a single-rung ``heat_point`` on the *titan* condition class
    (its own breaker cell, so good earth-class requests are never
    routed), which has no rung to fall back to and fails outright.
    """
    kind = _FAULT_CYCLE[i % len(_FAULT_CYCLE)]
    if kind == "nan":
        return {"method": "heat_point",
                "V": round(4500.0 + 10.0 * i, 3), "h": 55.0e3,
                "nose_radius": 1.0, "gas": "titan",
                "fault": {"kind": "nan"}}
    req = {"method": "stagnation",
           "V": round(7000.0 + 10.0 * i, 3), "h": 71.0e3,
           "nose_radius": 1.3,
           "fault": {"kind": kind, "rung": "vsl"}}
    if kind == "hang":
        req["deadline"] = 1.0   # the sandbox kill budget for the hang
    return req


def build_campaign_requests(*, requests: int, faulted: int,
                            seed: int) -> tuple:
    """Seeded deterministic campaign: ``requests`` total, ``faulted``
    of them fault-injected at seeded positions.  Returns
    ``(batch, fault_positions, good_positions)``."""
    rng = np.random.default_rng(seed)
    positions = sorted(rng.choice(requests, size=faulted,
                                  replace=False).tolist())
    fault_set = set(positions)
    batch, n_good = [], 0
    n_fault = 0
    for i in range(requests):
        if i in fault_set:
            batch.append(_faulted_request(n_fault, rng))
            n_fault += 1
        else:
            batch.append(_good_request(n_good, rng))
            n_good += 1
    good_positions = [i for i in range(requests) if i not in fault_set]
    return batch, positions, good_positions


def _transition_pairs(transitions: list, cell: str) -> list:
    return [(t["from"], t["to"]) for t in transitions
            if t["cell"] == cell]


def run_chaos_batch(*, requests: int = 200, faulted: int = 20,
                    seed: int = 0, out: str = "chaos-reports",
                    deadline: float = 120.0, stream=None) -> int:
    """Run the batch chaos campaign; returns the process exit code."""
    stream = stream or sys.stdout
    os.makedirs(out, exist_ok=True)
    t0 = time.monotonic()
    cooldown = 600.0

    batch, fault_pos, good_pos = build_campaign_requests(
        requests=requests, faulted=faulted, seed=seed)
    policy = BatchPolicy(deadline=deadline, request_deadline=30.0,
                         allow_faults=True,
                         breaker=BreakerPolicy(trip_after=3,
                                               cooldown=cooldown))

    # Offset clock: the campaign, not the wall, decides when the
    # breaker cooldown has elapsed — keeps the transition ledger
    # deterministic.
    offset = [0.0]
    board = BreakerBoard(policy.breaker,
                         clock=lambda: time.monotonic() + offset[0])

    print(f"chaos-batch: {requests} requests ({faulted} faulted), "
          f"seed={seed}", file=stream)
    result = evaluate_batch(batch, policy, breakers=board)

    print("chaos-batch: fault-free reference run", file=stream)
    reference = evaluate_batch([batch[i] for i in good_pos],
                               BatchPolicy(deadline=deadline))

    # Cooldown elapses (by clock offset); half-open probes must
    # re-close both tripped cells.
    offset[0] += cooldown + 1.0
    print("chaos-batch: half-open probes after cooldown", file=stream)
    probe = evaluate_batch([_PROBE_STAGNATION, _PROBE_HEAT_TITAN],
                           policy, breakers=board)

    envelopes = result.envelopes
    checks = {}
    checks["one_envelope_per_request"] = (
        len(envelopes) == requests
        and all(e is not None and e.index == i
                for i, e in enumerate(envelopes))
        and bool(result.ledger["ok"]))
    checks["deadline_respected"] = (time.monotonic() - t0) < deadline

    good_ok = good_bitwise = True
    for j, i in enumerate(good_pos):
        env, ref = envelopes[i], reference.envelopes[j]
        if env.status != "ok" or ref.status != "ok":
            good_ok = False
        elif env.result != ref.result:
            good_bitwise = False
    checks["good_requests_all_ok"] = good_ok
    checks["good_results_bitwise_identical"] = good_bitwise

    captured = True
    for i in fault_pos:
        env = envelopes[i]
        if env.status == "ok":
            captured = False
            continue
        has_failure = any("error_type" in rec for rec in
                          env.degradation) or env.error is not None
        if not (has_failure or env.routed_by_breaker):
            captured = False
    checks["injected_failures_captured"] = captured

    vsl = _transition_pairs(board.transitions, _VSL_CELL)
    titan = _transition_pairs(board.transitions, _TITAN_CELL)
    expected = [("closed", "open"), ("open", "half_open"),
                ("half_open", "closed")]
    # a cell only trips (and must then walk the full open -> half-open
    # -> closed arc) when it received >= trip_after injected failures;
    # below that the deterministic expectation is "no transitions"
    n_nan = sum(1 for j in range(faulted)
                if _FAULT_CYCLE[j % len(_FAULT_CYCLE)] == "nan")
    trip = policy.breaker.trip_after
    checks["breaker_transitions_deterministic"] = (
        vsl == (expected if faulted - n_nan >= trip else [])
        and titan == (expected if n_nan >= trip else []))
    checks["probes_reclose_ok"] = all(e.status == "ok"
                                      for e in probe.envelopes)

    ok = all(checks.values())
    report = {"ok": ok, "checks": checks, "seed": seed,
              "requests": requests, "faulted": faulted,
              "fault_positions": fault_pos,
              "elapsed_s": round(time.monotonic() - t0, 3),
              "ledger": result.ledger,
              "breaker_transitions": board.transitions,
              "probe_counts": probe.ledger["counts"]}
    path = os.path.join(out, "chaos-batch.json")
    with open(path, "w") as f:
        json.dump(report, f, indent=1, default=str)
    for name, value in checks.items():
        print(f"chaos-batch:   {name}: {'ok' if value else 'FAIL'}",
              file=stream)
    print(f"chaos-batch: {'PASS' if ok else 'FAIL'} "
          f"({report['elapsed_s']} s) -> {path}", file=stream)
    return 0 if ok else 1
