"""Micro-benchmarks and ablations for the load-bearing kernels.

* equilibrium Gibbs solver throughput (batched states/second),
* EOS ablation: tabulated effective-gamma lookup vs direct Gibbs solve
  (the design choice behind the era's curve-fit EOS codes),
* upwind flux kernels,
* 2-D Euler residual evaluation.

The ``test_bench_kernel_*`` family additionally records its timings
through the ``kernel_bench`` fixture (no pytest-benchmark needed) into
the ``BENCH_kernels.json`` CI artifact — the ROADMAP item-2 per-kernel
perf trajectory: Gibbs equilibrium solve, kinetics source terms,
MUSCL+flux sweep, tangent-slab radiation, NASA-7 evaluation, and the
species-profile interpolation (loop vs vectorized ablation).
"""

import numpy as np
import pytest

from repro.core.gas import IdealGasEOS, TabulatedEOS
from repro.numerics.fluxes import hlle_flux
from repro.numerics.upwind import steger_warming_flux, van_leer_flux
from repro.thermo.eos_table import build_air_table
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set


@pytest.fixture(scope="module")
def air_gas():
    db = species_set("air11")
    return EquilibriumGas(db, air_reference_mass_fractions(db))


@pytest.fixture(scope="module")
def eos_table():
    return build_air_table(n_rho=32, n_e=48)


@pytest.fixture(scope="module")
def state_batch():
    rng = np.random.default_rng(7)
    rho = 10.0 ** rng.uniform(-5, 0, 2000)
    e = 10.0 ** rng.uniform(5.5, 7.5, 2000)
    return rho, e


def test_bench_equilibrium_solver_batch(benchmark, air_gas):
    rho = np.full(2000, 0.01)
    T = np.linspace(500.0, 12000.0, 2000)
    y = benchmark(air_gas.composition_rho_T, rho, T)
    assert y.shape == (2000, 11)


def test_bench_eos_direct_gibbs(benchmark, air_gas, state_batch):
    """Ablation baseline: full Gibbs solve per (rho, e) state."""
    rho, e = state_batch
    out = benchmark(lambda: air_gas.state_rho_e(rho, e)["p"])
    assert np.all(out > 0)


def test_bench_eos_table_lookup(benchmark, eos_table, state_batch):
    """Ablation: the effective-gamma table on the same states.

    The measured speedup (typically 100-1000x) is the reason the era's
    production codes used curve-fit EOS tables.
    """
    rho, e = state_batch
    out = benchmark(lambda: eos_table.pressure(rho, e))
    assert np.all(out > 0)


def _face_states(n=20000):
    rng = np.random.default_rng(3)
    rho = rng.uniform(0.1, 2.0, n)
    u = rng.uniform(-1500.0, 1500.0, n)
    p = rng.uniform(1e3, 1e6, n)
    e = p / (0.4 * rho)
    U = np.stack([rho, rho * u, rho * (e + 0.5 * u**2)], axis=-1)
    return U[:-1], U[1:]


def test_bench_flux_hlle(benchmark):
    UL, UR = _face_states()
    eos = IdealGasEOS(1.4)
    F = benchmark(hlle_flux, UL, UR, eos)
    assert np.all(np.isfinite(F))


def test_bench_flux_steger_warming(benchmark):
    UL, UR = _face_states()
    F = benchmark(steger_warming_flux, UL, UR, 1.4)
    assert np.all(np.isfinite(F))


def test_bench_flux_van_leer(benchmark):
    UL, UR = _face_states()
    F = benchmark(van_leer_flux, UL, UR, 1.4)
    assert np.all(np.isfinite(F))


def test_bench_euler2d_residual(benchmark):
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.euler2d import AxisymmetricEulerSolver

    body = Hemisphere(1.0)
    grid = blunt_body_grid(body, n_s=41, n_normal=61)
    s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
    s.set_freestream(0.01, 2400.0, 0.01 * 287.0 * 220.0)
    R = benchmark(s.residual, s.U)
    assert R.shape == s.U.shape


def test_bench_ns2d_residual(benchmark):
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.ns2d import AxisymmetricNSSolver

    body = Hemisphere(0.1)
    grid = blunt_body_grid(body, n_s=31, n_normal=51)
    s = AxisymmetricNSSolver(grid, IdealGasEOS(1.4), T_wall=300.0)
    s.set_freestream(5e-4, 1800.0, 5e-4 * 287.0 * 220.0)
    R = benchmark(s.residual, s.U)
    assert R.shape == s.U.shape


def test_bench_kinetics_wdot(benchmark):
    from repro.thermo.kinetics import park_air_mechanism
    mech = park_air_mechanism("air11")
    rng = np.random.default_rng(5)
    y = rng.random((3000, 11))
    y /= y.sum(axis=1, keepdims=True)
    rho = np.full(3000, 0.01)
    T = np.linspace(2000.0, 12000.0, 3000)
    w = benchmark(mech.wdot, rho, T, y)
    assert w.shape == (3000, 11)


# ---------------------------------------------------------------------------
# BENCH_kernels.json trajectory (kernel_bench fixture, plugin-free)
# ---------------------------------------------------------------------------

def test_bench_kernel_gibbs_equilibrium(kernel_bench, air_gas):
    """Gibbs equilibrium solve: batched composition_rho_T."""
    n = 512
    rho = np.full(n, 0.01)
    T = np.linspace(500.0, 12000.0, n)
    y = kernel_bench(air_gas.composition_rho_T, rho, T,
                     label="gibbs_equilibrium", meta={"states": n})
    assert y.shape == (n, 11)


def test_bench_kernel_kinetics_source(kernel_bench):
    """Finite-rate source terms: park_air_mechanism.wdot."""
    from repro.thermo.kinetics import park_air_mechanism
    mech = park_air_mechanism("air11")
    rng = np.random.default_rng(5)
    n = 3000
    y = rng.random((n, 11))
    y /= y.sum(axis=1, keepdims=True)
    rho = np.full(n, 0.01)
    T = np.linspace(2000.0, 12000.0, n)
    w = kernel_bench(mech.wdot, rho, T, y,
                     label="kinetics_source", meta={"cells": n})
    assert w.shape == (n, 11)


def test_bench_kernel_muscl_flux_sweep(kernel_bench):
    """One MUSCL reconstruction + HLLE flux pass over a 1-D line."""
    from repro.numerics.muscl import muscl_interface_states
    UL, UR = _face_states(20000)
    eos = IdealGasEOS(1.4)
    W = np.concatenate([UL, UR[-1:]], axis=0)

    def sweep():
        WL, WR = muscl_interface_states(W, axis=0)
        return hlle_flux(WL, WR, eos)

    F = kernel_bench(sweep, label="muscl_flux_sweep",
                     meta={"faces": W.shape[0] - 1})
    assert np.all(np.isfinite(F))


def test_bench_kernel_tangent_slab(kernel_bench):
    """Tangent-slab radiative wall flux over a synthetic shock layer."""
    from repro.radiation.tangent_slab import tangent_slab_flux
    ny, nw = 64, 256
    y = np.linspace(0.0, 0.05, ny)
    T = np.linspace(2000.0, 11000.0, ny)
    lam = np.linspace(2e-7, 1.2e-6, nw)
    j = (1e9 * np.exp(-((lam[None, :] - 6e-7) / 2e-7) ** 2)
         * (T[:, None] / 1e4) ** 4)
    q, q_lam = kernel_bench(tangent_slab_flux, y, j, T, lam,
                            label="tangent_slab",
                            meta={"layers": ny, "wavelengths": nw})
    assert np.isfinite(q)
    assert q_lam.shape == (nw,)


def test_bench_kernel_nasa7_eval(kernel_bench):
    """NASA-7 cp/h/g0 evaluation over a temperature batch, all species."""
    from repro.thermo.nasa7 import fit_nasa7
    from repro.thermo.statmech import ThermoSet
    db = species_set("air11")
    polys = [fit_nasa7(sp) for sp in ThermoSet(db).each]
    T = np.linspace(300.0, 5800.0, 4000)

    def eval_all():
        return np.stack([p.cp(T) + p.h(T) + p.g0(T) for p in polys],
                        axis=-1)

    out = kernel_bench(eval_all, label="nasa7_eval",
                       meta={"species": len(polys), "T_points": T.size})
    assert out.shape == (T.size, len(polys))


def test_bench_kernel_species_interp(kernel_bench, kernel_records):
    """Species-profile interpolation: per-j listcomp vs interp_columns.

    The vectorized form is what `solvers/vsl.py` and
    `solvers/shock_relaxation.py` now use (PERF002 fix); the recorded
    ``speedup`` is the measured loop/vectorized ratio.
    """
    from repro.numerics.interp import interp_columns
    rng = np.random.default_rng(11)
    nx, ns, nq = 400, 11, 160
    x = np.linspace(0.0, 1.0, nx)
    Y = rng.normal(size=(nx, ns))
    xq = np.linspace(-0.05, 1.05, nq)

    def loop():
        return np.stack([np.interp(xq, x, Y[:, j]) for j in range(ns)],
                        axis=-1)

    ref = kernel_bench(loop, label="species_interp_loop",
                       meta={"points": nq, "species": ns})
    out = kernel_bench(interp_columns, xq, x, Y,
                       label="species_interp_vectorized",
                       meta={"points": nq, "species": ns})
    assert np.allclose(out, ref, atol=1e-14)

    lo = kernel_records["species_interp_loop"]["median_s"]
    vec = kernel_records["species_interp_vectorized"]["median_s"]
    kernel_records["species_interp_vectorized"]["speedup_vs_loop"] = (
        round(lo / vec, 2))
