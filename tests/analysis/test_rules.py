"""Positive + negative cases for every catlint rule.

Violating code lives in string literals so linting the test tree itself
stays clean; each rule gets at least one source that must trigger it and
one near-miss that must not.
"""

import textwrap

from repro.analysis.engine import lint_source

LIB = "src/repro/heating/example.py"     # library, not a hot path
HOT = "src/repro/solvers/example.py"     # dtype-discipline subtree
TEST = "tests/test_example.py"           # exempt from guarded-math rules


def codes(source, path=LIB):
    return [f.rule for f in lint_source(textwrap.dedent(source), path=path)]


class TestUnguardedLogCAT001:
    def test_positive(self):
        src = """
        import numpy as np
        def f(x):
            return np.log(x)
        """
        assert "CAT001" in codes(src)

    def test_negative_clamped(self):
        src = """
        import numpy as np
        def f(x):
            return np.log(np.maximum(x, 1e-300))
        """
        assert "CAT001" not in codes(src)

    def test_negative_resolved_local_name(self):
        # the scope resolver sees every assignment to y is guarded
        src = """
        import numpy as np
        def f(x):
            y = np.abs(x) + 1e-12
            return np.log(y)
        """
        assert "CAT001" not in codes(src)

    def test_negative_positive_constant_import(self):
        src = """
        import numpy as np
        from repro.constants import K_BOLTZMANN
        def f(T):
            return np.log(K_BOLTZMANN * np.maximum(T, 1.0))
        """
        assert "CAT001" not in codes(src)

    def test_exempt_in_tests(self):
        src = """
        import numpy as np
        def f(x):
            return np.log(x)
        """
        assert codes(src, path=TEST) == []


class TestUnguardedSqrtCAT002:
    def test_positive(self):
        src = """
        import numpy as np
        def f(e):
            return np.sqrt(e)
        """
        assert "CAT002" in codes(src)

    def test_negative_abs(self):
        src = """
        import numpy as np
        def f(e):
            return np.sqrt(np.abs(e))
        """
        assert "CAT002" not in codes(src)

    def test_negative_square(self):
        src = """
        import numpy as np
        def f(u, v):
            return np.sqrt(u * u + v * v)
        """
        assert "CAT002" not in codes(src)


class TestDivByDifferenceCAT003:
    def test_positive(self):
        src = """
        def f(a, b):
            return 1.0 / (a - b)
        """
        assert "CAT003" in codes(src)

    def test_negative_epsilon(self):
        src = """
        def f(a, b):
            return 1.0 / (a - b + 1e-12)
        """
        assert "CAT003" not in codes(src)

    def test_negative_clamped(self):
        src = """
        import numpy as np
        def f(a, b):
            return 1.0 / np.maximum(a - b, 1e-12)
        """
        assert "CAT003" not in codes(src)


class TestUnguardedExpCAT004:
    def test_positive_hot_path(self):
        src = """
        import numpy as np
        def rate(theta, T):
            return np.exp(theta / T)
        """
        assert "CAT004" in codes(src, path=HOT)

    def test_negative_outside_hot_path(self):
        src = """
        import numpy as np
        def rate(theta, T):
            return np.exp(theta / T)
        """
        assert "CAT004" not in codes(src, path=LIB)

    def test_negative_clipped(self):
        src = """
        import numpy as np
        def rate(theta, T):
            return np.exp(np.clip(theta / T, -460.0, 460.0))
        """
        assert "CAT004" not in codes(src, path=HOT)

    def test_negative_safe_exp(self):
        src = """
        from repro.numerics.safety import safe_exp
        def rate(theta, T):
            return safe_exp(theta / T)
        """
        assert "CAT004" not in codes(src, path=HOT)

    def test_negative_negated_positive(self):
        src = """
        import numpy as np
        def rate(theta, T):
            return np.exp(-np.abs(theta) / np.maximum(T, 1.0))
        """
        assert "CAT004" not in codes(src, path=HOT)

    def test_negative_negative_coefficient(self):
        src = """
        import numpy as np
        def omega(t_star):
            t = np.maximum(t_star, 1e-3)
            return 0.193 * np.exp(-0.47635 * t)
        """
        assert "CAT004" not in codes(src, path=HOT)

    def test_negative_clipped_name(self):
        src = """
        import numpy as np
        def cv(th, T):
            x = np.clip(th / T, 1e-12, 250.0)
            return np.exp(x)
        """
        assert "CAT004" not in codes(src, path=HOT)

    def test_positive_unclipped_name(self):
        src = """
        import numpy as np
        def cv(th, T):
            x = th / T
            return np.exp(x)
        """
        assert "CAT004" in codes(src, path=HOT)


class TestFloatEqualityCAT010:
    def test_positive(self):
        src = """
        def f(x):
            return x == 0.5
        """
        assert "CAT010" in codes(src)

    def test_positive_noteq(self):
        src = """
        def f(x):
            return x != 1.5
        """
        assert "CAT010" in codes(src)

    def test_negative_int_literal(self):
        src = """
        def f(x):
            return x == 5
        """
        assert "CAT010" not in codes(src)

    def test_negative_ordering(self):
        src = """
        def f(x):
            return x < 0.5
        """
        assert "CAT010" not in codes(src)

    def test_applies_in_tests_too(self):
        src = """
        def f(x):
            return x == 0.5
        """
        assert "CAT010" in codes(src, path=TEST)


class TestMutableDefaultCAT011:
    def test_positive_dict(self):
        src = """
        def f(x, cache={}):
            return cache
        """
        assert "CAT011" in codes(src)

    def test_positive_np_zeros(self):
        src = """
        import numpy as np
        def f(x, buf=np.zeros(3)):
            return buf
        """
        assert "CAT011" in codes(src)

    def test_negative_none(self):
        src = """
        def f(x, cache=None):
            return cache if cache is not None else {}
        """
        assert "CAT011" not in codes(src)


class TestOverbroadExceptCAT012:
    def test_positive_bare(self):
        src = """
        def f(g):
            try:
                return g()
            except:
                return None
        """
        found = lint_source(textwrap.dedent(src), path=LIB)
        cat12 = [f for f in found if f.rule == "CAT012"]
        assert cat12 and cat12[0].severity == "error"

    def test_positive_broad_exception_is_warning(self):
        src = """
        def f(g):
            try:
                return g()
            except Exception:
                return None
        """
        found = lint_source(textwrap.dedent(src), path=LIB)
        cat12 = [f for f in found if f.rule == "CAT012"]
        assert cat12 and cat12[0].severity == "warning"

    def test_negative_reraise(self):
        src = """
        def f(g):
            try:
                return g()
            except Exception:
                raise
        """
        assert "CAT012" not in codes(src)

    def test_negative_concrete(self):
        src = """
        def f(g):
            try:
                return g()
            except ValueError:
                return None
        """
        assert "CAT012" not in codes(src)


class TestFloat32DowncastCAT013:
    def test_positive_attribute(self):
        src = """
        import numpy as np
        def f(x):
            return np.asarray(x, dtype=np.float32)
        """
        assert "CAT013" in codes(src)

    def test_positive_string_dtype(self):
        src = """
        import numpy as np
        def f(x):
            return x.astype("float32")
        """
        assert "CAT013" in codes(src)

    def test_negative_float64(self):
        src = """
        import numpy as np
        def f(x):
            return np.asarray(x, dtype=np.float64)
        """
        assert "CAT013" not in codes(src)

    def test_negative_plain_string(self):
        # "float32" outside a dtype/astype position is just a string
        src = """
        def f():
            return "float32"
        """
        assert "CAT013" not in codes(src)


class TestAssertInLibraryCAT015:
    def test_positive(self):
        src = """
        def f(x):
            assert x > 0
            return x
        """
        assert "CAT015" in codes(src)

    def test_exempt_in_tests(self):
        src = """
        def f(x):
            assert x > 0
            return x
        """
        assert "CAT015" not in codes(src, path=TEST)


class TestEmptyUninitializedCAT020:
    def test_positive_never_filled(self):
        src = """
        import numpy as np
        def f(n):
            a = np.empty(n)
            return a
        """
        assert "CAT020" in codes(src)

    def test_negative_element_store(self):
        src = """
        import numpy as np
        def f(n):
            a = np.empty(n)
            a[:] = 0.0
            return a
        """
        assert "CAT020" not in codes(src)

    def test_negative_out_kwarg(self):
        src = """
        import numpy as np
        def f(x):
            a = np.empty(x.shape)
            np.add(x, 1.0, out=a)
            return a
        """
        assert "CAT020" not in codes(src)


class TestMissingDtypeCAT021:
    def test_positive_hot_path(self):
        src = """
        import numpy as np
        def f(n):
            a = np.zeros(n)
            a[:] = 1.0
            return a
        """
        assert "CAT021" in codes(src, path=HOT)

    def test_negative_with_dtype(self):
        src = """
        import numpy as np
        def f(n):
            a = np.zeros(n, dtype=np.float64)
            a[:] = 1.0
            return a
        """
        assert "CAT021" not in codes(src, path=HOT)

    def test_negative_off_hot_path(self):
        src = """
        import numpy as np
        def f(n):
            a = np.zeros(n)
            a[:] = 1.0
            return a
        """
        assert "CAT021" not in codes(src, path=LIB)


class TestSetOrderReductionCAT030:
    def test_positive_for_loop(self):
        src = """
        def f():
            out = 0.0
            for x in {1.0, 2.0, 3.0}:
                out += x
            return out
        """
        assert "CAT030" in codes(src)

    def test_positive_sum(self):
        src = """
        def f(names):
            return sum(set(names))
        """
        assert "CAT030" in codes(src)

    def test_negative_sorted(self):
        src = """
        def f(names):
            out = 0.0
            for x in sorted(set(names)):
                out += x
            return out
        """
        assert "CAT030" not in codes(src)


class TestEngineBasics:
    def test_syntax_error_reported_as_cat999(self):
        found = lint_source("def f(:\n", path=LIB)
        assert [f.rule for f in found] == ["CAT999"]
        assert found[0].severity == "error"

    def test_select_restricts_rules(self):
        src = textwrap.dedent("""
        import numpy as np
        def f(x):
            assert x > 0
            return np.log(x)
        """)
        only_log = lint_source(src, path=LIB, select=["CAT001"])
        assert {f.rule for f in only_log} == {"CAT001"}

    def test_findings_sorted_and_located(self):
        src = textwrap.dedent("""
        import numpy as np
        def f(x):
            return np.log(x)
        """)
        found = lint_source(src, path=LIB)
        assert found[0].path == LIB
        assert found[0].line == 4
        assert "np.log" in found[0].source_line

    def test_rule_catalog_has_ten_plus_rules(self):
        from repro.analysis.engine import RULES
        assert len(RULES) >= 10
        assert all(code.startswith(("CAT", "PERF")) for code in RULES)
        assert sum(1 for code in RULES if code.startswith("CAT")) >= 10
