"""Halo (ghost-row) exchange.

Serial reference implementation over a list of per-block arrays; the
shared-memory pool performs the equivalent copies through the shared
global array.  The buffer-in/buffer-out structure intentionally mirrors
the ``comm.Send(buf) / comm.Recv(buf)`` idiom of MPI codes so the
decomposition logic would port to mpi4py unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError
from repro.parallel.decomposition import Block1D

__all__ = ["with_halo", "exchange_halos_inplace", "strip_halo"]


def with_halo(global_array: np.ndarray, block: Block1D) -> np.ndarray:
    """Copy a block's padded (halo-included) local array out of the
    global array."""
    return np.array(global_array[block.padded_lo:block.padded_hi])


def strip_halo(local: np.ndarray, block: Block1D) -> np.ndarray:
    """Return the owned rows of a padded local array (a view)."""
    return local[block.owned_slice_in_padded()]


def exchange_halos_inplace(locals_: list[np.ndarray],
                           blocks: list[Block1D]) -> None:
    """Fill every block's ghost rows from its neighbours' owned rows."""
    if len(locals_) != len(blocks):
        raise InputError("one local array per block required")
    h = blocks[0].halo
    for i, (arr, blk) in enumerate(zip(locals_, blocks)):
        own = blk.owned_slice_in_padded()
        if blk.has_left:
            left = locals_[i - 1]
            left_own = blocks[i - 1].owned_slice_in_padded()
            arr[:h] = left[left_own][-h:]
        if blk.has_right:
            right = locals_[i + 1]
            right_own = blocks[i + 1].owned_slice_in_padded()
            arr[own.stop:own.stop + h] = right[right_own][:h]
