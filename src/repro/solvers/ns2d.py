"""Axisymmetric Navier–Stokes solver (paper's NS "approach #2").

Extends the shock-capturing Euler solver with laminar viscous fluxes:
Green–Gauss cell gradients, face-averaged stresses with a directional
correction against odd-even decoupling, Fourier heat conduction, and
no-slip isothermal/adiabatic walls.  Molecular viscosity follows
Sutherland's law in both gas modes (for equilibrium air this is the
documented engineering approximation; the full multicomponent model lives
in :mod:`repro.transport` and feeds the BL/VSL solvers where diffusion
matters most).

The axisymmetric viscous hoop terms are neglected (thin-layer-class
approximation, standard for blunt-body heating at these Reynolds numbers);
the energy-balance consequences are quantified against the boundary-layer
solver in the validation tests.

Resilience: the solver inherits the Euler solver's supervised marching —
``run(resilience=..., faults=...)`` checkpoints the state, guards every
step and rolls back with CFL backoff on :class:`StabilityError` (see
:mod:`repro.resilience`); the viscous timestep limit shrinks with the
convective one under backoff, so the retry ladder covers both stiffness
sources.
"""

from __future__ import annotations

import numpy as np

from repro.core.gas import GasEOS
from repro.errors import InputError
from repro.grid.structured import StructuredGrid2D
from repro.numerics.fluxes import primitives
from repro.solvers.euler2d import AxisymmetricEulerSolver
from repro.transport.viscosity import sutherland_viscosity

__all__ = ["AxisymmetricNSSolver"]


class AxisymmetricNSSolver(AxisymmetricEulerSolver):
    """No-slip viscous blunt-body solver.

    Parameters
    ----------
    grid, eos, order, limiter:
        As for the Euler solver.
    T_wall:
        Isothermal wall temperature [K]; ``None`` for an adiabatic wall.
    prandtl:
        Constant Prandtl number closing the conductivity.
    """

    def __init__(self, grid: StructuredGrid2D, eos: GasEOS | None = None,
                 *, T_wall: float | None = 300.0, prandtl: float = 0.72,
                 order: int = 2, limiter=None):
        kwargs = {"order": order}
        if limiter is not None:
            kwargs["limiter"] = limiter
        super().__init__(grid, eos, **kwargs)
        self.T_wall = T_wall
        self.prandtl = prandtl
        # node-difference vectors between adjacent cell centroids (for the
        # directional gradient correction)
        self._dx_i = np.diff(grid.xc, axis=0)
        self._dy_i = np.diff(grid.yc, axis=0)
        self._dx_j = np.diff(grid.xc, axis=1)
        self._dy_j = np.diff(grid.yc, axis=1)

    # ------------------------------------------------------------------
    # persistence protocol (durable checkpoints)
    # ------------------------------------------------------------------

    def persist_config(self):
        cfg = super().persist_config()
        cfg["T_wall"] = (None if self.T_wall is None
                         else float(self.T_wall))
        cfg["prandtl"] = float(self.prandtl)
        return cfg

    @classmethod
    def from_persist(cls, config, arrays):
        from repro.core.gas import eos_from_spec
        from repro.grid.structured import StructuredGrid2D
        from repro.numerics import limiters as _limiters
        grid = StructuredGrid2D(arrays["grid_x"], arrays["grid_y"])
        return cls(grid, eos_from_spec(config["eos"]),
                   T_wall=config["T_wall"], prandtl=config["prandtl"],
                   order=config["order"],
                   limiter=getattr(_limiters, config["limiter"]))

    # ------------------------------------------------------------------
    # wall ghost states: no-slip + thermal condition
    # ------------------------------------------------------------------

    def _pad_j(self, U):
        g = super()._pad_j(U)
        # overwrite the wall ghosts: reflect velocity fully (no slip)
        for k, src in ((1, 0), (0, 1)):
            Uw = U[:, src].copy()
            rho = Uw[:, 0]
            Uw[:, 1] = -Uw[:, 1]
            Uw[:, 2] = -Uw[:, 2]
            if self.T_wall is not None:
                # set ghost internal energy so the face T averages to Tw
                ke = 0.5 * (Uw[:, 1] ** 2 + Uw[:, 2] ** 2) / rho
                e_in = U[:, src, 3] / U[:, src, 0] \
                    - 0.5 * (U[:, src, 1] ** 2 + U[:, src, 2] ** 2) \
                    / U[:, src, 0] ** 2
                T_in = self.eos.temperature(U[:, src, 0], e_in)
                T_ghost = np.maximum(2.0 * self.T_wall - T_in,
                                     0.1 * self.T_wall)
                e_ghost = self._e_of_T(rho, T_ghost, e_in, T_in)
                Uw[:, 3] = rho * (e_ghost + ke)
            g[:, k] = Uw
        return g

    def _e_of_T(self, rho, T_target, e_ref, T_ref):
        """Internal energy at T_target, linearised about a reference."""
        # cv estimate from the EOS via finite difference
        de = np.maximum(0.01 * e_ref, 10.0)
        cv = de / np.maximum(
            self.eos.temperature(rho, e_ref + de) - T_ref, 1e-3)
        return np.maximum(e_ref + cv * (T_target - T_ref), 1e3)

    # ------------------------------------------------------------------
    # viscous fluxes
    # ------------------------------------------------------------------

    def _cell_gradients(self, phi):
        """Green-Gauss gradient of a cell field (ni, nj) -> (ni, nj, 2).

        Boundary faces use the ghost-free one-sided closure (copy cell
        value), which is first order at boundaries and second elsewhere.
        """
        g = self.grid
        # face values by averaging (interior), cell value at boundaries
        f_i = np.empty((g.ni + 1, g.nj), dtype=np.float64)
        f_i[1:-1] = 0.5 * (phi[1:] + phi[:-1])
        f_i[0] = phi[0]
        f_i[-1] = phi[-1]
        f_j = np.empty((g.ni, g.nj + 1), dtype=np.float64)
        f_j[:, 1:-1] = 0.5 * (phi[:, 1:] + phi[:, :-1])
        f_j[:, 0] = phi[:, 0]
        f_j[:, -1] = phi[:, -1]
        flux = (f_i[1:, :, None] * g.n_i[1:] - f_i[:-1, :, None]
                * g.n_i[:-1]
                + f_j[:, 1:, None] * g.n_j[:, 1:] - f_j[:, :-1, None]
                * g.n_j[:, :-1])
        return flux / g.area[..., None]

    def _viscous_residual(self, U):
        """Viscous contribution to dU/dt (per-radian axisymmetric FV)."""
        g = self.grid
        w = primitives(U, self.eos)
        u, v = w["vel"]
        T = self.eos.temperature(w["rho"], w["e"])
        mu = sutherland_viscosity(T)
        # conductivity from constant Prandtl and a local cp estimate
        gamma = (self.eos.gamma_eff(w["rho"], w["e"])
                 if hasattr(self.eos, "gamma_eff") else 1.4)
        cp = gamma / np.maximum(gamma - 1.0, 1e-3) * w["p"] \
            / (w["rho"] * T)
        k = mu * cp / self.prandtl
        du = self._cell_gradients(u)
        dv = self._cell_gradients(v)
        dT = self._cell_gradients(T)

        def face_avg_i(q):
            out = np.empty((g.ni + 1,) + q.shape[1:], dtype=np.float64)
            out[1:-1] = 0.5 * (q[1:] + q[:-1])
            out[0] = q[0]
            out[-1] = q[-1]
            return out

        def face_avg_j(q):
            out = np.empty((q.shape[0], g.nj + 1) + q.shape[2:], dtype=np.float64)
            out[:, 1:-1] = 0.5 * (q[:, 1:] + q[:, :-1])
            out[:, 0] = q[:, 0]
            out[:, -1] = q[:, -1]
            return out

        def visc_face_flux(mu_f, k_f, du_f, dv_f, dT_f, u_f, v_f, n_area):
            """Viscous flux vector through faces with area-scaled normals."""
            nx, ny = n_area[..., 0], n_area[..., 1]
            div = du_f[..., 0] + dv_f[..., 1]
            txx = mu_f * (2.0 * du_f[..., 0] - 2.0 / 3.0 * div)
            tyy = mu_f * (2.0 * dv_f[..., 1] - 2.0 / 3.0 * div)
            txy = mu_f * (du_f[..., 1] + dv_f[..., 0])
            Fv = np.zeros(nx.shape + (4,), dtype=np.float64)
            Fv[..., 1] = txx * nx + txy * ny
            Fv[..., 2] = txy * nx + tyy * ny
            Fv[..., 3] = ((txx * u_f + txy * v_f + k_f * dT_f[..., 0]) * nx
                          + (txy * u_f + tyy * v_f
                             + k_f * dT_f[..., 1]) * ny)
            return Fv

        # directional correction for j-face gradients (wall-normal
        # resolution is what heating depends on)
        def corrected_j(phi, dphi_f):
            d = np.stack([self._dx_j, self._dy_j], axis=-1)
            dist2 = np.maximum(np.sum(d * d, axis=-1), 1e-300)
            ddir = (phi[:, 1:] - phi[:, :-1])
            corr = (ddir - np.sum(dphi_f[:, 1:-1] * d, axis=-1)) / dist2
            out = dphi_f.copy()
            out[:, 1:-1] += corr[..., None] * d
            return out

        # i faces (radius-weighted areas)
        n_i, n_j = g.axisymmetric_face_metrics()
        Fv_i = visc_face_flux(face_avg_i(mu), face_avg_i(k),
                              face_avg_i(du), face_avg_i(dv),
                              face_avg_i(dT), face_avg_i(u),
                              face_avg_i(v), n_i)
        dT_jf = corrected_j(T, face_avg_j(dT))
        du_jf = corrected_j(u, face_avg_j(du))
        dv_jf = corrected_j(v, face_avg_j(dv))
        u_jf = face_avg_j(u)
        v_jf = face_avg_j(v)
        mu_jf = face_avg_j(mu)
        k_jf = face_avg_j(k)
        # wall faces: no-slip velocity and wall temperature gradient
        u_jf[:, 0] = 0.0
        v_jf[:, 0] = 0.0
        Fv_j = visc_face_flux(mu_jf, k_jf, du_jf, dv_jf, dT_jf,
                              u_jf, v_jf, n_j)
        div = (Fv_i[1:] - Fv_i[:-1]) + (Fv_j[:, 1:] - Fv_j[:, :-1])
        return div / self.vol[..., None]

    def residual(self, U):
        return super().residual(U) + self._viscous_residual(U)

    def local_timestep(self, cfl):
        """Convective + viscous stability limit."""
        dt_c = super().local_timestep(cfl)
        w = primitives(self.U, self.eos)
        T = self.eos.temperature(w["rho"], w["e"])
        mu = sutherland_viscosity(T)
        h = self.grid.min_cell_size()
        dt_v = 0.25 * w["rho"] * h * h / np.maximum(mu, 1e-300)
        return np.minimum(dt_c, cfl * dt_v)

    # ------------------------------------------------------------------
    # wall diagnostics
    # ------------------------------------------------------------------

    def wall_heat_flux(self):
        """Wall heat flux q_w = k dT/dn [W/m^2] along the body (positive
        INTO the wall)."""
        if self.T_wall is None:
            raise InputError("adiabatic wall has no imposed temperature")
        w = primitives(self.U, self.eos)
        T1 = self.eos.temperature(w["rho"][:, 0], w["e"][:, 0])
        # distance from wall face midpoint to first centroid
        d = np.hypot(self.grid.xc[:, 0] - self.grid.xm_j[:, 0],
                     self.grid.yc[:, 0] - self.grid.ym_j[:, 0])
        T_face = 0.5 * (T1 + self.T_wall)
        mu_w = sutherland_viscosity(T_face)
        gamma = (self.eos.gamma_eff(w["rho"][:, 0], w["e"][:, 0])
                 if hasattr(self.eos, "gamma_eff") else 1.4)
        cp = gamma / np.maximum(gamma - 1.0, 1e-3) * w["p"][:, 0] \
            / (w["rho"][:, 0] * T1)
        k_w = mu_w * cp / self.prandtl
        return k_w * (T1 - self.T_wall) / d

    def wall_shear(self):
        """Wall shear stress magnitude [Pa] along the body."""
        w = primitives(self.U, self.eos)
        speed = np.hypot(w["vel"][0][:, 0], w["vel"][1][:, 0])
        d = np.hypot(self.grid.xc[:, 0] - self.grid.xm_j[:, 0],
                     self.grid.yc[:, 0] - self.grid.ym_j[:, 0])
        T1 = self.eos.temperature(w["rho"][:, 0], w["e"][:, 0])
        T_face = (0.5 * (T1 + self.T_wall) if self.T_wall is not None
                  else T1)
        return sutherland_viscosity(T_face) * speed / d
