"""Runtime conservation watchdog: per-step physics auditing.

A marching solver can go wrong long before :func:`check_state` trips —
mass leaking through a buggy boundary, species fractions drifting off the
simplex, entropy *decreasing* across a captured shock.  The
:class:`ConservationWatchdog` audits a solver after every supervised step
and records structured :class:`WatchdogEvent` s:

* **conservation budgets** — global mass / energy / per-element totals
  tracked over a sliding step window; relative drift beyond tolerance on
  a closed domain is flagged (open domains exchange mass/energy with the
  boundaries, so budget checks arm only when the solver declares
  ``closed_domain = True``),
* **species bounds** — raw mass fractions outside ``[0, 1]`` and
  ``sum(Y)`` drifting from 1,
* **entropy decrease** — the total entropy functional must not decrease
  (shocks *produce* entropy); a drop flags an unphysical update,
* **invalid-state localization** — a :class:`~repro.errors.StabilityError`
  from :func:`check_state` is converted into an event carrying the first
  offending cell, component, value and a local state-neighbourhood
  snapshot.

Events are *observations*, not errors: by default they are recorded and
surfaced through :class:`~repro.resilience.report.FailureReport` (and on
the solver as ``watchdog_events`` after a supervised run).  A policy can
escalate chosen kinds into :class:`~repro.errors.StabilityError` so they
enter the retry/degradation ladder like any other instability.

Solver hooks (all optional, duck-typed):

* ``conservation_totals() -> dict[str, float]`` — global invariants
  (``"mass"``, ``"energy"``, ``"element:N"``...),
* ``closed_domain`` (bool) — budgets only audit closed domains,
* ``total_entropy() -> float | None`` — a global entropy functional,
* ``species_mass_fractions() -> ndarray | None`` — *raw* (unclipped)
  mass fractions with the trailing species axis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StabilityError

__all__ = ["WatchdogEvent", "WatchdogPolicy", "ConservationWatchdog",
           "as_watchdog", "snapshot_neighborhood"]

#: Event kinds the watchdog can emit.
EVENT_KINDS = ("mass_budget", "energy_budget", "element_budget",
               "species_bounds", "species_sum", "entropy_decrease",
               "state_invalid")


@dataclass
class WatchdogEvent:
    """One structured watchdog observation.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    step:
        Marching step at which the condition was observed.
    message:
        Human-readable one-liner.
    cell:
        First-offending cell index tuple, when the condition localizes.
    component:
        Offending state component name, when the condition localizes.
    value:
        Offending value (drift fraction for budgets, state value for
        localized conditions).
    data:
        Extra structured payload — window endpoints for budgets, the
        local state-neighbourhood snapshot for invalid states.
    """

    kind: str
    step: int
    message: str
    cell: tuple | None = None
    component: str | None = None
    value: float | None = None
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "step": self.step,
                "message": self.message,
                "cell": None if self.cell is None else list(self.cell),
                "component": self.component, "value": self.value,
                "data": dict(self.data)}


@dataclass
class WatchdogPolicy:
    """Audit tolerances and escalation rules.

    Attributes
    ----------
    window:
        Sliding-window length [steps] for the conservation budgets: the
        newest totals are compared against the totals ``window`` steps
        back.
    warmup:
        Steps skipped before budget auditing starts (impulsive-start
        transients).
    mass_tol, energy_tol, element_tol:
        Relative drift tolerances over the window; ``None`` disables the
        corresponding budget.
    y_bound_tol:
        Slack outside ``[0, 1]`` tolerated for raw mass fractions.
    y_sum_tol:
        Tolerated ``|sum(Y) - 1|`` drift.
    entropy_tol:
        Tolerated *relative* decrease of the total entropy functional per
        step; ``None`` disables the entropy audit.
    raise_on:
        Event kinds escalated to :class:`~repro.errors.StabilityError`
        (entering the supervisor's retry/degradation ladder).
    max_events:
        Recording cap — the audit stops appending (but keeps counting in
        ``n_suppressed``) once reached, so a persistent drift cannot grow
        an unbounded event list.
    """

    window: int = 10
    warmup: int = 2
    mass_tol: float | None = 1e-6
    energy_tol: float | None = 1e-6
    element_tol: float | None = 1e-6
    y_bound_tol: float = 1e-9
    y_sum_tol: float = 1e-6
    entropy_tol: float | None = 1e-8
    raise_on: tuple = ()
    max_events: int = 200


def snapshot_neighborhood(U, cell, halo: int = 1) -> dict:
    """Local state patch around ``cell`` (inclusive ``halo`` in every
    grid direction), JSON-able, for post-mortem triage."""
    U = np.asarray(U)
    cell = tuple(int(c) for c in cell)
    grid_idx = cell[:-1] if len(cell) == U.ndim else cell
    sl = tuple(slice(max(0, c - halo), c + halo + 1) for c in grid_idx)
    return {"cell": list(cell),
            "origin": [int(s.start) for s in sl],
            "patch": np.asarray(U[sl], dtype=float).tolist()}


class ConservationWatchdog:
    """Per-step runtime auditor feeding :class:`WatchdogEvent` s.

    Use standalone (``wd.audit(solver)`` after each step) or hand it to
    :class:`~repro.resilience.supervisor.RunSupervisor` / any solver's
    ``run(watchdog=...)``, which audits automatically and surfaces the
    events on the solver and in any :class:`FailureReport`.
    """

    def __init__(self, policy: WatchdogPolicy | None = None, *,
                 label: str | None = None):
        self.policy = policy if policy is not None else WatchdogPolicy()
        self.label = label
        self.events: list[WatchdogEvent] = []
        self.n_suppressed = 0
        self._totals = deque(maxlen=max(self.policy.window, 1) + 1)
        self._entropy_prev: tuple[int, float] | None = None

    # ------------------------------------------------------------------

    def reset(self):
        """Clear recorded events and the sliding budget window."""
        self.events.clear()
        self.n_suppressed = 0
        self._totals.clear()
        self._entropy_prev = None
        return self

    def events_as_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    def event_cells(self, *, last_n: int | None = None) -> list[tuple]:
        """Cells named by recent events (degradation quarantine seeds)."""
        evs = self.events if last_n is None else self.events[-last_n:]
        return [e.cell for e in evs if e.cell is not None]

    # ------------------------------------------------------------------

    def _emit(self, event: WatchdogEvent) -> WatchdogEvent:
        if len(self.events) < self.policy.max_events:
            self.events.append(event)
        else:
            self.n_suppressed += 1
        if event.kind in self.policy.raise_on:
            raise StabilityError(
                f"watchdog[{event.kind}]: {event.message}",
                step=event.step, cell=event.cell,
                component=event.component, value=event.value)
        return event

    # -- budget audits --------------------------------------------------

    def _budget_kind(self, name: str) -> tuple[str, float | None]:
        if name == "mass":
            return "mass_budget", self.policy.mass_tol
        if name == "energy":
            return "energy_budget", self.policy.energy_tol
        if name.startswith("element:"):
            return "element_budget", self.policy.element_tol
        return "mass_budget", None          # unknown totals: not audited

    def _audit_budgets(self, solver, step: int, out: list):
        totals_fn = getattr(solver, "conservation_totals", None)
        if totals_fn is None or not getattr(solver, "closed_domain",
                                            False):
            return
        totals = {k: float(v) for k, v in totals_fn().items()}
        self._totals.append((step, totals))
        if step < self.policy.warmup or len(self._totals) < 2:
            return
        old_step, old = self._totals[0]
        for name, new_val in totals.items():
            kind, tol = self._budget_kind(name)
            if tol is None or name not in old:
                continue
            ref = max(abs(old[name]), 1e-300)
            drift = abs(new_val - old[name]) / ref
            if drift > tol:
                out.append(self._emit(WatchdogEvent(
                    kind=kind, step=step, value=drift,
                    component=name,
                    message=(f"{name} drifted {drift:.3e} (rel) over "
                             f"steps {old_step}..{step} "
                             f"({old[name]:.9e} -> {new_val:.9e})"),
                    data={"window": [old_step, step],
                          "old": old[name], "new": new_val})))

    # -- species audits -------------------------------------------------

    def _audit_species(self, solver, step: int, out: list):
        y_fn = getattr(solver, "species_mass_fractions", None)
        if y_fn is None:
            return
        y = y_fn()
        if y is None:
            return
        y = np.asarray(y)
        names = getattr(getattr(solver, "db", None), "names", None)
        tol = self.policy.y_bound_tol
        bad = (y < -tol) | (y > 1.0 + tol)
        if np.any(bad):
            first = tuple(int(i) for i in np.argwhere(bad)[0])
            s = first[-1]
            name = (names[s] if names is not None and s < len(names)
                    else str(s))
            out.append(self._emit(WatchdogEvent(
                kind="species_bounds", step=step, cell=first[:-1],
                component=f"species[{name}]", value=float(y[first]),
                message=(f"mass fraction Y[{name}] = {float(y[first]):.6g}"
                         f" outside [0, 1] at cell {first[:-1]} "
                         f"({int(bad.sum())} offending entr"
                         f"{'y' if bad.sum() == 1 else 'ies'})"))))
        ysum = np.sum(y, axis=-1)
        off = np.abs(ysum - 1.0) > self.policy.y_sum_tol
        if np.any(off):
            first = tuple(int(i) for i in np.argwhere(off)[0])
            out.append(self._emit(WatchdogEvent(
                kind="species_sum", step=step, cell=first,
                component="sum(Y)", value=float(ysum[first]),
                message=(f"sum(Y) = {float(ysum[first]):.9f} at cell "
                         f"{first} ({int(off.sum())} cell(s) beyond "
                         f"{self.policy.y_sum_tol:g})"))))

    # -- entropy audit --------------------------------------------------

    def _audit_entropy(self, solver, step: int, out: list):
        if self.policy.entropy_tol is None:
            return
        s_fn = getattr(solver, "total_entropy", None)
        if s_fn is None:
            return
        s_now = s_fn()
        if s_now is None:
            return
        s_now = float(s_now)
        prev = self._entropy_prev
        self._entropy_prev = (step, s_now)
        if prev is None or step <= self.policy.warmup:
            return
        prev_step, s_prev = prev
        drop = (s_prev - s_now) / max(abs(s_prev), 1e-300)
        if drop > self.policy.entropy_tol:
            out.append(self._emit(WatchdogEvent(
                kind="entropy_decrease", step=step,
                component="total_entropy", value=drop,
                message=(f"total entropy decreased {drop:.3e} (rel) "
                         f"over steps {prev_step}..{step} — shocks "
                         f"must produce entropy"),
                data={"old": s_prev, "new": s_now})))

    # ------------------------------------------------------------------

    def audit(self, solver) -> list[WatchdogEvent]:
        """Run every applicable audit; returns the events of this step."""
        step = int(getattr(solver, "steps", 0) or 0)
        out: list[WatchdogEvent] = []
        self._audit_budgets(solver, step, out)
        self._audit_species(solver, step, out)
        self._audit_entropy(solver, step, out)
        return out

    def record_error(self, err: StabilityError,
                     solver=None) -> WatchdogEvent:
        """Convert a (localized) :class:`StabilityError` into a
        ``state_invalid`` event, with a local state-neighbourhood
        snapshot when the error names a cell."""
        data = {}
        cell = getattr(err, "cell", None)
        U = getattr(solver, "U", None)
        if cell is not None and U is not None:
            try:
                data["snapshot"] = snapshot_neighborhood(U, cell)
            except (IndexError, TypeError):
                pass
        event = WatchdogEvent(
            kind="state_invalid",
            step=int(getattr(err, "step", None)
                     or getattr(solver, "steps", 0) or 0),
            message=str(err), cell=cell,
            component=getattr(err, "component", None),
            value=getattr(err, "value", None), data=data)
        # never escalate here — we are already inside error handling
        if len(self.events) < self.policy.max_events:
            self.events.append(event)
        else:
            self.n_suppressed += 1
        return event


def as_watchdog(spec) -> ConservationWatchdog | None:
    """Normalise a ``watchdog=`` argument: ``None`` | ``True`` (defaults)
    | :class:`WatchdogPolicy` | :class:`ConservationWatchdog`."""
    if spec is None or isinstance(spec, ConservationWatchdog):
        return spec
    if spec is True:
        return ConservationWatchdog()
    if isinstance(spec, WatchdogPolicy):
        return ConservationWatchdog(spec)
    raise TypeError(f"watchdog must be None, True, a WatchdogPolicy or a "
                    f"ConservationWatchdog, not {type(spec).__name__}")
