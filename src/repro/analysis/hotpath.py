"""Hot-path inference: which functions run per-cell/per-step, how deep.

Anchored reachability over the :class:`~repro.analysis.callgraph.CallGraph`:

**Anchors** (depth 0) are the scopes known to sit on the solve path:

* the solver families' entry points — ``run``/``march``/``step``/
  ``solve``/``residual``/``advance`` methods under ``solvers/``;
* every public module-level function under ``numerics/`` (the sweep
  kernels);
* public kernels under ``thermo/``, ``transport/`` and ``radiation/``
  (module functions and methods of public classes);
* everything a ``benchmarks/test_bench_*`` test calls (the benchmark
  suite *defines* what we consider performance-relevant).

**Propagation**: along every call edge, ``depth(callee) >=
depth(caller) + loop_depth(call site)``, taken as a capped maximum to a
fixed point (monotone, so cycles terminate).  A call made from two
nested loops hands its callee two orders of trip-count magnitude.
Nested defs passed as call arguments (``solve_ivp(rhs, ...)``) get one
extra level — the consumer calls them many times per invocation.

**Multiplicity** counts distinct hot call sites reaching a function —
a kernel invoked from eight sweeps matters more than a helper with one
caller.

The index also keeps a sample ``via`` chain (anchor -> ... -> scope),
so a worklist entry can say *which* solver path makes a loop hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.callgraph import (
    CallGraph,
    FunctionNode,
    module_parts,
)

#: Depth cap: beyond this, scoring is saturated anyway and capping
#: guarantees the fixed-point iteration terminates on cycles.
MAX_DEPTH = 8

#: Solver entry-point method names ("the four solvers' step/march/run"
#: plus the one-shot solvers' solve()/residual()).
SOLVER_ENTRY_NAMES = frozenset({
    "run", "march", "step", "solve", "residual", "advance",
    # profile-sampling entry points (called per output station)
    "station",
})

#: Subtrees whose public callables are kernel anchors.
KERNEL_SUBTREES = ("thermo", "transport", "radiation")


def default_anchor(fn: FunctionNode) -> bool:
    """Is this function an entry point of the hot region?"""
    parts = module_parts(fn.path)
    base = parts[-1] if parts else ""
    if fn.parent is not None:         # nested defs are never anchors
        return False
    if "solvers" in parts and fn.name in SOLVER_ENTRY_NAMES:
        return True
    if "numerics" in parts and not fn.name.startswith("_"):
        return True
    if any(p in parts for p in KERNEL_SUBTREES):
        if not fn.name.startswith("_"):
            return True
    if base.startswith("test_bench_") and fn.name.startswith("test_"):
        return True
    return False


@dataclass
class HotInfo:
    """Hotness of one function scope."""

    depth: int                 #: propagated loop depth from the anchors
    multiplicity: int          #: distinct hot call sites reaching it
    via: tuple[str, ...]       #: sample chain "path::qualname" strings
    is_anchor: bool = False


class HotPathIndex:
    """Answers: is (path, qualname) on a hot path, and how hot?"""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.info: dict[tuple[str, str], HotInfo] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, graph: CallGraph,
              anchor: Callable[[FunctionNode], bool] = default_anchor,
              max_depth: int = MAX_DEPTH) -> "HotPathIndex":
        idx = cls(graph)
        pending: list[tuple[str, str]] = []
        for key, fn in graph.nodes.items():
            if anchor(fn):
                idx.info[key] = HotInfo(
                    depth=0, multiplicity=1,
                    via=(f"{key[0]}::{key[1]}",), is_anchor=True)
                pending.append(key)
        # monotone max-propagation to a fixed point (depths only grow,
        # capped, so this terminates on any cycle structure)
        while pending:
            caller_key = pending.pop()
            caller = graph.nodes[caller_key]
            base = idx.info[caller_key]
            for site in caller.calls:
                extra = site.loop_depth
                if site.direct is not None and site.direct in graph.callbacks:
                    extra += 1         # callback: consumer iterates it
                cand = min(base.depth + extra, max_depth)
                for callee_key in graph.resolve(site):
                    if callee_key == caller_key:
                        continue       # direct recursion adds no info
                    cur = idx.info.get(callee_key)
                    if cur is not None and cur.depth >= cand:
                        continue
                    via = base.via
                    if len(via) >= 6:
                        via = via[:3] + ("...",) + via[-2:]
                    idx.info[callee_key] = HotInfo(
                        depth=cand,
                        multiplicity=(cur.multiplicity if cur else 1),
                        via=via + (f"{callee_key[0]}::{callee_key[1]}",),
                        is_anchor=bool(cur and cur.is_anchor))
                    pending.append(callee_key)
        idx._count_multiplicity()
        return idx

    def _count_multiplicity(self) -> None:
        counts: dict[tuple[str, str], set[tuple[str, int]]] = {}
        for caller_key, hot in self.info.items():
            caller = self.graph.nodes.get(caller_key)
            if caller is None:
                continue
            for site in caller.calls:
                for callee_key in self.graph.resolve(site):
                    if callee_key in self.info:
                        counts.setdefault(callee_key, set()).add(
                            (caller_key[0] + "::" + caller_key[1],
                             site.lineno))
        for key, sites in counts.items():
            info = self.info[key]
            info.multiplicity = max(1, len(sites))

    # -- queries ----------------------------------------------------------

    def lookup(self, path: str, qualname: str) -> HotInfo | None:
        return self.info.get((path, qualname))

    def hot_at(self, path: str, lineno: int) -> HotInfo | None:
        """Hot info of the innermost function containing a line."""
        fn = self.graph.function_at(path, lineno)
        while fn is not None:
            hit = self.info.get(fn.key)
            if hit is not None:
                return hit
            fn = (self.graph.nodes.get((path, fn.parent))
                  if fn.parent else None)
        return None

    def hot_functions(self, path: str) -> dict[str, HotInfo]:
        """qualname -> HotInfo for every hot scope in one file."""
        return {q: inf for (p, q), inf in self.info.items() if p == path}


def build_index(paths: Iterable[str],
                anchor: Callable[[FunctionNode], bool] = default_anchor,
                ) -> HotPathIndex:
    """Convenience: parse ``paths`` and build the hot-path index."""
    return HotPathIndex.build(CallGraph.from_paths(paths), anchor=anchor)
