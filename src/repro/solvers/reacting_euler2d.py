"""Axisymmetric Euler solver with finite-rate (nonequilibrium) chemistry.

"A review of the status of CAT clearly shows that one of the biggest
challenges is understanding how to couple nonequilibrium phenomena to
three-dimensional flowfield codes" — this solver is that coupling at the
Gnoffo/McCandless/Li (Refs. 27-28) level for axisymmetric blunt bodies:

* conserved state per cell: ``[rho, rho u, rho v, rho E, rho Y_1..Y_ns]``
  with the energy on the heat-of-formation basis (so chemical reactions
  conserve total energy identically and dissociation shows up as a
  temperature drop),
* upwind flux: HLLE on the bulk variables, species carried by the
  upwinded interface mass flux (consistent: species fluxes sum to the
  mass flux),
* chemistry: operator-split point-implicit sub-step per cell (the
  paper's "loosely coupled ... typically implicit numerical technique"),
* temperature from (e, Y) by batched Newton with the previous field as
  the warm start.

The classic validation (in tests/benchmarks): the nonequilibrium shock
standoff lies *between* the frozen (ideal-gas) and equilibrium limits and
moves toward equilibrium as the density (Damkohler number) rises.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError, StabilityError
from repro.grid.structured import StructuredGrid2D
from repro.numerics.fluxes import (hlle_flux, rotate_from_normal,
                                   rotate_to_normal)
from repro.numerics.implicit import point_implicit_species_update
from repro.numerics.limiters import minmod
from repro.numerics.muscl import muscl_interface_states
from repro.numerics.time_integration import component_name
from repro.solvers.degradable import QuarantineMixin
from repro.thermo.kinetics import ReactionMechanism, park_air_mechanism
from repro.thermo.mixture import MixtureThermo
from repro.thermo.species import SpeciesDB, species_set

__all__ = ["ReactingEulerSolver"]


class _FrozenMixtureEOS:
    """Adapter: (rho, e) -> (p, a, T) at a frozen composition snapshot.

    The HLLE flux needs an EOS; during one residual evaluation the
    composition field is frozen, so the adapter carries the current mass
    fractions and warm-start temperatures.
    """

    def __init__(self, mix: MixtureThermo):
        self.mix = mix
        self.y = None          # (..., ns) snapshot
        self.T_guess = None

    def bind(self, y, T_guess):
        self.y = y
        self.T_guess = T_guess

    def _temperature(self, e):
        # energies live on the heat-of-formation basis, so the physical
        # floor depends on composition: e >= sum(y hf0) plus a little
        # thermal content (~30 K).  MUSCL transients during impulsive
        # starts can hand the flux states below it; clamp rather than let
        # the Newton inversion chase a temperature that does not exist.
        hf = np.sum(self.y * self.mix.db.hf0_mass, axis=-1)
        e_eff = np.maximum(np.asarray(e, float), hf + 3.0e4)
        return self.mix.T_from_e(e_eff, self.y, T_guess=self.T_guess)

    def pressure(self, rho, e):
        T = self._temperature(e)
        return self.mix.pressure(rho, T, self.y)

    def sound_speed(self, rho, e):
        T = self._temperature(e)
        return self.mix.sound_speed_frozen(T, self.y)

    def temperature(self, rho, e):
        return self._temperature(e)


class ReactingEulerSolver(QuarantineMixin):
    """Finite-rate blunt-body solver (i: surface, j: normal grid).

    Parameters
    ----------
    grid:
        Body-fitted grid (see :mod:`repro.grid.algebraic`).
    db, mechanism:
        Species set and reaction mechanism (default: 5-species Park air).
    order:
        MUSCL order for the bulk variables.
    chemistry_model:
        Starting rung of the physics ladder: ``"two_temperature"``
        (Park Ta = sqrt(T Tv) dissociation control with an operator-split
        Landau-Teller-relaxed vibrational-electronic pool),
        ``"finite_rate"`` (default, single-temperature kinetics) or
        ``"frozen"`` (no chemistry).  The degradation cascade demotes
        flagged cells down the same ladder at runtime (per-cell
        ``chem_rung`` tags, recorded in a
        :class:`~repro.resilience.DegradationLedger`).
    """

    #: Physics fidelity ladder, highest first; ``chem_rung`` holds
    #: per-cell indices into this tuple once any cell is demoted.
    PHYSICS_LADDER = ("two_temperature", "finite_rate", "frozen")

    def __init__(self, grid: StructuredGrid2D, db: SpeciesDB | str = "air5",
                 mechanism: ReactionMechanism | None = None, *,
                 order: int = 2, limiter=minmod,
                 chemistry_model: str = "finite_rate"):
        self.grid = grid
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        self.mech = mechanism or park_air_mechanism(self.db)
        self.mix = MixtureThermo(self.db)
        self.order = order
        self.limiter = limiter
        self.ns = self.db.n
        self.nv = 4 + self.ns
        self.vol = grid.axisymmetric_volumes()
        n_i, n_j = grid.axisymmetric_face_metrics()
        self.area_i = np.linalg.norm(n_i, axis=-1)
        self.area_j = np.linalg.norm(n_j, axis=-1)
        with np.errstate(invalid="ignore", divide="ignore"):
            self.nhat_i = n_i / np.maximum(self.area_i, 1e-300)[..., None]
            self.nhat_j = n_j / np.maximum(self.area_j, 1e-300)[..., None]
        self.wall_normal = grid.n_j[:, 0, :] / np.maximum(
            np.linalg.norm(grid.n_j[:, 0, :], axis=-1), 1e-300)[:, None]
        self._eos = _FrozenMixtureEOS(self.mix)
        if chemistry_model not in self.PHYSICS_LADDER:
            raise InputError(f"chemistry_model must be one of "
                             f"{self.PHYSICS_LADDER}")
        self.chemistry_model = chemistry_model
        self.ttg = None
        if chemistry_model == "two_temperature":
            from repro.thermo.two_temperature import TwoTemperatureGas
            self.ttg = TwoTemperatureGas(self.db, self.mech)
        self.U = None
        self.T = None
        #: Vibrational-electronic pool [J/kg] and its temperature
        #: (two-temperature starting rung only, else None).
        self.ev = None
        self.Tv = None
        #: Per-cell physics-ladder indices (None until any cell is
        #: demoted below ``chemistry_model``); like the quarantine mask,
        #: deliberately outside get_state so rollbacks keep demotions.
        self.chem_rung = None
        self.steps = 0
        self.converged = False
        self.residual_history: list[float] = []

    #: Blunt-body domain: open boundaries, so the watchdog audits
    #: species/entropy but not global budgets.
    closed_domain = False

    @property
    def state_layout(self):
        """Layout for repro.resilience guards: energy at index 3 (the
        trailing components are rho Y_s, labelled by species name in
        localized errors), and no internal-energy floor — the energy
        lives on the heat-of-formation basis."""
        return {"energy_index": 3, "momentum_indices": (1, 2),
                "e_min": None, "species_names": self.db.names}

    # ------------------------------------------------------------------
    # resilience protocol
    # ------------------------------------------------------------------

    def get_state(self):
        """Restorable marching state (see repro.resilience).

        Complete for durable restarts: the temperature field is the
        Newton warm start, so replays stay bit-identical; ``U_inf`` makes
        a manifest-rebuilt solver runnable without ``set_freestream``.
        """
        state = {"U": self.U.copy(), "steps": self.steps,
                 "T": None if self.T is None else self.T.copy(),
                 "U_inf": (None if getattr(self, "U_inf", None) is None
                           else self.U_inf.copy()),
                 "residual_history": list(self.residual_history)}
        if self.ev is not None:
            state["ev"] = self.ev.copy()
            state["Tv"] = None if self.Tv is None else self.Tv.copy()
        return state

    def set_state(self, state):
        self.U = state["U"]
        self.steps = state["steps"]
        self.T = state["T"]
        if "U_inf" in state and state["U_inf"] is not None:
            self.U_inf = state["U_inf"]
        if "ev" in state:
            self.ev = state["ev"]
            self.Tv = state.get("Tv")
        self.residual_history = state["residual_history"]

    def persist_config(self):
        """JSON-able constructor fingerprint (durable checkpoints).

        Only the stock (Park air) mechanism is reconstructible; a custom
        mechanism still fingerprints through its reaction count so a
        mismatched resume is refused rather than silently rebuilt wrong.
        """
        return {"order": int(self.order),
                "limiter": self.limiter.__name__,
                "db": list(self.db.names),
                "mechanism": {"class": type(self.mech).__name__,
                              "n_reactions": len(self.mech.reactions)},
                "chemistry_model": self.chemistry_model,
                "grid": [int(self.grid.ni), int(self.grid.nj)]}

    def persist_arrays(self):
        """Constructor ndarrays persisted alongside the state."""
        return {"grid_x": self.grid.x, "grid_y": self.grid.y}

    @classmethod
    def from_persist(cls, config, arrays):
        """Rebuild a state-less instance (default Park-air mechanism)."""
        from repro.numerics import limiters as _limiters
        grid = StructuredGrid2D(arrays["grid_x"], arrays["grid_y"])
        db = species_set(tuple(config["db"]))
        solver = cls(grid, db, order=config["order"],
                     limiter=getattr(_limiters, config["limiter"]),
                     chemistry_model=config.get("chemistry_model",
                                                "finite_rate"))
        rebuilt = solver.persist_config()["mechanism"]
        if rebuilt != config["mechanism"]:
            from repro.errors import CheckpointError
            raise CheckpointError(
                f"snapshot used mechanism {config['mechanism']}, the "
                f"default rebuild gives {rebuilt}; pass the original "
                f"mechanism and rebuild manually")
        return solver

    # ------------------------------------------------------------------

    def set_freestream(self, rho, u_x, T, y):
        """Uniform x-directed freestream at (rho, T, mass fractions y)."""
        y = np.asarray(y, dtype=float)
        if y.shape != (self.ns,):
            raise InputError(f"y must have {self.ns} entries")
        e = float(self.mix.e_mass(np.array(T), y))
        E = e + 0.5 * u_x**2
        self.U_inf = np.concatenate([[rho, rho * u_x, 0.0, rho * E],
                                     rho * y])
        ni, nj = self.grid.ni, self.grid.nj
        self.U = np.broadcast_to(self.U_inf, (ni, nj, self.nv)).copy()
        self.T = np.full((ni, nj), float(T), dtype=np.float64)
        if self.ttg is not None:
            # two-temperature start: pool in equilibrium with T
            ev0 = float(self.ttg.e_vib_el(np.array(float(T)), y))
            self.ev = np.full((ni, nj), ev0, dtype=np.float64)
            self.Tv = np.full((ni, nj), float(T), dtype=np.float64)
        self.steps = 0
        return self

    # ------------------------------------------------------------------
    # watchdog hooks
    # ------------------------------------------------------------------

    def species_mass_fractions(self):
        """Raw (unclipped, unnormalised) mass fractions for auditing."""
        if self.U is None:
            return None
        return self.U[..., 4:] / np.maximum(self.U[..., 0:1], 1e-300)

    def conservation_totals(self):
        """Global mass, energy and element-mole totals (per radian)."""
        totals = {"mass": float(np.sum(self.U[..., 0] * self.vol)),
                  "energy": float(np.sum(self.U[..., 3] * self.vol))}
        # element moles: comp_matrix @ (species partial moles); chemistry
        # must conserve every row exactly
        c = self.U[..., 4:] / self.db.molar_mass          # mol/m^3
        per_species = np.sum(c * self.vol[..., None], axis=(0, 1))
        for name, tot in zip(self.db.constraints,
                             self.db.comp_matrix @ per_species):
            totals[f"element:{name}"] = float(tot)
        return totals

    def total_entropy(self):
        """Global entropy functional ``sum(rho s vol)`` from the cached
        temperature field (None before the first residual evaluation)."""
        if self.T is None or self.U is None:
            return None
        rho = np.maximum(self.U[..., 0], 1e-300)
        y = np.clip(self.U[..., 4:] / rho[..., None], 0.0, 1.0)
        y = y / np.maximum(np.sum(y, axis=-1, keepdims=True), 1e-300)
        p = self.mix.pressure(rho, self.T, y)
        s = self.mix.s_mass(self.T, p, y)
        return float(np.sum(rho * s * self.vol))

    # ------------------------------------------------------------------
    # physics-ladder degradation protocol
    # ------------------------------------------------------------------

    def degrade_physics(self, mask=None):
        """Demote the chemistry model one rung in the masked cells
        (``None`` = whole domain).  Returns the name of the rung demoted
        *to*, or ``None`` when every masked cell is already frozen."""
        ni, nj = self.grid.ni, self.grid.nj
        if self.chem_rung is None:
            start = self.PHYSICS_LADDER.index(self.chemistry_model)
            self.chem_rung = np.full((ni, nj), start, dtype=np.int8)
        sel = (np.ones((ni, nj), dtype=bool) if mask is None
               else np.asarray(mask, dtype=bool))
        bottom = len(self.PHYSICS_LADDER) - 1
        cur = self.chem_rung[sel]
        if not np.any(cur < bottom):
            return None
        self.chem_rung[sel] = np.minimum(cur + 1, bottom)
        return self.PHYSICS_LADDER[int(self.chem_rung[sel].max())]

    # ------------------------------------------------------------------

    def _decode(self, U):
        """Primitive decomposition with the warm-started T solve."""
        rho = np.maximum(U[..., 0], 1e-300)
        u = U[..., 1] / rho
        v = U[..., 2] / rho
        y = np.clip(U[..., 4:] / rho[..., None], 0.0, 1.0)
        y = y / np.sum(y, axis=-1, keepdims=True)
        hf = np.sum(y * self.db.hf0_mass, axis=-1)
        e = np.maximum(U[..., 3] / rho - 0.5 * (u * u + v * v),
                       hf + 3e4)
        T_guess = self.T if (self.T is not None
                             and self.T.shape == rho.shape) else None
        T = self.mix.T_from_e(e, y, T_guess=T_guess)
        p = self.mix.pressure(rho, T, y)
        a = self.mix.sound_speed_frozen(T, y)
        return {"rho": rho, "u": u, "v": v, "y": y, "e": e, "T": T,
                "p": p, "a": a}

    def _pad_i(self, U):
        g = np.empty((U.shape[0] + 4,) + U.shape[1:], dtype=np.float64)
        g[2:-2] = U
        flip = np.ones(self.nv, dtype=np.float64)
        flip[2] = -1.0
        g[1] = U[0] * flip
        g[0] = U[1] * flip
        g[-2] = U[-1]
        g[-1] = U[-1]
        return g

    def _pad_j(self, U):
        g = np.empty((U.shape[0], U.shape[1] + 4, self.nv), dtype=np.float64)
        g[:, 2:-2] = U
        for k, src in ((1, 0), (0, 1)):
            Uw = U[:, src].copy()
            n = self.wall_normal
            mn = Uw[:, 1] * n[:, 0] + Uw[:, 2] * n[:, 1]
            Uw[:, 1] -= 2.0 * mn * n[:, 0]
            Uw[:, 2] -= 2.0 * mn * n[:, 1]
            g[:, k] = Uw
        g[:, -2] = self.U_inf
        g[:, -1] = self.U_inf
        return g

    def _face_flux(self, UL, UR, nx, ny):
        """HLLE on the bulk + upwinded species transport."""
        # rotate bulk momentum to the face frame
        WL = rotate_to_normal(UL[..., :4], nx, ny)
        WR = rotate_to_normal(UR[..., :4], nx, ny)
        # bind the face composition (Roe-ish average is unnecessary for
        # the wavespeed bounds; use the mean)
        yL = np.clip(UL[..., 4:] / np.maximum(UL[..., 0:1], 1e-300), 0, 1)
        yR = np.clip(UR[..., 4:] / np.maximum(UR[..., 0:1], 1e-300), 0, 1)
        self._eos.bind(0.5 * (yL + yR)
                       / np.maximum(np.sum(0.5 * (yL + yR), axis=-1,
                                           keepdims=True), 1e-300),
                       None)
        Fb = hlle_flux(WL, WR, self._eos)
        F = np.empty(Fb.shape[:-1] + (self.nv,), dtype=np.float64)
        F[..., :4] = rotate_from_normal(Fb, nx, ny)
        mdot = Fb[..., 0]
        y_up = np.where((mdot > 0.0)[..., None], yL, yR)
        F[..., 4:] = mdot[..., None] * y_up
        return F

    def residual(self, U):
        w = self._decode(U)
        self.T = w["T"]
        fo_i = fo_j = None
        if self.quarantined_cells is not None:
            fo_i = np.pad(self.quarantined_cells, ((2, 2), (0, 0)),
                          mode="edge")
            fo_j = np.pad(self.quarantined_cells, ((0, 0), (2, 2)),
                          mode="edge")
        gi = self._pad_i(U)
        UL, UR = muscl_interface_states(gi, axis=0, order=self.order,
                                        limiter=self.limiter,
                                        first_order_mask=fo_i)
        UL, UR = UL[1:-1], UR[1:-1]
        F_i = self._face_flux(UL, UR, self.nhat_i[..., 0],
                              self.nhat_i[..., 1])
        F_i = F_i * self.area_i[..., None]
        gj = self._pad_j(U)
        VL, VR = muscl_interface_states(gj, axis=1, order=self.order,
                                        limiter=self.limiter,
                                        first_order_mask=fo_j)
        VL, VR = VL[:, 1:-1], VR[:, 1:-1]
        F_j = self._face_flux(VL, VR, self.nhat_j[..., 0],
                              self.nhat_j[..., 1])
        F_j = F_j * self.area_j[..., None]
        div = (F_i[1:] - F_i[:-1]) + (F_j[:, 1:] - F_j[:, :-1])
        R = -div / self.vol[..., None]
        R[..., 2] += w["p"] * self.grid.area / self.vol
        return R

    # ------------------------------------------------------------------

    def local_timestep(self, cfl):
        w = self._decode(self.U)
        speed = np.hypot(w["u"], w["v"]) + w["a"]
        return cfl * self.grid.min_cell_size() / speed

    def _update_vibrational_pool(self, w, dt):
        """Operator-split relaxation of the vibrational-electronic pool.

        Landau-Teller + chemistry sources drive ``ev`` toward the
        equilibrium pool energy at T; the update is clipped to never
        overshoot equilibrium, which makes it unconditionally stable
        regardless of how stiff the local relaxation time is.  Returns
        the updated Tv field.
        """
        T, y, rho = w["T"], w["y"], w["rho"]
        Tv = self.ttg.Tv_from_ev(self.ev, y, Tv_guess=self.Tv)
        q = self.ttg.vibrational_energy_source(rho, T, Tv, y)
        ev_eq = self.ttg.e_vib_el(T, y)
        lo = np.minimum(self.ev, ev_eq)
        hi = np.maximum(self.ev, ev_eq)
        self.ev = np.clip(self.ev + dt * q / rho, lo, hi)
        self.Tv = self.ttg.Tv_from_ev(self.ev, y, Tv_guess=Tv)
        return self.Tv

    def step(self, cfl=0.35, *, chemistry=True):
        """One forward-Euler flow step + point-implicit chemistry split.

        The chemistry sub-step honours the physics ladder: cells at the
        ``two_temperature`` rung drive rates with the relaxed Tv pool,
        ``finite_rate`` cells use single-temperature kinetics, and
        ``frozen`` cells skip the composition update entirely.

        Returns the relative density-update residual (as the Euler
        solver does), so steady marches can monitor convergence.
        """
        dt = self.local_timestep(cfl)
        R = self.residual(self.U)
        self.U = self.U + dt[..., None] * R
        self._sanitise()
        rung = self.chem_rung
        frozen_idx = self.PHYSICS_LADDER.index("frozen")
        all_frozen = (self.chemistry_model == "frozen" if rung is None
                      else bool(np.all(rung == frozen_idx)))
        if chemistry and not all_frozen:
            w = self._decode(self.U)
            self.T = w["T"]
            Tv = None
            if self.ev is not None:
                Tv = self._update_vibrational_pool(w, dt)
                if rung is not None:
                    # demoted cells fall back to single-T rates
                    Tv = np.where(rung == 0, Tv, w["T"])
            y_new = point_implicit_species_update(
                self.mech, w["rho"], w["T"], w["y"], dt, Tv=Tv)
            if rung is not None:
                y_new = np.where((rung == frozen_idx)[..., None],
                                 w["y"], y_new)
            # total energy invariant on the formation basis: only the
            # species partition changes
            self.U[..., 4:] = w["rho"][..., None] * y_new
        self.steps += 1
        # catlint: disable=CAT002 -- mean of squares is >= 0
        rho_res = float(np.sqrt(np.mean((R[..., 0] * dt) ** 2))
                        / max(float(np.mean(self.U[..., 0])), 1e-300))
        self.residual_history.append(rho_res)
        return rho_res

    def _sanitise(self):
        U = self.U
        if not np.all(np.isfinite(U)):
            first = tuple(int(i) for i in np.argwhere(~np.isfinite(U))[0])
            comp = component_name(first[-1], self.nv, energy_index=3,
                                  species_names=self.db.names)
            raise StabilityError(
                f"reacting euler2d: non-finite state at cell "
                f"{first[:-1]}, component {comp}",
                step=self.steps, cell=first[:-1], component=comp,
                value=float(U[first]))
        rho_floor = 1e-6 * float(self.U_inf[0])
        bad = U[..., 0] < rho_floor
        if np.any(bad):
            U[bad, :] = self.U_inf
        rho = U[..., 0]
        ke = 0.5 * (U[..., 1] ** 2 + U[..., 2] ** 2) / rho
        np.clip(U[..., 4:], 0.0, None, out=U[..., 4:])
        y = U[..., 4:] / np.maximum(
            np.sum(U[..., 4:], axis=-1, keepdims=True), 1e-300)
        hf = np.sum(y * self.db.hf0_mass, axis=-1)
        U[..., 3] = np.maximum(U[..., 3], ke + rho * (hf + 3e4))

    def run(self, *, n_steps=2000, cfl=0.35, chemistry=True, tol=None,
            resilience=None, faults=None, persist=None, watchdog=None,
            degradation=None, heartbeat=None):
        """March ``n_steps`` (or to ``tol`` when given).

        ``resilience``/``faults`` run the march under a
        :class:`repro.resilience.RunSupervisor` with checkpointed
        rollback-retry and deterministic fault injection;
        ``persist`` adds durable on-disk snapshots the march resumes
        from after a crash (see
        :meth:`AxisymmetricEulerSolver.run` and
        :func:`repro.resilience.persistence.resume_run`).
        ``watchdog`` (``True`` or a
        :class:`repro.resilience.WatchdogPolicy`) audits species bounds,
        element budgets and entropy each step; ``degradation`` (``True``
        or a :class:`repro.resilience.DegradationPolicy`) arms the
        graceful cascade — quarantined first-order reconstruction, then
        per-cell chemistry demotion down :attr:`PHYSICS_LADDER` — before
        a failing run aborts (ledger on ``self.degradation_ledger``).
        ``heartbeat`` (a :class:`repro.resilience.Heartbeat`) is touched
        every supervised step for a sandboxing parent
        (:class:`repro.resilience.IsolatedRunner`).
        """
        if self.U is None:
            raise InputError("call set_freestream first")
        if resilience is not None or faults is not None \
                or persist is not None or watchdog is not None \
                or degradation is not None or heartbeat is not None:
            from repro.resilience import RetryPolicy, RunSupervisor
            policy = (resilience if isinstance(resilience, RetryPolicy)
                      else RetryPolicy())
            sup = RunSupervisor(self, policy, faults=faults,
                                label="reacting_euler2d", persist=persist,
                                watchdog=watchdog,
                                degradation=degradation,
                                heartbeat=heartbeat)
            sup.march(lambda c: self.step(c, chemistry=chemistry),
                      n_steps=n_steps, cfl=cfl, tol=tol,
                      run_kwargs={"n_steps": n_steps, "cfl": cfl,
                                  "chemistry": chemistry, "tol": tol})
            return self
        for _ in range(n_steps):
            res = self.step(cfl, chemistry=chemistry)
            if tol is not None and res < tol:
                break
        self.converged = bool(tol is not None and self.residual_history
                              and self.residual_history[-1] < tol)
        return self

    # ------------------------------------------------------------------

    def fields(self):
        w = self._decode(self.U)
        w["x"] = self.grid.xc
        w["y_coord"] = self.grid.yc
        return w

    def stagnation_standoff(self, *, threshold=1.5):
        f = self.fields()
        rho_inf = float(self.U_inf[0])
        mask = f["rho"][0] > threshold * rho_inf
        idx = np.nonzero(mask)[0]
        if not idx.size:
            raise StabilityError("no shock on the stagnation ray")
        return float(self.grid.x[0, 0] - f["x"][0, idx[-1]])
