"""Species database: molecular constants for high-temperature gas mixtures.

The paper's real-gas air model carries nine species (N2, O2, N, O, NO, O+,
N+, NO+, e-); we extend that to the common 11-species set (adding N2+, O2+)
plus argon, and a Titan-atmosphere set (N2/CH4 entry chemistry: H2, H, C, CN,
C2, HCN) used by the Fig. 2/3 experiments, and He/H2 for Jupiter-class
entries.

All thermodynamic behaviour is *derived* from these constants by
:mod:`repro.thermo.statmech` (rigid rotor / harmonic oscillator / electronic
levels), so the database is the single source of truth: equilibrium
constants, enthalpies and kinetics backward rates are automatically
consistent with each other.

Units
-----
* ``molar_mass`` — kg/mol
* ``hf0`` — enthalpy of formation at 0 K, J/mol (elements in their standard
  state are zero)
* ``theta_rot`` — characteristic rotational temperature(s), K
* ``vib_modes`` — (characteristic vibrational temperature [K], degeneracy)
* ``elec_levels`` — (degeneracy, characteristic temperature [K])
* ``d0`` — dissociation energy of the molecule, expressed as a temperature
  (D0/k), K; ``None`` for atoms and for polyatomics where the kinetics
  module does not need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import SpeciesError

__all__ = ["Species", "SpeciesDB", "SPECIES", "species_set", "AIR5", "AIR7",
           "AIR9", "AIR11", "TITAN9", "JUPITER2", "JUPITER3"]


@dataclass(frozen=True)
class Species:
    """Immutable molecular-constant record for one chemical species."""

    name: str
    #: Element composition, e.g. ``{"N": 2}``; electrons are the pseudo
    #: element ``"E"`` with count +1 for e- and appear with negative count in
    #: cations implicitly via ``charge``.
    formula: Mapping[str, int]
    molar_mass: float
    #: Electric charge in units of e (0, +1 or -1).
    charge: int
    #: Formation enthalpy at 0 K [J/mol].
    hf0: float
    #: "atom", "linear" or "nonlinear".
    geometry: str
    #: Rotational characteristic temperature(s) [K]. Scalar for linear
    #: molecules; 3-tuple (θA, θB, θC) for nonlinear. Empty tuple for atoms.
    theta_rot: tuple[float, ...]
    #: Rotational symmetry number.
    sigma_sym: int
    #: Vibrational modes as (θv [K], degeneracy) pairs.
    vib_modes: tuple[tuple[float, int], ...]
    #: Electronic levels as (degeneracy, θe [K]) pairs, θe relative to ground.
    elec_levels: tuple[tuple[int, float], ...]
    #: Dissociation energy D0/k [K] (molecules only).
    d0: float | None = None

    @property
    def is_molecule(self) -> bool:
        """True if the species has internal rotational structure."""
        return self.geometry != "atom"

    @property
    def is_ion(self) -> bool:
        return self.charge != 0

    @property
    def n_atoms(self) -> int:
        """Number of atomic nuclei in the species (0 for the electron)."""
        return sum(v for k, v in self.formula.items() if k != "E")

    @property
    def theta_v(self) -> float:
        """Primary (first) vibrational temperature; raises for atoms."""
        if not self.vib_modes:
            raise SpeciesError(f"{self.name} has no vibrational modes")
        return self.vib_modes[0][0]

    def element_count(self, element: str) -> int:
        return int(self.formula.get(element, 0))


#: Atomic molar masses [kg/mol]; molecule masses are computed from these so
#: that element-mass closure is exact (the equilibrium solver conserves
#: elements, and any molecule-mass inconsistency would leak into sum(y)).
_ATOMIC_MASS = {
    "N": 14.0067e-3,
    "O": 15.9994e-3,
    "H": 1.00794e-3,
    "C": 12.011e-3,
    "Ar": 39.948e-3,
    "He": 4.0026e-3,
    "E": 5.48579909e-7,
}


def _s(name, formula, m, charge, hf0_kj, geometry, theta_rot, sigma,
       vib, elec, d0=None) -> Species:
    """Terse constructor used to keep the table below readable.

    ``m`` is accepted for readability but the stored molar mass is always
    recomputed from atomic masses (and the charge) so that mass is exactly
    a linear function of the element content.
    """
    m_exact = sum(_ATOMIC_MASS[el] * n for el, n in formula.items())
    if "E" not in formula:
        m_exact -= charge * _ATOMIC_MASS["E"]
    if geometry == "atom":
        tr: tuple[float, ...] = ()
    elif geometry == "linear":
        tr = (float(theta_rot),)
    else:
        tr = tuple(float(t) for t in theta_rot)
    return Species(
        name=name,
        formula=dict(formula),
        molar_mass=m_exact,
        charge=charge,
        hf0=hf0_kj * 1000.0,
        geometry=geometry,
        theta_rot=tr,
        sigma_sym=sigma,
        vib_modes=tuple((float(t), int(g)) for t, g in vib),
        elec_levels=tuple((int(g), float(t)) for g, t in elec),
        d0=d0,
    )


#: Electron molar mass [kg/mol].
_M_E = 5.48579909e-7

# ---------------------------------------------------------------------------
# The database.  Sources: Park (1990) two-temperature model constants,
# Gurvich/JANAF formation enthalpies at 0 K, Huber & Herzberg spectroscopic
# constants.  θ values are 1.4388 cm·K × (spectroscopic constant in 1/cm).
# ---------------------------------------------------------------------------

_ALL: dict[str, Species] = {}


def _add(sp: Species) -> None:
    _ALL[sp.name] = sp


# --- air neutrals ----------------------------------------------------------
_add(_s("N2", {"N": 2}, 28.0134e-3, 0, 0.0, "linear", 2.875, 2,
        [(3393.5, 1)],
        [(1, 0.0), (3, 72239.0), (6, 85787.0), (6, 95351.0)],
        d0=113200.0))
_add(_s("O2", {"O": 2}, 31.9988e-3, 0, 0.0, "linear", 2.080, 2,
        [(2273.5, 1)],
        [(3, 0.0), (2, 11392.0), (1, 18985.0), (6, 71641.0)],
        d0=59500.0))
_add(_s("NO", {"N": 1, "O": 1}, 30.0061e-3, 0, 89.775, "linear", 2.452, 1,
        [(2739.7, 1)],
        # X2Pi ground state is spin-orbit split by 121 cm^-1 (174 K), which
        # matters for cp near room temperature (JANAF cp(298)=29.86).
        [(2, 0.0), (2, 174.2), (2, 63257.0), (4, 66770.0)],
        d0=75500.0))
_add(_s("N", {"N": 1}, 14.0067e-3, 0, 470.82, "atom", None, 1, [],
        [(4, 0.0), (10, 27658.0), (6, 41495.0)]))
_add(_s("O", {"O": 1}, 15.9994e-3, 0, 246.79, "atom", None, 1, [],
        [(5, 0.0), (3, 228.0), (1, 326.0), (5, 22830.0), (1, 48620.0)]))
_add(_s("Ar", {"Ar": 1}, 39.948e-3, 0, 0.0, "atom", None, 1, [],
        [(1, 0.0)]))

# --- air ions + electron ---------------------------------------------------
_add(_s("N2+", {"N": 2}, 28.0134e-3 - _M_E, +1, 1503.3, "linear", 2.779, 2,
        [(3175.6, 1)],
        [(2, 0.0), (4, 13189.0), (2, 36633.0)],
        d0=101900.0))
_add(_s("O2+", {"O": 2}, 31.9988e-3 - _M_E, +1, 1164.6, "linear", 2.433, 2,
        [(2741.0, 1)],
        [(4, 0.0), (8, 47427.0), (4, 58515.0)],
        d0=77284.0))
_add(_s("NO+", {"N": 1, "O": 1}, 30.0061e-3 - _M_E, +1, 983.65, "linear",
        2.873, 1,
        [(3419.2, 1)],
        [(1, 0.0), (3, 75091.0)],
        d0=125900.0))
_add(_s("N+", {"N": 1}, 14.0067e-3 - _M_E, +1, 1873.15, "atom", None, 1, [],
        [(1, 0.0), (3, 70.1), (5, 188.2), (5, 22037.0), (1, 47029.0)]))
_add(_s("O+", {"O": 1}, 15.9994e-3 - _M_E, +1, 1560.74, "atom", None, 1, [],
        [(4, 0.0), (10, 38575.0), (6, 58226.0)]))
_add(_s("e-", {"E": 1}, _M_E, -1, 0.0, "atom", None, 1, [],
        [(2, 0.0)]))

# --- Titan / carbonaceous species -----------------------------------------
_add(_s("CH4", {"C": 1, "H": 4}, 16.0425e-3, 0, -66.63, "nonlinear",
        (7.54, 7.54, 7.54), 12,
        [(4196.0, 1), (2207.0, 2), (4343.0, 3), (1879.0, 3)],
        [(1, 0.0)]))
_add(_s("H2", {"H": 2}, 2.01588e-3, 0, 0.0, "linear", 85.3, 2,
        [(6332.0, 1)],
        [(1, 0.0)],
        d0=51973.0))
_add(_s("H", {"H": 1}, 1.00794e-3, 0, 216.035, "atom", None, 1, [],
        [(2, 0.0), (8, 118354.0)]))
_add(_s("C", {"C": 1}, 12.011e-3, 0, 711.19, "atom", None, 1, [],
        [(1, 0.0), (3, 23.6), (5, 62.4), (5, 14665.0), (1, 31147.0)]))
_add(_s("CN", {"C": 1, "N": 1}, 26.0177e-3, 0, 435.10, "linear", 2.733, 1,
        [(2976.5, 1)],
        [(2, 0.0), (4, 13302.0), (2, 37052.0)],
        d0=89594.0))
_add(_s("C2", {"C": 2}, 24.022e-3, 0, 820.20, "linear", 2.618, 2,
        [(2668.6, 1)],
        [(1, 0.0), (6, 1030.0), (2, 12073.0), (6, 27881.0)],
        d0=71900.0))
_add(_s("HCN", {"H": 1, "C": 1, "N": 1}, 27.0253e-3, 0, 135.14, "linear",
        2.127, 1,
        [(4763.0, 1), (1025.0, 2), (3017.0, 1)],
        [(1, 0.0)]))

# --- Jupiter ----------------------------------------------------------------
_add(_s("He", {"He": 1}, 4.0026e-3, 0, 0.0, "atom", None, 1, [],
        [(1, 0.0)]))


#: Global read-only species registry, keyed by name.
SPECIES: Mapping[str, Species] = dict(_ALL)

# ---------------------------------------------------------------------------
# Named species sets (the "equation-set x chemistry-model" building blocks)
# ---------------------------------------------------------------------------

#: 5-species neutral dissociating air (no ionization).
AIR5: tuple[str, ...] = ("N2", "O2", "NO", "N", "O")

#: 7-species air: AIR5 + the dominant ion (NO+) and electrons.
AIR7: tuple[str, ...] = AIR5 + ("NO+", "e-")

#: The paper's 9-species dissociating and ionizing air.
AIR9: tuple[str, ...] = AIR5 + ("NO+", "N+", "O+", "e-")

#: Standard 11-species air (adds molecular ions).
AIR11: tuple[str, ...] = AIR5 + ("NO+", "N2+", "O2+", "N+", "O+", "e-")

#: Reduced Titan-atmosphere entry chemistry (N2/CH4 freestream).
TITAN9: tuple[str, ...] = ("N2", "CH4", "H2", "H", "C", "N", "CN", "C2",
                           "HCN")

#: Jupiter H2/He (perfect-gas-like substrate for Galileo-class checks).
JUPITER2: tuple[str, ...] = ("H2", "He")

#: Jupiter with hydrogen dissociation (Galileo-probe shock layers).
JUPITER3: tuple[str, ...] = ("H2", "He", "H")


class SpeciesDB:
    """Ordered view over a subset of the registry.

    Solvers index species by position, so the DB fixes the ordering and
    precomputes per-species arrays (molar masses, charges, formation
    enthalpies) as NumPy vectors.
    """

    def __init__(self, names: Sequence[str]):
        import numpy as np

        missing = [n for n in names if n not in SPECIES]
        if missing:
            raise SpeciesError(f"unknown species: {missing}")
        if len(set(names)) != len(names):
            raise SpeciesError(f"duplicate species in set: {list(names)}")
        self.names: tuple[str, ...] = tuple(names)
        self.species: tuple[Species, ...] = tuple(SPECIES[n] for n in names)
        self.index: dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.n = len(self.names)
        self.molar_mass = np.array([s.molar_mass for s in self.species])
        self.charge = np.array([s.charge for s in self.species], dtype=float)
        self.hf0_molar = np.array([s.hf0 for s in self.species])
        #: Formation enthalpy per unit mass [J/kg].
        self.hf0_mass = self.hf0_molar / self.molar_mass
        #: Sorted tuple of chemical elements present (excluding electrons).
        self.elements: tuple[str, ...] = tuple(sorted(
            {el for s in self.species for el in s.formula if el != "E"}))
        #: Element-composition matrix a[k, j] = atoms of element k in
        #: species j.  Charge is appended as the final row when any species
        #: is charged, making charge conservation just another "element".
        rows = [[s.element_count(el) for s in self.species]
                for el in self.elements]
        self.has_ions = bool(np.any(self.charge != 0))
        if self.has_ions:
            rows.append([s.charge for s in self.species])
        self.comp_matrix = np.array(rows, dtype=float)
        #: Names of the conservation rows of ``comp_matrix``.
        self.constraints: tuple[str, ...] = self.elements + (
            ("charge",) if self.has_ions else ())

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(self.species)

    def __getitem__(self, key: int | str) -> Species:
        if isinstance(key, str):
            try:
                return self.species[self.index[key]]
            except KeyError:
                raise SpeciesError(f"{key!r} not in species set "
                                   f"{self.names}") from None
        return self.species[key]

    def __contains__(self, name: str) -> bool:
        return name in self.index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpeciesDB({list(self.names)})"

    def mole_to_mass(self, x):
        """Convert mole fractions (..., n) to mass fractions."""
        import numpy as np

        x = np.asarray(x, dtype=float)
        w = x * self.molar_mass
        return w / np.sum(w, axis=-1, keepdims=True)

    def mass_to_mole(self, y):
        """Convert mass fractions (..., n) to mole fractions."""
        import numpy as np

        y = np.asarray(y, dtype=float)
        w = y / self.molar_mass
        return w / np.sum(w, axis=-1, keepdims=True)

    def mean_molar_mass(self, y):
        """Mixture molar mass [kg/mol] from mass fractions (..., n)."""
        import numpy as np

        y = np.asarray(y, dtype=float)
        return 1.0 / np.sum(y / self.molar_mass, axis=-1)


_DB_CACHE: dict[tuple[str, ...], SpeciesDB] = {}

_NAMED_SETS: dict[str, tuple[str, ...]] = {
    "air5": AIR5,
    "air7": AIR7,
    "air9": AIR9,
    "air11": AIR11,
    "titan9": TITAN9,
    "jupiter2": JUPITER2,
    "jupiter3": JUPITER3,
}


def species_set(which: str | Sequence[str]) -> SpeciesDB:
    """Return a (cached) :class:`SpeciesDB` for a named or explicit set.

    ``which`` may be one of ``"air5"``, ``"air7"``, ``"air9"``, ``"air11"``,
    ``"titan9"``, ``"jupiter2"`` or an explicit sequence of species names.
    """
    if isinstance(which, str):
        try:
            names = _NAMED_SETS[which.lower()]
        except KeyError:
            raise SpeciesError(
                f"unknown species set {which!r}; choose from "
                f"{sorted(_NAMED_SETS)}") from None
    else:
        names = tuple(which)
    if names not in _DB_CACHE:
        _DB_CACHE[names] = SpeciesDB(names)
    return _DB_CACHE[names]
