"""Public facade of the CAT toolkit.

Most users need only::

    from repro.core import (IdealGasEOS, TabulatedEOS, FreeStream,
                            FlightCondition)

plus the solver entry points re-exported here.  Everything else is
importable from its subpackage.
"""

from repro.core.gas import GasEOS, IdealGasEOS, TabulatedEOS
from repro.core.state import FlightCondition, FreeStream
from repro.core.api import (heat_pulse, make_gas, stagnation_environment,
                            submit_async, windward_heating)

__all__ = ["GasEOS", "IdealGasEOS", "TabulatedEOS", "FreeStream",
           "FlightCondition", "stagnation_environment",
           "windward_heating", "heat_pulse", "make_gas",
           "submit_async"]
