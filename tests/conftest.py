"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions,
                                      titan_reference_mass_fractions)
from repro.thermo.species import species_set


@pytest.fixture(scope="session")
def air11():
    return species_set("air11")


@pytest.fixture(scope="session")
def air5():
    return species_set("air5")


@pytest.fixture(scope="session")
def titan9():
    return species_set("titan9")


@pytest.fixture(scope="session")
def air_gas(air11):
    """Session-wide equilibrium air model (11 species)."""
    return EquilibriumGas(air11, air_reference_mass_fractions(air11))


@pytest.fixture(scope="session")
def air5_gas(air5):
    return EquilibriumGas(air5, air_reference_mass_fractions(air5))


@pytest.fixture(scope="session")
def titan_gas(titan9):
    return EquilibriumGas(titan9, titan_reference_mass_fractions(titan9))


@pytest.fixture()
def rng():
    return np.random.default_rng(20260706)


@pytest.fixture()
def silent():
    """Throwaway output stream for chatty harnesses (farm, chaos)."""
    import io
    return io.StringIO()
