"""Planetary atmosphere models for entry-trajectory analysis.

* :mod:`repro.atmosphere.earth` — US Standard Atmosphere 1976 (layered,
  with an isothermal exponential extension above 86 km).
* :mod:`repro.atmosphere.titan` — engineering N2/CH4 Titan model (the
  Fig. 2/3 probe-entry substrate).
* :mod:`repro.atmosphere.jupiter` — H2/He Jupiter model (Galileo-class
  checks).
"""

from repro.atmosphere.base import Atmosphere
from repro.atmosphere.earth import EarthAtmosphere
from repro.atmosphere.titan import TitanAtmosphere
from repro.atmosphere.jupiter import JupiterAtmosphere

__all__ = ["Atmosphere", "EarthAtmosphere", "TitanAtmosphere",
           "JupiterAtmosphere"]
