"""Cross-module physical-invariant property tests.

These run the stack end to end against thermodynamic and gasdynamic
inequalities that must hold regardless of parameter choices — the
"does the library behave like a gas" layer of the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.shock import equilibrium_normal_shock
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set


class TestEquilibriumMonotonicity:
    @given(lr=st.floats(min_value=-5.0, max_value=-0.5))
    @settings(max_examples=12, deadline=None)
    def test_dissociation_monotone_in_T(self, lr):
        db = species_set("air11")
        gas = EquilibriumGas(db, air_reference_mass_fractions(db))
        rho = np.full(6, 10.0**lr)
        T = np.linspace(2500.0, 11000.0, 6)
        y = gas.composition_rho_T(rho, T)
        atoms = (y[:, db.index["N"]] + y[:, db.index["O"]]
                 + y[:, db.index["N+"]] + y[:, db.index["O+"]])
        # tolerance: mass migrating into other charge states (N2+, e-)
        # at the hot end is a few 1e-5 of the budget
        assert np.all(np.diff(atoms) > -1e-4)

    @given(T=st.floats(min_value=3500.0, max_value=9000.0))
    @settings(max_examples=12, deadline=None)
    def test_dissociation_monotone_in_density(self, T):
        # Le Chatelier: compression suppresses dissociation
        db = species_set("air11")
        gas = EquilibriumGas(db, air_reference_mass_fractions(db))
        rho = 10.0 ** np.linspace(-5, 0, 6)
        y = gas.composition_rho_T(rho, np.full(6, T))
        # count ionized atoms too: at low density atoms trade with their
        # ions, which would mask the dissociation trend
        atoms = (y[:, db.index["N"]] + y[:, db.index["O"]]
                 + y[:, db.index["N+"]] + y[:, db.index["O+"]])
        assert np.all(np.diff(atoms) < 1e-4)

    def test_equilibrium_energy_monotone_in_T(self, air_gas):
        rho = np.full(30, 0.01)
        T = np.linspace(300.0, 14000.0, 30)
        st_ = air_gas.state_rho_T(rho, T)
        assert np.all(np.diff(st_["e"]) > 0)
        assert np.all(np.diff(st_["p"]) > 0)


class TestShockMonotonicity:
    def test_post_shock_state_monotone_in_speed(self, air_gas):
        T2s, p2s = [], []
        for u1 in (4000.0, 6000.0, 8000.0, 10000.0):
            r = equilibrium_normal_shock(air_gas, 1e-3, 250.0, u1)
            T2s.append(r["T2"])
            p2s.append(r["p2"])
        assert np.all(np.diff(T2s) > 0)
        assert np.all(np.diff(p2s) > 0)

    def test_entropy_rises_across_equilibrium_shock(self, air_gas):
        r = equilibrium_normal_shock(air_gas, 1e-3, 250.0, 6000.0)
        s1 = float(air_gas.mix.s_mass(np.array(250.0),
                                      np.array(r["p1"]),
                                      air_gas.y_ref))
        s2 = float(air_gas.mix.s_mass(np.array(r["T2"]),
                                      np.array(r["p2"]), r["y2"]))
        assert s2 > s1


class TestEOSTableMonotonicity:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.thermo.eos_table import build_air_table
        return build_air_table(n_rho=24, n_e=32)

    @given(lr=st.floats(min_value=-6.0, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_pressure_monotone_in_energy(self, lr):
        from repro.thermo.eos_table import build_air_table
        tab = build_air_table(n_rho=24, n_e=32)
        rho = 10.0**lr
        e = np.geomspace(1e5, 1e8, 40)
        p = tab.pressure(np.full(40, rho), e)
        assert np.all(np.diff(p) > 0)

    def test_sound_speed_positive_everywhere(self, table):
        rng = np.random.default_rng(0)
        rho = 10.0 ** rng.uniform(-6, 0.5, 200)
        e = 10.0 ** rng.uniform(5, 8, 200)
        a = table.sound_speed(rho, e)
        assert np.all(a > 100.0)


class TestHeatingBounds:
    def test_lees_distribution_bounded(self):
        from repro.geometry import SphereCone
        from repro.heating import lees_distribution
        body = SphereCone(0.5, 45.0, 3.0)
        s = np.linspace(1e-5, body.s_max * 0.99, 150)
        _, r = body.point(s)
        th = body.angle(s)
        ue = 3000.0 * np.cos(th)
        q = lees_distribution(s, r, np.full_like(s, 0.01),
                              np.full_like(s, 1e-4), ue, 3000.0 / 0.5)
        assert np.all(q > 0)
        assert q.max() < 1.3  # never exceeds the stagnation value by much

    def test_tangent_slab_between_thin_and_blackbody(self):
        from repro.constants import planck_lambda
        from repro.radiation import tangent_slab_flux
        ny = 60
        y = np.linspace(0.0, 0.05, ny)
        lam = np.array([0.4e-6, 0.6e-6])
        T = np.full(ny, 9000.0)
        B = planck_lambda(lam[None, :], T[:, None])
        for kappa in (1e-2, 1.0, 1e2, 1e4):
            q, q_lam = tangent_slab_flux(y, B * kappa, T, lam)
            q_thin = 2 * np.pi * float(
                np.sum(0.5 * (B[1:] + B[:-1]) * kappa
                       * np.diff(y)[:, None], axis=0)[0])
            q_bb = np.pi * float(planck_lambda(lam[0], 9000.0))
            assert q_lam[0] <= q_thin * 1.0001
            assert q_lam[0] <= q_bb * 1.0001


class TestTrajectoryInvariants:
    def test_ballistic_coefficient_controls_penetration(self):
        from repro.atmosphere import EarthAtmosphere
        from repro.trajectory import integrate_entry
        from repro.trajectory.entry import EntryVehicle
        atm = EarthAtmosphere()
        light = EntryVehicle("light", mass=500.0, area=5.0, cd=1.5)
        heavy = EntryVehicle("heavy", mass=5000.0, area=5.0, cd=1.5)
        kw = dict(h0=120e3, V0=7500.0, gamma0_deg=-10.0, V_stop=500.0)
        tr_l = integrate_entry(light, atm, **kw)
        tr_h = integrate_entry(heavy, atm, **kw)
        # the heavy vehicle reaches peak dynamic pressure deeper
        h_l = tr_l.h[tr_l.index_of_peak(tr_l.dynamic_pressure)]
        h_h = tr_h.h[tr_h.index_of_peak(tr_h.dynamic_pressure)]
        assert h_h < h_l

    def test_steeper_entry_peaks_deeper_and_harder(self):
        from repro.atmosphere import EarthAtmosphere
        from repro.trajectory import integrate_entry
        from repro.trajectory.entry import EntryVehicle
        atm = EarthAtmosphere()
        veh = EntryVehicle("cap", mass=3000.0, area=10.0, cd=1.3)
        shallow = integrate_entry(veh, atm, h0=120e3, V0=7500.0,
                                  gamma0_deg=-3.0, V_stop=500.0)
        steep = integrate_entry(veh, atm, h0=120e3, V0=7500.0,
                                gamma0_deg=-15.0, V_stop=500.0)
        assert steep.dynamic_pressure.max() \
            > 1.5 * shallow.dynamic_pressure.max()


class TestConservationBudgets:
    """Closed-domain budget regression + watchdog seeded-violation tests."""

    @staticmethod
    def _closed_box():
        from repro.solvers.euler1d import Euler1DSolver
        s = Euler1DSolver(np.linspace(0.0, 1.0, 81),
                          bc=("reflective", "reflective"))
        rho = np.where(s.xc < 0.5, 1.0, 0.125)
        p = np.where(s.xc < 0.5, 1.0, 0.1)
        return s.set_initial(rho, 0.0, p)

    def test_closed_euler1d_conserves_mass_energy(self):
        s = self._closed_box()
        m0, e0 = s.total_mass(), s.total_energy()
        s.run(0.2, cfl=0.45)
        assert s.total_mass() == pytest.approx(m0, rel=1e-12)
        assert s.total_energy() == pytest.approx(e0, rel=1e-12)

    def test_watchdog_silent_on_clean_closed_march(self):
        s = self._closed_box()
        s.run(0.2, cfl=0.45, watchdog=True)
        assert s.watchdog_events == []

    def test_watchdog_flags_seeded_mass_violation(self):
        from repro.resilience import ConservationWatchdog, WatchdogPolicy
        s = self._closed_box()
        wd = ConservationWatchdog(WatchdogPolicy(warmup=0, window=4))
        for k in range(3):
            s.steps = k
            wd.audit(s)
        s.U *= 1.001                       # seeded conservation violation
        s.steps = 3
        events = wd.audit(s)
        kinds = {e.kind for e in events}
        assert {"mass_budget", "energy_budget"} <= kinds
        ev = next(e for e in events if e.kind == "mass_budget")
        assert ev.value == pytest.approx(1e-3, rel=0.05)
        assert ev.component == "mass"

    def test_watchdog_escalation_enters_ladder(self):
        from repro.errors import StabilityError
        from repro.resilience import ConservationWatchdog, WatchdogPolicy
        s = self._closed_box()
        wd = ConservationWatchdog(WatchdogPolicy(
            warmup=0, window=4, raise_on=("mass_budget",)))
        for k in range(3):
            s.steps = k
            wd.audit(s)
        s.U *= 1.001
        s.steps = 3
        with pytest.raises(StabilityError, match="watchdog"):
            wd.audit(s)

    def test_chemistry_update_conserves_elements(self):
        """The point-implicit chemistry operator must conserve element
        moles cell-by-cell (reactions rearrange, never create atoms)."""
        from repro.numerics.implicit import point_implicit_species_update
        from repro.thermo.kinetics import park_air_mechanism
        db = species_set("air5")
        mech = park_air_mechanism(db)
        rho = np.full((6,), 0.02)
        T = np.linspace(4000.0, 9000.0, 6)
        y = np.tile(np.array([0.70, 0.20, 0.04, 0.03, 0.03]), (6, 1))
        y = y / y.sum(axis=-1, keepdims=True)
        y_new = point_implicit_species_update(mech, rho, T, y, 1e-7)
        moles_old = (rho[:, None] * y / db.molar_mass) @ db.comp_matrix.T
        moles_new = (rho[:, None] * y_new / db.molar_mass) @ db.comp_matrix.T
        # the update's positivity limiting + renormalisation introduce
        # O(1e-9) relative drift; anything beyond that is a real leak
        np.testing.assert_allclose(moles_new, moles_old, rtol=1e-7)

    def test_reacting_solver_exposes_element_budgets(self):
        from tests.test_failure_modes import _make_reacting_small
        s = _make_reacting_small()
        totals = s.conservation_totals()
        assert "mass" in totals and "energy" in totals
        assert "element:N" in totals and "element:O" in totals
        assert all(np.isfinite(v) for v in totals.values())

    def test_watchdog_localizes_species_bound_violation(self):
        from repro.resilience import ConservationWatchdog, WatchdogPolicy
        from tests.test_failure_modes import _make_reacting_small
        s = _make_reacting_small()
        i_no = 4 + s.db.index["NO"]
        s.U[3, 5, i_no] = -1e-4 * s.U[3, 5, 0]   # negative partial density
        events = ConservationWatchdog(WatchdogPolicy(warmup=0)).audit(s)
        ev = next(e for e in events if e.kind == "species_bounds")
        assert ev.cell == (3, 5)
        assert ev.component == "species[NO]"
        assert ev.value < 0.0
