"""Block domain decomposition."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InputError

__all__ = ["Block1D", "partition_1d"]


@dataclass(frozen=True)
class Block1D:
    """One block of a 1-D decomposition along the leading array axis.

    ``lo:hi`` is the owned (interior) index range in the global array;
    ``halo`` ghost rows on each interior side come from the neighbours.
    """

    rank: int
    n_ranks: int
    lo: int
    hi: int
    halo: int

    @property
    def n_owned(self) -> int:
        return self.hi - self.lo

    @property
    def has_left(self) -> bool:
        return self.rank > 0

    @property
    def has_right(self) -> bool:
        return self.rank < self.n_ranks - 1

    @property
    def padded_lo(self) -> int:
        """Global start including the left halo (clamped at the domain)."""
        return self.lo - (self.halo if self.has_left else 0)

    @property
    def padded_hi(self) -> int:
        return self.hi + (self.halo if self.has_right else 0)

    def owned_slice_in_padded(self) -> slice:
        """Slice of the owned rows inside the padded local array."""
        start = self.halo if self.has_left else 0
        return slice(start, start + self.n_owned)


def partition_1d(n: int, n_ranks: int, *, halo: int = 1) -> list[Block1D]:
    """Split n rows into nearly equal contiguous blocks.

    The first ``n % n_ranks`` blocks get one extra row (the classical
    balanced decomposition).
    """
    if n_ranks < 1:
        raise InputError("need at least one rank")
    if n < n_ranks:
        raise InputError(f"cannot split {n} rows over {n_ranks} ranks")
    base = n // n_ranks
    extra = n % n_ranks
    blocks = []
    lo = 0
    for r in range(n_ranks):
        size = base + (1 if r < extra else 0)
        blocks.append(Block1D(rank=r, n_ranks=n_ranks, lo=lo, hi=lo + size,
                              halo=halo))
        lo += size
    return blocks
