"""Tests for the similarity boundary-layer solver."""

import numpy as np
import pytest

from repro.errors import InputError
from repro.solvers.boundary_layer import (StagnationSimilarityBL,
                                          solve_falkner_skan)


class TestClassicalValues:
    def test_blasius(self):
        sol = solve_falkner_skan(0.0, Pr=0.71, gw=0.999)
        assert sol.fpp0 == pytest.approx(0.46960, abs=2e-4)

    def test_axisymmetric_stagnation_homann(self):
        sol = solve_falkner_skan(0.5, Pr=0.71, gw=0.999)
        assert sol.fpp0 == pytest.approx(0.9277, abs=3e-3)

    def test_velocity_profile_monotone(self):
        sol = solve_falkner_skan(0.5, Pr=0.71, gw=0.5)
        assert np.all(np.diff(sol.fp) > -1e-8)
        assert sol.fp[-1] == pytest.approx(1.0, abs=1e-5)

    def test_reynolds_analogy_ballpark(self):
        # for Pr=1, gw->cold: g'(0)/f''(0) ~ (1-gw) scaling
        sol = solve_falkner_skan(0.0, Pr=1.0, gw=0.5)
        # with Pr=1 and beta=0 the Crocco relation makes g linear in f':
        # g = gw + (1-gw) f'
        g_crocco = 0.5 + 0.5 * sol.fp
        assert np.allclose(sol.g, g_crocco, atol=5e-3)

    def test_cooled_wall_increases_heat_parameter(self):
        warm = solve_falkner_skan(0.5, Pr=0.71, gw=0.8)
        cold = solve_falkner_skan(0.5, Pr=0.71, gw=0.2)
        assert cold.gp0 > warm.gp0

    def test_deep_cooling_with_real_gas_C(self):
        # the VSL regime: gw ~ 0.05 with C rising toward the wall
        gpts = np.linspace(0.02, 1.0, 12)
        Cpts = np.array([3.0, 2.0, 1.66, 1.52, 1.42, 1.34, 1.27, 1.21,
                         1.15, 1.09, 1.05, 1.0])

        def C(g):
            return np.interp(np.asarray(g, float), gpts, Cpts)

        sol = solve_falkner_skan(0.5, Pr=0.71, gw=0.05, C_of_g=C)
        assert 0.1 < sol.gp0 < 1.5
        assert sol.fp[-1] == pytest.approx(1.0, abs=1e-4)


class TestStagnationBLFacade:
    def test_heating_matches_fay_riddell_shape(self):
        # q ~ sqrt(K): doubling the velocity gradient raises q by sqrt(2)
        bl = StagnationSimilarityBL(h0e=1e7, p_e=3e4, rho_e=0.01,
                                    mu_e=1e-4)
        q1 = bl.heat_flux(1e6, 1000.0)
        q2 = bl.heat_flux(1e6, 2000.0)
        assert q2 / q1 == pytest.approx(np.sqrt(2.0), rel=1e-6)

    def test_heating_scales_with_enthalpy_difference(self):
        bl = StagnationSimilarityBL(h0e=1e7, p_e=3e4, rho_e=0.01,
                                    mu_e=1e-4)
        q_cold = bl.heat_flux(5e5, 1000.0)
        q_warm = bl.heat_flux(5e6, 1000.0)
        assert q_cold > q_warm

    def test_invalid_wall_enthalpy(self):
        bl = StagnationSimilarityBL(h0e=1e7, p_e=3e4, rho_e=0.01,
                                    mu_e=1e-4)
        with pytest.raises(InputError):
            bl.solve(2e7)

    def test_invalid_construction(self):
        with pytest.raises(InputError):
            StagnationSimilarityBL(h0e=-1.0, p_e=1e4, rho_e=0.01,
                                   mu_e=1e-4)
