"""Tests for contour extraction, ASCII plotting, tables."""

import numpy as np
import pytest

from repro.errors import InputError
from repro.postprocess import (ascii_contour, ascii_plot, contour_lines,
                               format_table)


class TestContours:
    def test_circle_contour(self):
        # f = x^2 + y^2: the level-1 contour is the unit circle
        x, y = np.meshgrid(np.linspace(-2, 2, 80),
                           np.linspace(-2, 2, 80), indexing="ij")
        segs = contour_lines(x, y, x**2 + y**2, 1.0)
        assert len(segs) > 20
        for (xa, ya), (xb, yb) in segs:
            assert np.hypot(xa, ya) == pytest.approx(1.0, abs=0.05)
            assert np.hypot(xb, yb) == pytest.approx(1.0, abs=0.05)

    def test_linear_field_exact(self):
        # f = x: contour x = 0.5 exactly
        x, y = np.meshgrid(np.linspace(0, 1, 11), np.linspace(0, 1, 6),
                           indexing="ij")
        segs = contour_lines(x, y, x, 0.55)
        assert segs
        for (xa, _), (xb, _) in segs:
            assert xa == pytest.approx(0.55, abs=1e-12)
            assert xb == pytest.approx(0.55, abs=1e-12)

    def test_no_contour_outside_range(self):
        x, y = np.meshgrid(np.linspace(0, 1, 5), np.linspace(0, 1, 5),
                           indexing="ij")
        assert contour_lines(x, y, x, 5.0) == []

    def test_works_on_curvilinear_grids(self):
        r = np.linspace(1.0, 2.0, 30)
        th = np.linspace(0, np.pi / 2, 30)
        R, TH = np.meshgrid(r, th, indexing="ij")
        x, y = R * np.cos(TH), R * np.sin(TH)
        segs = contour_lines(x, y, R, 1.5)
        for (xa, ya), (xb, yb) in segs:
            assert np.hypot(xa, ya) == pytest.approx(1.5, abs=0.02)

    def test_shape_mismatch(self):
        with pytest.raises(InputError):
            contour_lines(np.zeros((3, 3)), np.zeros((3, 3)),
                          np.zeros((4, 3)), 0.5)


class TestAsciiPlot:
    def test_basic_render(self):
        x = np.linspace(0, 10, 50)
        out = ascii_plot([(x, np.sin(x), "sine")], title="T")
        assert "T" in out and "sine" in out
        assert "*" in out

    def test_log_axes_drop_nonpositive(self):
        x = np.array([-1.0, 1.0, 10.0, 100.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        out = ascii_plot([(x, y)], logx=True)
        assert "1e" in out

    def test_multiple_series_markers(self):
        x = np.linspace(0, 1, 10)
        out = ascii_plot([(x, x, "a"), (x, 1 - x, "b")])
        assert "*" in out and "o" in out

    def test_empty_raises(self):
        with pytest.raises(InputError):
            ascii_plot([(np.array([-1.0]), np.array([1.0]))], logx=True)

    def test_constant_series_ok(self):
        x = np.linspace(0, 1, 5)
        out = ascii_plot([(x, np.ones(5))])
        assert "*" in out


class TestAsciiContour:
    def test_bands_rendered(self):
        x, y = np.meshgrid(np.linspace(0, 1, 40), np.linspace(0, 1, 40),
                           indexing="ij")
        out = ascii_contour(x, y, x + y, [0.5, 1.0, 1.5])
        assert "levels" in out
        assert any(c in out for c in "123")

    def test_size_mismatch(self):
        with pytest.raises(InputError):
            ascii_contour(np.zeros(4), np.zeros(5), np.zeros(4), [0.5])


class TestTables:
    def test_alignment_and_values(self):
        out = format_table(["a", "bb"], [(1, 2.34567), (10, 0.001)])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.346" in out
        assert "10" in out

    def test_title(self):
        out = format_table(["x"], [(1,)], title="hello")
        assert out.startswith("hello")

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out
