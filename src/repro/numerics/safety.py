"""Clamped elementary operations for off-manifold states.

Mid-Newton or mid-march, a state can transiently leave the physical
manifold (slightly negative internal energy, vanishing pressure).
``np.log``/``np.sqrt``/division then mint NaNs that propagate
*silently* — the march keeps running and produces plausible garbage
until (or unless) ``check_state`` trips.  These helpers clamp at the
call site instead.

All clamps are **bitwise no-ops for in-domain arguments**:
``np.maximum(x, floor)`` returns ``x`` unchanged whenever
``x >= floor``, so resilience-layer bitwise restart tests are
unaffected.  They do not mask instability — state validity is still
enforced by ``check_state``/``StabilityError`` at the marching level;
the clamps only keep intermediate arithmetic finite so the failure is
*diagnosable* rather than a NaN flood.

``catlint`` (CAT001–CAT003) recognises these as guards.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TINY", "EXP_CLIP", "clamp_positive", "safe_exp", "safe_log",
           "safe_sqrt", "safe_div"]

#: Smallest positive floor used by the clamps.  Far below any physical
#: quantity in SI units, so clamping at TINY is indistinguishable from
#: the exact value for every valid state.
TINY = 1.0e-300


def clamp_positive(x, floor=TINY):
    """``max(x, floor)`` elementwise; identity for ``x >= floor``."""
    return np.maximum(x, floor)


#: Exponent clip used by :func:`safe_exp`: ``exp(±460)`` spans
#: ~1e-200..1e200, far beyond any physical rate constant or equilibrium
#: constant, yet still two hundred decades inside float64 range — so a
#: clipped result can be multiplied/divided by other state quantities
#: without re-overflowing.
EXP_CLIP = 460.0


def safe_exp(x, clip=EXP_CLIP):
    """``exp(clip(x, -clip, +clip))`` — finite instead of ``inf`` when an
    Arrhenius-style exponent runs away (low T / high activation
    temperature), and identical to ``np.exp`` for ``|x| <= clip``."""
    return np.exp(np.clip(x, -clip, clip))


def safe_log(x, floor=TINY):
    """``log(max(x, floor))`` — finite (≈ -690 at TINY) instead of
    NaN/-inf when a state transiently goes non-positive."""
    return np.log(np.maximum(x, floor))


def safe_sqrt(x):
    """``sqrt(max(x, 0))`` — 0 instead of NaN for small negative
    round-off residues."""
    return np.sqrt(np.maximum(x, 0.0))


def safe_div(num, den, eps=TINY):
    """``num / den`` with the denominator bumped away from zero.

    Bitwise-identical to plain division whenever ``|den| > eps``; a
    vanishing denominator is replaced by ``±eps`` (sign preserved, and
    a signed zero keeps its sign) so the quotient is huge-but-finite.
    """
    den = np.asarray(den)
    guarded = np.where(np.abs(den) > eps, den, np.copysign(eps, den))
    return num / guarded
