"""Asynchronous-job subsystem tests.

The contract under test (ISSUE 10 acceptance criteria and DESIGN.md
§9):

* ``submit`` returns a durable job id immediately; the state record at
  ``work/<id>/jobstate.json`` walks ``pending → claimed → running →
  checkpointing → done | failed | cancelled`` atomically and every
  transition is journaled,
* transitions are fenced by the queue's lease tokens: a writer whose
  lease was lost (or a client racing a live attempt) cannot commit,
* terminal states are exclusive (at most one per life) and ``failed``
  is resurrectable only through the dead-letter-retry edge,
* cancellation is cooperative first (flag file acknowledged by the
  marching supervisor, answered with a durable snapshot) and the job
  ends ``cancelled``, not ``failed``,
* dead attempts are detected by lease reaping and the requeued attempt
  auto-resumes from the latest snapshot generation, bitwise-identical
  to an uninterrupted reference,
* ``gc`` removes finished-job artifacts past TTL honoring keep-last
  retention and never touches live jobs,
* ``audit_job_transitions`` proves the merged journal history legal.
"""

import json
import os
import time

import pytest

from repro.errors import InputError
from repro.resilience.farm import Farm, FarmPolicy, state_fingerprint
from repro.resilience.queue import BackoffPolicy, Job, WorkQueue
from repro.service.jobs import (CANCELLED, CHECKPOINTING, CLAIMED, DONE,
                                FAILED, JOB_TERMINAL, JOB_TRANSITIONS,
                                PENDING, RUNNING, JobManager,
                                audit_job_transitions, commit_transition,
                                read_record, run_async_attempt)

FAST = BackoffPolicy(max_attempts=3, base=0.01, factor=2.0,
                     max_delay=0.05, jitter=0.5)


def drain(queue_dir, **kw):
    """Run a small farm until the queue is empty."""
    kw.setdefault("n_workers", 1)
    kw.setdefault("poll_interval", 0.05)
    kw.setdefault("lease_ttl", 5.0)
    kw.setdefault("backoff", FAST)
    with open(os.devnull, "w") as null:
        Farm(queue_dir, FarmPolicy(**kw), label="test",
             stream=null).run()


# ----------------------------------------------------------------------
# state machine mechanics
# ----------------------------------------------------------------------


class TestStateMachine:
    def test_transition_table_shape(self):
        # every state appears; terminals exit only via the resurrect
        # edge (failed -> pending, the dead-letter retry)
        assert JOB_TRANSITIONS[DONE] == frozenset()
        assert JOB_TRANSITIONS[CANCELLED] == frozenset()
        assert JOB_TRANSITIONS[FAILED] == frozenset((PENDING,))
        for frm, tos in JOB_TRANSITIONS.items():
            assert frm not in tos  # no self-loops

    def test_legal_walk_commits_and_journals(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        for to in (PENDING, CLAIMED, RUNNING, CHECKPOINTING, RUNNING,
                   DONE):
            assert commit_transition(q, "j1", to, by="t", kind="sleep")
        rec = read_record(q, "j1")
        assert rec["state"] == DONE
        assert rec["transitions"] == 6
        walked = [(r["frm"], r["to"]) for r in q.read_journal()
                  if r.get("event") == "job-transition"]
        assert walked[0] == (None, PENDING)
        assert walked[-1] == (RUNNING, DONE)
        assert audit_job_transitions(q)["ok"]

    def test_illegal_transition_refused_and_journaled(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        commit_transition(q, "j1", PENDING, by="t")
        assert not commit_transition(q, "j1", CHECKPOINTING, by="t")
        assert read_record(q, "j1")["state"] == PENDING
        assert any(r.get("event") == "job-illegal"
                   for r in q.read_journal())

    def test_unknown_state_raises(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        with pytest.raises(InputError):
            commit_transition(q, "j1", "paused", by="t")

    def test_terminal_is_exclusive(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        for to in (PENDING, CLAIMED, RUNNING, DONE):
            assert commit_transition(q, "j1", to, by="t")
        # no edge leaves done; even a would-be second terminal writer
        # bounces off the O_EXCL marker before legality is consulted
        assert not commit_transition(q, "j1", CANCELLED, by="racer")
        assert read_record(q, "j1")["state"] == DONE
        audit = audit_job_transitions(q)
        assert audit["ok"], audit

    def test_lease_token_fences_stale_writer(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        q.enqueue(Job(id="j1", kind="sleep"))
        commit_transition(q, "j1", PENDING, by="client")
        job, lease = q.claim("w0")
        # the holder's token commits; a wrong token and the no-lease
        # (client) credential are both fenced while the lease lives
        assert commit_transition(q, "j1", CLAIMED, by="w0",
                                 token=lease.token)
        assert not commit_transition(q, "j1", RUNNING, by="stale",
                                     token="deadbeef")
        assert not commit_transition(q, "j1", RUNNING, by="client")
        q.leases.release(lease)
        # lease gone: the stale holder's token is now fenced too
        assert not commit_transition(q, "j1", RUNNING, by="w0",
                                     token=lease.token)
        fenced = [r for r in q.read_journal()
                  if r.get("event") == "job-fenced"]
        assert len(fenced) == 3

    def test_torn_record_rebuilt_from_journal(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        for to in (PENDING, CLAIMED, RUNNING):
            commit_transition(q, "j1", to, by="t", kind="sleep")
        path = os.path.join(q.job_workdir("j1"), "jobstate.json")
        with open(path, "w") as f:
            f.write('{"id": "j1", "state": "runn')  # torn write
        rec = read_record(q, "j1")
        assert rec is not None and rec["state"] == RUNNING
        assert rec["transitions"] == 3
        assert any(r.get("event") == "job-state-rebuilt"
                   for r in q.read_journal())

    def test_resurrect_edge_rearms_terminal_gate(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        for to in (PENDING, CLAIMED, RUNNING, FAILED):
            commit_transition(q, "j1", to, by="t")
        marker = os.path.join(q.job_workdir("j1"), "terminal.lock")
        assert os.path.exists(marker)
        assert commit_transition(q, "j1", PENDING, by="retry")
        assert not os.path.exists(marker)  # gate re-armed
        for to in (CLAIMED, RUNNING, DONE):
            assert commit_transition(q, "j1", to, by="t")
        audit = audit_job_transitions(q)
        assert audit["ok"], audit  # failed -> pending -> ... -> done

    def test_audit_flags_illegal_history(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        # forge a journal with an illegal edge and a post-terminal write
        q.journal("job-transition", job="bad", frm=None, to=PENDING)
        q.journal("job-transition", job="bad", frm=PENDING,
                  to=CHECKPOINTING)
        q.journal("job-transition", job="worse", frm=None, to=PENDING)
        q.journal("job-transition", job="worse", frm=PENDING, to=DONE)
        q.journal("job-transition", job="worse", frm=DONE, to=RUNNING)
        audit = audit_job_transitions(q)
        assert not audit["ok"]
        kinds = {v["kind"] for v in audit["violations"]}
        assert "illegal-edge" in kinds and "after-terminal" in kinds


# ----------------------------------------------------------------------
# the client surface
# ----------------------------------------------------------------------


class TestJobManager:
    def test_submit_returns_id_immediately_and_is_idempotent(
            self, tmp_path):
        mgr = JobManager(tmp_path / "q")
        sub = mgr.submit("sleep", {"duration": 0.01})
        assert sub["fresh"] and sub["state"] == PENDING
        assert sub["job"].startswith("job-")
        again = mgr.submit("sleep", {"duration": 0.01})
        assert again["job"] == sub["job"] and not again["fresh"]
        other = mgr.submit("sleep", {"duration": 0.02})
        assert other["job"] != sub["job"]  # content-addressed ids

    def test_unknown_kind_rejected(self, tmp_path):
        mgr = JobManager(tmp_path / "q")
        with pytest.raises(InputError):
            mgr.submit("warp-drive", {})
        with pytest.raises(InputError):
            mgr.submit("async", {})  # no recursive wrapping

    def test_status_unknown_job_raises(self, tmp_path):
        mgr = JobManager(tmp_path / "q")
        with pytest.raises(InputError):
            mgr.status("nope")

    def test_submit_run_status_result(self, tmp_path):
        mgr = JobManager(tmp_path / "q")
        sub = mgr.submit("sleep", {"duration": 0.02}, job_id="s1")
        assert mgr.result("s1") == {"job": "s1", "state": PENDING,
                                    "ready": False}
        drain(tmp_path / "q")
        st = mgr.status("s1")
        assert st["state"] == DONE and st["queue_status"] == "done"
        res = mgr.result("s1")
        assert res["ready"] and res["result"] == {"slept": 0.02}
        led = mgr.ledger()
        assert led["audit"]["ok"] and led["transitions_audit"]["ok"]
        assert led["by_state"] == {DONE: 1}

    def test_failed_job_reports_error(self, tmp_path):
        mgr = JobManager(tmp_path / "q")
        mgr.submit("flaky", {"fail_first": 99}, job_id="f1",
                   max_attempts=2)
        drain(tmp_path / "q")
        st = mgr.status("f1")
        assert st["state"] == FAILED
        res = mgr.result("f1")
        assert res["ready"] and res["state"] == FAILED and res["error"]

    def test_cancel_before_start_terminalizes(self, tmp_path):
        mgr = JobManager(tmp_path / "q")
        mgr.submit("sleep", {"duration": 30.0}, job_id="c1")
        out = mgr.cancel("c1", reason="nevermind")
        assert out["state"] == CANCELLED and not out["escalated"]
        # the queue still executes the attempt, which acknowledges the
        # flag without burning compute, and the audits stay clean
        drain(tmp_path / "q")
        res = mgr.result("c1")
        assert res["state"] == CANCELLED and res["reason"] == "nevermind"
        led = mgr.ledger()
        assert led["audit"]["ok"] and led["transitions_audit"]["ok"]

    def test_watch_streams_until_terminal(self, tmp_path, capsys):
        import io
        mgr = JobManager(tmp_path / "q")
        mgr.submit("sleep", {"duration": 0.01}, job_id="w1")
        drain(tmp_path / "q")
        buf = io.StringIO()
        st = mgr.watch("w1", timeout=5.0, poll=0.05, stream=buf)
        assert st["state"] == DONE
        lines = [json.loads(x) for x in
                 buf.getvalue().strip().splitlines()]
        assert lines and lines[-1]["state"] == DONE

    def test_gc_retention(self, tmp_path):
        mgr = JobManager(tmp_path / "q")
        for i in range(3):
            mgr.submit("sleep", {"duration": 0.01}, job_id=f"g{i}")
        mgr.submit("flaky", {"fail_first": 99}, job_id="gf",
                   max_attempts=2)
        mgr.submit("sleep", {"duration": 0.01}, job_id="live")
        drain(tmp_path / "q")
        # make "live" non-terminal again: forge a fresh pending job
        mgr.submit("sleep", {"duration": 9.0}, job_id="pending-one")
        swept = mgr.gc(ttl=3600.0)
        assert swept["n_collected"] == 0  # nothing old enough
        swept = mgr.gc(ttl=0.0, keep_last=2)
        # failed kept (no --include-failed), 2 most recent kept
        assert "gf" not in swept["collected"]
        assert "pending-one" not in swept["collected"]
        assert len(swept["retained"]) == 2
        swept = mgr.gc(ttl=0.0, include_failed=True)
        assert set(mgr.queue.job_ids()) == {"pending-one"}
        workdirs = os.listdir(mgr.queue.work_dir)
        assert set(workdirs) <= {"pending-one"}

    def test_dead_attempt_requeues_via_sync(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST, lease_ttl=0.2)
        mgr = JobManager(tmp_path / "q", lease_ttl=0.2)
        mgr.submit("sleep", {"duration": 0.01}, job_id="d1")
        job, lease = q.claim("doomed")
        assert commit_transition(q, "d1", CLAIMED, by="doomed",
                                 token=lease.token)
        assert commit_transition(q, "d1", RUNNING, by="doomed",
                                 token=lease.token)
        # the holder dies silently; past the ttl sync() reaps the lease
        # and folds the orphaned attempt state back to pending
        time.sleep(0.3)
        rec = mgr.sync("d1")
        assert rec["state"] == PENDING
        assert mgr.queue.state("d1")["status"] == "pending"
        assert audit_job_transitions(mgr.queue)["ok"]


# ----------------------------------------------------------------------
# the attempt executor
# ----------------------------------------------------------------------


class TestRunAsyncAttempt:
    def _ctx(self, q, job_id, lease=None):
        workdir = q.job_workdir(job_id)
        return {"workdir": workdir,
                "ckpt_dir": os.path.join(workdir, "ckpt"),
                "queue_dir": q.dir, "job_id": job_id,
                "lease_token": lease.token if lease else None,
                "worker": "t0"}

    def test_attempt_walks_the_state_machine(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        q.enqueue(Job(id="a1", kind="async",
                      payload={"kind": "sleep",
                               "payload": {"duration": 0.01}}))
        commit_transition(q, "a1", PENDING, by="client", kind="sleep")
        job, lease = q.claim("t0")
        out = run_async_attempt(job.payload, self._ctx(q, "a1", lease))
        assert out["cancelled"] is False
        assert out["result"] == {"slept": 0.01}
        assert read_record(q, "a1")["state"] == DONE

    def test_unknown_inner_kind_raises(self, tmp_path):
        from repro.errors import SolverError
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        q.enqueue(Job(id="a1", kind="async",
                      payload={"kind": "nope", "payload": {}}))
        job, lease = q.claim("t0")
        with pytest.raises(SolverError):
            run_async_attempt(job.payload, self._ctx(q, "a1", lease))

    def test_cancel_flag_acknowledged_before_compute(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        q.enqueue(Job(id="a1", kind="async",
                      payload={"kind": "sleep",
                               "payload": {"duration": 60.0}}))
        commit_transition(q, "a1", PENDING, by="client", kind="sleep")
        with open(os.path.join(q.job_workdir("a1"),
                               "cancel.json"), "w") as f:
            json.dump({"reason": "late veto"}, f)
        job, lease = q.claim("t0")
        t0 = time.monotonic()
        out = run_async_attempt(job.payload, self._ctx(q, "a1", lease))
        assert out["cancelled"] and time.monotonic() - t0 < 5.0
        assert read_record(q, "a1")["state"] == CANCELLED

    def test_stale_attempt_state_reconciled(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        q.enqueue(Job(id="a1", kind="async",
                      payload={"kind": "sleep",
                               "payload": {"duration": 0.01}}))
        # a killed predecessor left the record mid-attempt
        for to in (PENDING, CLAIMED, RUNNING):
            commit_transition(q, "a1", to, by="ghost", kind="sleep")
        job, lease = q.claim("t0")
        out = run_async_attempt(job.payload, self._ctx(q, "a1", lease))
        assert out["cancelled"] is False
        assert read_record(q, "a1")["state"] == DONE
        assert audit_job_transitions(q)["ok"]


# ----------------------------------------------------------------------
# marching jobs: progress, checkpoint transitions, resume parity
# ----------------------------------------------------------------------


class TestMarchingJobs:
    def test_solver_march_publishes_progress_and_snapshots(
            self, tmp_path):
        from repro.resilience.chaos import CASES
        mgr = JobManager(tmp_path / "q")
        mgr.submit("solver_case",
                   {"case": "euler1d", "every_n_steps": 3},
                   job_id="m1")
        drain(tmp_path / "q", snapshot_every=3)
        st = mgr.status("m1")
        assert st["state"] == DONE
        assert st["snapshots"]["generations"] >= 1
        prog = st["progress"]
        assert prog is not None and prog["step"] >= 1
        assert prog["label"]  # supervisor label made it to the channel
        # checkpointing round-trips are journaled as real transitions
        walked = [(r["frm"], r["to"])
                  for r in mgr.queue.read_journal()
                  if r.get("event") == "job-transition"
                  and r.get("job") == "m1"]
        assert (RUNNING, CHECKPOINTING) in walked
        assert (CHECKPOINTING, RUNNING) in walked
        assert audit_job_transitions(mgr.queue)["ok"]
        # and the march result is bitwise-identical to a direct run
        factory, run_kwargs, _, _ = CASES["euler1d"]
        ref = factory()
        ref.run(**run_kwargs)
        res = mgr.result("m1")
        assert res["result"]["state_sha256"] == state_fingerprint(ref)


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------


class TestJobsCLI:
    def _run(self, *argv):
        from repro.__main__ import main
        return main(list(argv))

    def test_submit_status_result_gc_roundtrip(self, tmp_path, capsys):
        qd = str(tmp_path / "q")
        code = self._run("jobs", "submit", "--queue-dir", qd, "sleep",
                         '{"duration": 0.01}', "--id", "cli1")
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["job"] == "cli1" and out["state"] == PENDING
        drain(qd)
        assert self._run("jobs", "status", "--queue-dir", qd,
                         "cli1") == 0
        st = json.loads(capsys.readouterr().out)
        assert st["state"] == DONE
        assert self._run("jobs", "result", "--queue-dir", qd,
                         "cli1") == 0
        res = json.loads(capsys.readouterr().out)
        assert res["result"] == {"slept": 0.01}
        assert self._run("jobs", "ledger", "--queue-dir", qd) == 0
        led = json.loads(capsys.readouterr().out)
        assert led["audit"]["ok"] and led["transitions_audit"]["ok"]
        assert self._run("jobs", "gc", "--queue-dir", qd, "--ttl",
                         "0") == 0
        swept = json.loads(capsys.readouterr().out)
        assert swept["collected"] == ["cli1"]

    def test_cancel_exits_zero(self, tmp_path, capsys):
        qd = str(tmp_path / "q")
        self._run("jobs", "submit", "--queue-dir", qd, "sleep",
                  '{"duration": 30}', "--id", "cli2")
        capsys.readouterr()
        assert self._run("jobs", "cancel", "--queue-dir", qd,
                         "cli2") == 0
        out = json.loads(capsys.readouterr().out)
        assert out["state"] == CANCELLED

    def test_failed_job_exits_one(self, tmp_path, capsys):
        qd = str(tmp_path / "q")
        self._run("jobs", "submit", "--queue-dir", qd, "flaky",
                  '{"fail_first": 99}', "--id", "cli3",
                  "--max-attempts", "2")
        drain(qd)
        capsys.readouterr()
        assert self._run("jobs", "result", "--queue-dir", qd,
                         "cli3") == 1

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        qd = str(tmp_path / "q")
        assert self._run("jobs") == 2
        assert self._run("jobs", "teleport", "--queue-dir", qd) == 2
        assert self._run("jobs", "status", "--queue-dir", qd) == 2
        assert self._run("jobs", "submit", "--queue-dir", qd, "sleep",
                         "not json") == 2
        assert self._run("jobs", "submit", "sleep") == 2  # no queue
        capsys.readouterr()

    def test_api_submit_async_handle(self, tmp_path):
        from repro.core import submit_async
        handle = submit_async("sleep", {"duration": 0.01},
                              queue_dir=str(tmp_path / "q"))
        assert handle.status()["state"] == PENDING
        drain(str(tmp_path / "q"))
        assert handle.result()["result"] == {"slept": 0.01}
