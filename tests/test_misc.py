"""Small-surface tests: constants helpers, misc dataclass behaviour,
experiment registry completeness."""

import numpy as np
import pytest

from repro import __version__
from repro.constants import (arrhenius_si, ev_to_joule, planck_lambda,
                             wavenumber_to_joule, wavenumber_to_kelvin)
from repro.errors import InputError


class TestConstantsHelpers:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_arrhenius_conversion_orders(self):
        # catlint: disable=CAT010 -- order-1 conversion factor is (1e-3)**0 == 1 exactly
        assert arrhenius_si(1e12, 1) == 1e12
        assert arrhenius_si(1e12, 2) == pytest.approx(1e6)
        assert arrhenius_si(1e12, 3) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            arrhenius_si(1.0, 4)

    def test_wavenumber_conversions(self):
        # 1 eV ~ 8065.5 cm^-1
        assert wavenumber_to_joule(8065.5) == pytest.approx(
            ev_to_joule(1.0), rel=1e-4)
        # 1 cm^-1 ~ 1.4388 K
        assert wavenumber_to_kelvin(1.0) == pytest.approx(1.4388,
                                                          rel=1e-3)

    def test_planck_wien_displacement(self):
        # B_lambda at 5800 K peaks near 0.50 um
        lam = np.linspace(0.1e-6, 3e-6, 4000)
        B = planck_lambda(lam, 5800.0)
        assert lam[np.argmax(B)] == pytest.approx(2.898e-3 / 5800.0,
                                                  rel=0.01)

    def test_planck_stefan_boltzmann(self):
        from repro.constants import SIGMA_SB
        lam = np.geomspace(1e-8, 1e-3, 20000)
        T = 6000.0
        q = np.pi * np.trapezoid(planck_lambda(lam, T), lam)
        assert q == pytest.approx(SIGMA_SB * T**4, rel=1e-3)


class TestSmallSurfaces:
    def test_reaction_delta_nu(self):
        from repro.thermo.kinetics import Reaction
        rx = Reaction.from_cgs("N2 + M <=> 2N + M", {"N2": 1}, {"N": 2},
                               7e21, -1.6, 113200.0, third_body=True)
        assert rx.delta_nu == 1

    def test_vehicle_with_bank(self):
        from repro.trajectory import AOTV
        banked = AOTV.with_bank(0.5)
        assert banked.cl == pytest.approx(0.5 * AOTV.cl)
        assert banked.cd == AOTV.cd  # drag unchanged

    def test_speciesdb_len_iter(self, air11):
        assert len(air11) == 11
        assert [sp.name for sp in air11][:2] == ["N2", "O2"]

    def test_runner_covers_all_figures(self):
        from repro.experiments.runner import _MODULES
        names = [n for n, _ in _MODULES]
        assert names == [f"fig{i}" for i in range(1, 10)]
        for _, mod in _MODULES:
            assert hasattr(mod, "run") and hasattr(mod, "main")

    def test_blsolution_fields(self):
        from repro.solvers.boundary_layer import solve_falkner_skan
        sol = solve_falkner_skan(0.0, Pr=0.71, gw=0.9)
        assert sol.eta.shape == sol.fp.shape == sol.g.shape
        # catlint: disable=CAT010 -- f(0) = 0 is the imposed wall boundary condition
        assert sol.f[0] == 0.0

    def test_freestream_frozen_pressure_override(self):
        from repro.core import FreeStream
        fs = FreeStream(rho=1.0, T=300.0, V=0.0, p=12345.0)
        # catlint: disable=CAT010 -- explicit p is stored, not derived
        assert fs.p == 12345.0
