"""Tests for the validation tooling (and using it on the solvers)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.validation import (couette_temperature_profile,
                              couette_velocity_profile, error_norms,
                              isentropic_nozzle_mach, observed_order,
                              richardson_extrapolate)


class TestNorms:
    def test_zero_error(self):
        a = np.linspace(0, 1, 10)
        n = error_norms(a, a)
        # catlint: disable=CAT010 -- error norms of identical arrays are exactly 0
        assert n["l1"] == n["l2"] == n["linf"] == 0.0

    def test_norm_ordering(self, rng):
        a = rng.random(100)
        b = a + rng.normal(0, 0.1, 100)
        n = error_norms(a, b)
        assert n["l1"] <= n["l2"] <= n["linf"]

    def test_weighted(self):
        c = np.array([1.0, 2.0])
        e = np.array([0.0, 2.0])
        n = error_norms(c, e, weights=[3.0, 1.0])
        assert n["l1"] == pytest.approx(0.75)

    def test_shape_mismatch(self):
        with pytest.raises(InputError):
            error_norms(np.zeros(3), np.zeros(4))


class TestObservedOrder:
    @given(p=st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_recovers_power_law(self, p):
        h = np.array([0.1, 0.05, 0.025])
        err = 3.0 * h**p
        assert observed_order(h, err) == pytest.approx(p, rel=1e-9)

    def test_invalid(self):
        with pytest.raises(InputError):
            observed_order([0.1], [0.01])
        with pytest.raises(InputError):
            observed_order([0.1, -0.05], [0.01, 0.001])

    def test_euler1d_order_on_smooth_flow(self):
        """Observed order of the MUSCL scheme on a smooth acoustic pulse."""
        from repro.core.gas import IdealGasEOS
        from repro.solvers.euler1d import Euler1DSolver

        errs, hs = [], []
        for n in (50, 100, 200):
            x = np.linspace(0.0, 1.0, n + 1)
            xc = 0.5 * (x[1:] + x[:-1])
            s = Euler1DSolver(x, IdealGasEOS(1.4))
            rho0 = 1.0 + 0.05 * np.exp(-200 * (xc - 0.3) ** 2)
            s.set_initial(rho0, 0.0, rho0**1.4)
            s.run(0.05, cfl=0.4)
            # reference: rich grid
            xr = np.linspace(0.0, 1.0, 1601)
            xrc = 0.5 * (xr[1:] + xr[:-1])
            r = Euler1DSolver(xr, IdealGasEOS(1.4))
            rho0r = 1.0 + 0.05 * np.exp(-200 * (xrc - 0.3) ** 2)
            r.set_initial(rho0r, 0.0, rho0r**1.4)
            r.run(0.05, cfl=0.4)
            rho_ref = np.interp(xc, xrc, r.primitives()[0])
            errs.append(error_norms(s.primitives()[0], rho_ref)["l1"])
            hs.append(1.0 / n)
        p = observed_order(hs, errs)
        assert 1.2 < p < 2.6   # better than first order on smooth data


class TestRichardson:
    def test_exact_for_pure_power_error(self):
        exact = 3.14159
        h = 0.1
        p = 2.0
        f_c = exact + 5.0 * h**p
        f_f = exact + 5.0 * (h / 2) ** p
        assert richardson_extrapolate(f_c, f_f, 2.0, p) == pytest.approx(
            exact, rel=1e-12)

    def test_invalid_ratio(self):
        with pytest.raises(InputError):
            richardson_extrapolate(1.0, 1.0, 1.0, 2.0)


class TestCouette:
    def test_velocity_linear(self):
        y = np.linspace(0, 0.01, 5)
        u = couette_velocity_profile(y, 0.01, 100.0)
        # catlint: disable=CAT010 -- u = u_w y/h with y in {0, h} is exact in IEEE division
        assert u[0] == 0.0 and u[-1] == 100.0

    def test_temperature_dissipation_bump(self):
        y = np.linspace(0, 0.01, 101)
        T = couette_temperature_profile(y, 0.01, 500.0, T0=300.0,
                                        Th=300.0, mu=1.8e-5, k=0.026)
        # symmetric parabola peaking at mid-gap
        assert T[50] == T.max()
        assert T.max() - 300.0 == pytest.approx(
            1.8e-5 * 500.0**2 / (8 * 0.026), rel=1e-10)

    def test_invalid_gap(self):
        with pytest.raises(InputError):
            couette_velocity_profile(np.zeros(3), -1.0, 10.0)


class TestNozzleMach:
    def test_sonic_throat(self):
        # catlint: disable=CAT010 -- sonic throat returns the literal 1.0 branch
        assert isentropic_nozzle_mach(1.0) == 1.0

    @pytest.mark.parametrize("M", [2.0, 3.0, 5.0])
    def test_roundtrip_supersonic(self, M):
        g = 1.4
        ar = ((2 / (g + 1)) * (1 + 0.5 * (g - 1) * M * M)) \
            ** ((g + 1) / (2 * (g - 1))) / M
        assert isentropic_nozzle_mach(ar) == pytest.approx(M, rel=1e-9)

    def test_subsonic_branch(self):
        M = isentropic_nozzle_mach(2.0, supersonic=False)
        assert 0.0 < M < 1.0

    def test_invalid(self):
        with pytest.raises(InputError):
            isentropic_nozzle_mach(0.5)


class TestTurbulentHeating:
    def test_turbulent_exceeds_laminar_at_high_re(self):
        from repro.heating.reference_enthalpy import (
            flat_plate_heating, turbulent_flat_plate_heating)
        from repro.transport.viscosity import sutherland_viscosity
        mu_of_h = lambda h: sutherland_viscosity(h / 1004.5)  # noqa: E731
        kw = dict(rho_e=0.05, u_e=3000.0, h_e=5e5, h_w=8e5,
                  mu_of_h=mu_of_h, h0e=5e6)
        q_lam = float(flat_plate_heating(2.0, **kw))
        q_turb = float(turbulent_flat_plate_heating(2.0, **kw))
        assert q_turb > 2.0 * q_lam

    def test_x_scaling(self):
        from repro.heating.reference_enthalpy import (
            turbulent_flat_plate_heating)
        from repro.transport.viscosity import sutherland_viscosity
        mu_of_h = lambda h: sutherland_viscosity(h / 1004.5)  # noqa: E731
        kw = dict(rho_e=0.05, u_e=3000.0, h_e=5e5, h_w=8e5,
                  mu_of_h=mu_of_h, h0e=5e6)
        q = turbulent_flat_plate_heating(np.array([1.0, 32.0]), **kw)
        # x^-0.2: factor 32 in x -> factor 2 in q
        assert q[0] / q[1] == pytest.approx(2.0, rel=1e-9)
