"""Tests for the 3-DOF planar entry integrator."""

import numpy as np
import pytest

from repro.atmosphere import EarthAtmosphere, TitanAtmosphere
from repro.errors import InputError
from repro.trajectory import (AOTV, SHUTTLE, TAV, TITAN_PROBE,
                              integrate_entry)


@pytest.fixture(scope="module")
def earth():
    return EarthAtmosphere()


@pytest.fixture(scope="module")
def shuttle_entry(earth):
    return integrate_entry(SHUTTLE, earth, h0=120e3, V0=7800.0,
                           gamma0_deg=-1.2)


class TestBasics:
    def test_invalid_inputs(self, earth):
        with pytest.raises(InputError):
            integrate_entry(SHUTTLE, earth, h0=100e3, V0=-1.0,
                            gamma0_deg=-1.0)
        with pytest.raises(InputError):
            integrate_entry(SHUTTLE, earth, h0=-5.0, V0=7800.0,
                            gamma0_deg=-1.0)

    def test_ballistic_coefficient(self):
        assert SHUTTLE.ballistic_coefficient == pytest.approx(
            99000.0 / (0.84 * 250.0))

    def test_monotone_time(self, shuttle_entry):
        assert np.all(np.diff(shuttle_entry.t) > 0)

    def test_decelerates(self, shuttle_entry):
        assert shuttle_entry.V[-1] < 0.3 * shuttle_entry.V[0]

    def test_descends_overall(self, shuttle_entry):
        assert shuttle_entry.h[-1] < shuttle_entry.h[0]

    def test_downrange_positive(self, shuttle_entry):
        assert shuttle_entry.s[-1] > 1e5  # gliding entry: >100 km range


class TestEnergyConsistency:
    def test_energy_decreases(self, shuttle_entry):
        # specific mechanical energy can only be removed by drag
        tr = shuttle_entry
        mu = tr.atmosphere.mu_grav
        r = tr.atmosphere.planet_radius + tr.h
        energy = 0.5 * tr.V**2 - mu / r
        assert np.all(np.diff(energy) < 1e-3 * abs(energy[0]))

    def test_vacuum_flight_conserves_energy(self, earth):
        # a vehicle with zero area never feels drag
        from repro.trajectory.entry import EntryVehicle
        ghost = EntryVehicle("ghost", mass=1000.0, area=1e-12, cd=1.0)
        tr = integrate_entry(ghost, earth, h0=200e3, V0=7000.0,
                             gamma0_deg=-5.0, t_max=120.0, V_stop=10.0)
        mu = earth.mu_grav
        r = earth.planet_radius + tr.h
        energy = 0.5 * tr.V**2 - mu / r
        assert np.abs(energy - energy[0]).max() < 1e-4 * abs(energy[0])


class TestVehicleFamilies:
    def test_aotv_aeropass_skips_out(self, earth):
        # lift-up AOTV pass at shallow angle should exit the atmosphere
        tr = integrate_entry(AOTV, earth, h0=122e3, V0=9800.0,
                             gamma0_deg=-4.7, t_max=2000.0)
        assert tr.h[-1] > 1.2 * 122e3 or tr.V[-1] < 9800.0
        # it must descend below 90 km during the pass to shed energy
        assert tr.h.min() < 95e3

    def test_titan_probe_ballistic(self):
        # a 12 km/s arrival is hyperbolic at Titan (escape ~2.6 km/s), so
        # the entry angle must be steep for capture
        titan = TitanAtmosphere()
        tr = integrate_entry(TITAN_PROBE, titan, h0=800e3, V0=12000.0,
                             gamma0_deg=-40.0, t_max=2000.0, V_stop=300.0)
        # ballistic probe: decelerates strongly at high altitude
        assert tr.V[-1] <= 310.0
        assert tr.h[tr.index_of_peak(tr.dynamic_pressure)] > 100e3

    def test_peak_heating_indicator(self):
        titan = TitanAtmosphere()
        tr = integrate_entry(TITAN_PROBE, titan, h0=800e3, V0=12000.0,
                             gamma0_deg=-40.0, t_max=2000.0, V_stop=300.0)
        # rho^0.5 V^3 proxy peaks strictly inside the trajectory
        q_proxy = np.sqrt(tr.rho) * tr.V**3
        i = tr.index_of_peak(q_proxy)
        assert 0 < i < len(tr.t) - 1

    def test_tav_sustains_hypersonic_flight(self, earth):
        tr = integrate_entry(TAV, earth, h0=80e3, V0=6500.0,
                             gamma0_deg=-0.5, t_max=1500.0, V_stop=1000.0)
        # lifting slender vehicle: spends a long time above Mach 5
        hyper_time = float(np.trapezoid((tr.mach > 5).astype(float), tr.t))
        assert hyper_time > 200.0


class TestResample:
    def test_resample_preserves_endpoints(self, shuttle_entry):
        r = shuttle_entry.resample(100)
        assert r.t.size == 100
        assert r.t[0] == shuttle_entry.t[0]
        assert r.t[-1] == shuttle_entry.t[-1]
        assert r.V[0] == pytest.approx(shuttle_entry.V[0])

    def test_derived_arrays_shapes(self, shuttle_entry):
        assert shuttle_entry.mach.shape == shuttle_entry.t.shape
        assert shuttle_entry.reynolds.shape == shuttle_entry.t.shape
        assert np.all(shuttle_entry.reynolds > 0)
