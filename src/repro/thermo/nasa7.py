"""NASA 7-coefficient thermodynamic polynomials.

Production CAT codes of the paper's era consumed curve-fit thermodynamics
(Gordon–McBride style).  This module provides

* :class:`Nasa7Poly` — a two-range evaluator with the standard functional
  form::

      cp/R   = a1 + a2 T + a3 T^2 + a4 T^3 + a5 T^4
      h/(RT) = a1 + a2 T/2 + a3 T^2/3 + a4 T^3/4 + a5 T^4/5 + a6/T
      s/R    = a1 ln T + a2 T + a3 T^2/2 + a4 T^3/3 + a5 T^4/4 + a7

* :func:`fit_nasa7` — least-squares fitting of a polynomial to any property
  source (we fit against the statmech model, which both exercises the
  fitting path and provides a fast drop-in approximation).

The toolkit's solvers use the statmech model directly; the polynomial layer
exists for interoperability, speed-sensitive table generation, and as an
accuracy cross-check (see the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import R_UNIVERSAL as R
from repro.errors import InputError, TableRangeError
from repro.thermo.statmech import SpeciesThermo

__all__ = ["Nasa7Poly", "fit_nasa7"]


@dataclass(frozen=True)
class Nasa7Poly:
    """Two-range NASA-7 polynomial for one species (molar units)."""

    name: str
    T_low: float
    T_mid: float
    T_high: float
    #: Coefficients (a1..a7) for the low range [T_low, T_mid].
    coeffs_low: tuple[float, ...]
    #: Coefficients (a1..a7) for the high range [T_mid, T_high].
    coeffs_high: tuple[float, ...]

    def __post_init__(self):
        if not (self.T_low < self.T_mid < self.T_high):
            raise InputError("require T_low < T_mid < T_high")
        if len(self.coeffs_low) != 7 or len(self.coeffs_high) != 7:
            raise InputError("NASA-7 polynomials need exactly 7 coefficients")

    def _select(self, T):
        T = np.asarray(T, dtype=float)
        if np.any(T < self.T_low - 1e-9) or np.any(T > self.T_high + 1e-9):
            raise TableRangeError(
                f"temperature outside fit range for {self.name}",
                lo=self.T_low, hi=self.T_high)
        a_lo = np.asarray(self.coeffs_low)
        a_hi = np.asarray(self.coeffs_high)
        use_hi = (T >= self.T_mid)[..., None]
        return T, np.where(use_hi, a_hi, a_lo)

    def cp(self, T):
        """Molar cp [J/(mol K)]."""
        T, a = self._select(T)
        return R * (a[..., 0] + a[..., 1] * T + a[..., 2] * T**2
                    + a[..., 3] * T**3 + a[..., 4] * T**4)

    def h(self, T):
        """Molar enthalpy [J/mol]."""
        T, a = self._select(T)
        return R * T * (a[..., 0] + a[..., 1] * T / 2 + a[..., 2] * T**2 / 3
                        + a[..., 3] * T**3 / 4 + a[..., 4] * T**4 / 5
                        + a[..., 5] / T)

    def s(self, T):
        """Standard-state molar entropy [J/(mol K)]."""
        T, a = self._select(T)
        # catlint: disable=CAT001 -- _select clamps T into the fitted
        # polynomial range, which is bounded above 0 K
        return R * (a[..., 0] * np.log(T) + a[..., 1] * T
                    + a[..., 2] * T**2 / 2 + a[..., 3] * T**3 / 3
                    + a[..., 4] * T**4 / 4 + a[..., 6])

    def g0(self, T):
        """Standard-state molar Gibbs function [J/mol]."""
        T = np.asarray(T, dtype=float)
        return self.h(T) - T * self.s(T)


def _fit_range(cp_fn, h_ref, s_ref, T_ref, T_a, T_b, n_samples):
    """Fit a1..a5 to cp on [T_a, T_b]; pin a6, a7 from h, s at T_ref.

    The basis is evaluated in the scaled variable z = T/T_b (raw powers of
    T up to T^4 at 2e4 K make the normal equations hopelessly conditioned);
    the coefficients are rescaled back to the standard NASA convention.
    """
    T = np.linspace(T_a, T_b, n_samples)
    z = T / T_b
    A = np.stack([np.ones_like(z), z, z**2, z**3, z**4], axis=1)
    # weight by 1/cp so the relative error is what's minimised
    cp = cp_fn(T) / R
    w = 1.0 / np.maximum(cp, 1e-3)
    coef, *_ = np.linalg.lstsq(A * w[:, None], cp * w, rcond=None)
    a1, a2, a3, a4, a5 = coef / T_b ** np.arange(5)
    # integrate cp to enthalpy/entropy, pinning the reference values
    a6 = (h_ref / R - (a1 * T_ref + a2 * T_ref**2 / 2 + a3 * T_ref**3 / 3
                       + a4 * T_ref**4 / 4 + a5 * T_ref**5 / 5))
    # catlint: disable=CAT001 -- T_ref is a positive reference
    # temperature (298.15 K convention)
    a7 = (s_ref / R - (a1 * np.log(T_ref) + a2 * T_ref + a3 * T_ref**2 / 2
                       + a4 * T_ref**3 / 3 + a5 * T_ref**4 / 4))
    return (float(a1), float(a2), float(a3), float(a4), float(a5),
            float(a6), float(a7))


def fit_nasa7(source: SpeciesThermo, *, T_low=200.0, T_mid=1000.0,
              T_high=6000.0, n_samples=200) -> Nasa7Poly:
    """Fit a two-range NASA-7 polynomial to a statmech property source.

    The low and high ranges are fit independently on cp; the integration
    constants are pinned so that h and s are *exact* at ``T_mid``, which
    makes the polynomial continuous in h and s across the break (cp may
    have a small jump — the standard behaviour of published NASA fits).
    """
    h_mid = float(source.h(T_mid))
    s_mid = float(source.s(T_mid))
    lo = _fit_range(source.cp, h_mid, s_mid, T_mid, T_low, T_mid, n_samples)
    hi = _fit_range(source.cp, h_mid, s_mid, T_mid, T_mid, T_high, n_samples)
    return Nasa7Poly(name=source.sp.name, T_low=T_low, T_mid=T_mid,
                     T_high=T_high, coeffs_low=lo, coeffs_high=hi)
