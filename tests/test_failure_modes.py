"""Failure-injection tests: the library must fail loudly and typed.

Every deliberate error path raises a :class:`repro.errors.CatError`
subclass with diagnostic payload — never a bare numpy warning or a
silent NaN field.  The resilience-layer tests go further: deterministic
faults are injected mid-run and the supervised solvers must either
recover (rollback + CFL backoff, per-cell Newton re-seeding) or fail
with a populated :class:`repro.resilience.FailureReport`.
"""

import numpy as np
import pytest

from repro.errors import (CatError, ConvergenceError, InputError,
                          StabilityError)
from repro.resilience import (FailureReport, FaultInjector, RetryPolicy,
                              RunSupervisor, supervised_call)


def _m8_solver(n_s=15, n_normal=21):
    """Small Mach-8 hemisphere Euler case (fast enough for fault tests)."""
    from repro.core.gas import IdealGasEOS
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.euler2d import AxisymmetricEulerSolver
    body = Hemisphere(1.0)
    grid = blunt_body_grid(body, n_s=n_s, n_normal=n_normal,
                           density_ratio=0.2, margin=2.5)
    s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
    rho, T = 0.01, 220.0
    s.set_freestream(rho, 8.0 * np.sqrt(1.4 * 287.0528 * T),
                     rho * 287.0528 * T)
    return s


class TestErrorHierarchy:
    def test_all_errors_are_cat_errors(self):
        for exc in (ConvergenceError("x"), InputError("x"),
                    StabilityError("x")):
            assert isinstance(exc, CatError)

    def test_convergence_error_payload(self):
        e = ConvergenceError("failed", iterations=42, residual=1e-3)
        assert e.iterations == 42
        # catlint: disable=CAT010 -- stored-attribute pass-through of the constructor literal
        assert e.residual == 1e-3

    def test_stability_error_payload(self):
        e = StabilityError("boom", step=7)
        assert e.step == 7

    def test_convergence_error_cell_forensics(self):
        traj = np.array([[1.0, 0.5], [0.9, 0.4]])
        e = ConvergenceError("failed", bad_indices=[3, 7],
                             residual_trajectory=traj,
                             worst={"indices": [3], "residuals": [0.4]})
        assert e.bad_indices == [3, 7]
        assert e.residual_trajectory is traj
        assert e.worst["indices"] == [3]

    def test_errors_carry_optional_report(self):
        rep = FailureReport(label="unit", error="x")
        e = StabilityError("boom", report=rep)
        assert e.report is rep
        assert ConvergenceError("x").report is None

    def test_input_error_is_value_error(self):
        # so generic callers catching ValueError still work
        assert isinstance(InputError("x"), ValueError)


class TestSolverBlowupDetection:
    def test_euler2d_detects_nan_state(self):
        from repro.core.gas import IdealGasEOS
        from repro.geometry import Hemisphere
        from repro.grid import blunt_body_grid
        from repro.solvers.euler2d import AxisymmetricEulerSolver
        body = Hemisphere(1.0)
        grid = blunt_body_grid(body, n_s=11, n_normal=11)
        s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
        s.set_freestream(0.01, 2000.0, 700.0)
        s.U[3, 3, 0] = np.nan
        with pytest.raises(StabilityError):
            s.step(0.4)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_euler1d_detects_blowup_from_huge_cfl(self):
        # overflow warnings en route to the StabilityError are the point
        from repro.solvers.euler1d import Euler1DSolver
        x = np.linspace(0.0, 1.0, 51)
        xc = 0.5 * (x[1:] + x[:-1])
        s = Euler1DSolver(x)
        s.set_initial(np.where(xc < 0.5, 1.0, 0.125), 0.0,
                      np.where(xc < 0.5, 1.0, 0.1))
        with pytest.raises(StabilityError):
            for _ in range(200):
                s.step(0.5)   # dt >> CFL limit for dx = 0.02

    def test_vsl_grid_rejects_negative_radius_cells(self):
        from repro.errors import GridError
        from repro.grid.structured import StructuredGrid2D
        x, y = np.meshgrid(np.linspace(0, 1, 4), np.linspace(-0.5, 0.5, 4),
                           indexing="ij")
        g = StructuredGrid2D(x, y)
        with pytest.raises(GridError):
            g.axisymmetric_volumes()


class TestEquilibriumSolverRobustness:
    def test_unreachable_energy_raises_convergence_error(self, air_gas):
        # requesting e far above the single-ionization model's reach
        with pytest.raises(ConvergenceError):
            air_gas.state_rho_e(np.array([10.0]), np.array([5e9]))

    def test_negative_density_raises_input_error(self, air_gas):
        with pytest.raises(InputError):
            air_gas.composition_rho_T(np.array([-0.1]), np.array([300.0]))

    def test_shock_below_sound_speed(self, air_gas):
        from repro.solvers.shock import equilibrium_normal_shock
        with pytest.raises(InputError):
            equilibrium_normal_shock(air_gas, 1.0, 300.0, 10.0)


class TestFaultInjector:
    def test_transient_fault_fires_once(self):
        s = _m8_solver(n_s=9, n_normal=11)
        faults = FaultInjector()
        faults.inject_nan(step=0, cell=(2, 3), component=0)
        assert faults.apply(s) is True
        assert np.isnan(s.U[2, 3, 0])
        s.U[2, 3, 0] = 0.01
        assert faults.apply(s) is False     # one-shot: does not refire
        assert faults.n_fired == 1

    def test_persistent_fault_refires(self):
        s = _m8_solver(n_s=9, n_normal=11)
        faults = FaultInjector()
        faults.inject_perturbation(step=0, cell=(1, 1), factor=10.0,
                                   persistent=True)
        rho0 = float(s.U[1, 1, 0])
        faults.apply(s)
        s.U[1, 1, 0] = rho0
        assert faults.apply(s) is True
        assert s.U[1, 1, 0] == pytest.approx(10.0 * rho0)

    def test_reset_rearms(self):
        s = _m8_solver(n_s=9, n_normal=11)
        faults = FaultInjector()
        faults.inject_nan(step=0, cell=(0, 0))
        faults.apply(s)
        faults.reset()
        s.U[0, 0, 0] = 0.01
        assert faults.apply(s) is True


class TestRunSupervisor:
    """Acceptance scenarios from the resilience-layer issue."""

    def test_transient_nan_recovers_and_converges(self):
        # poison one cell mid-run; rollback + CFL backoff must still
        # deliver a converged steady state
        s = _m8_solver()
        faults = FaultInjector()
        faults.inject_nan(step=40, cell=(5, 8), component=0)
        s.run(n_steps=3000, cfl=0.4, tol=1e-3,
              resilience=RetryPolicy(checkpoint_interval=20),
              faults=faults)
        assert faults.n_fired == 1
        assert s.converged is True
        assert s.residual_history[-1] < 1e-3
        assert np.all(np.isfinite(s.U))

    def test_retries_disabled_raises_with_report(self):
        s = _m8_solver()
        faults = FaultInjector()
        faults.inject_nan(step=40, cell=(5, 8), component=0)
        with pytest.raises(StabilityError) as exc:
            s.run(n_steps=3000, cfl=0.4, tol=1e-3,
                  resilience=RetryPolicy(max_retries=0), faults=faults)
        rep = exc.value.report
        assert isinstance(rep, FailureReport)
        # catlint: disable=CAT010 -- report records the attempted CFL literal verbatim
        assert rep.attempts and rep.attempts[0]["cfl"] == 0.4
        assert rep.step == 40
        assert len(rep.residual_history) > 0
        assert rep.config.get("flux_name")
        assert "U" in rep.state            # last good checkpoint payload
        assert "retry ladder exhausted" in str(exc.value)
        assert rep.label in rep.summary()

    def test_persistent_fault_return_best(self):
        # a fault that refires after every rollback exhausts the ladder;
        # return_best hands back the last good state instead of raising
        s = _m8_solver()
        faults = FaultInjector()
        faults.inject_nan(step=40, cell=(5, 8), persistent=True)
        s.run(n_steps=3000, cfl=0.4, tol=1e-3,
              resilience=RetryPolicy(max_retries=2, return_best=True),
              faults=faults)
        assert s.converged is False
        assert np.all(np.isfinite(s.U))    # checkpoint, not poisoned state

    def test_cfl_backoff_ladder_trace(self):
        s = _m8_solver(n_s=9, n_normal=11)
        faults = FaultInjector()
        faults.inject_nan(step=5, cell=(2, 3), persistent=True)
        sup = RunSupervisor(s, RetryPolicy(max_retries=2, cfl_backoff=0.5,
                                           return_best=True),
                            faults=faults, label="ladder-test")
        sup.march(s.step, n_steps=100, cfl=0.4, tol=1e-12)
        cfls = [a["cfl"] for a in sup.attempts]
        assert cfls == pytest.approx([0.4, 0.2, 0.1])
        assert sup.report is not None and sup.report.label == "ladder-test"

    def test_euler1d_supervised_transient_run(self):
        from repro.solvers.euler1d import Euler1DSolver
        x = np.linspace(0.0, 1.0, 101)
        xc = 0.5 * (x[1:] + x[:-1])
        s = Euler1DSolver(x)
        s.set_initial(np.where(xc < 0.5, 1.0, 0.125), 0.0,
                      np.where(xc < 0.5, 1.0, 0.1))
        faults = FaultInjector()
        faults.inject_nan(step=30, cell=50, component=2)
        s.run(0.2, cfl=0.45, resilience=RetryPolicy(checkpoint_interval=10),
              faults=faults)
        assert s.converged is True
        assert s.t == pytest.approx(0.2, abs=1e-12)
        assert np.all(np.isfinite(s.U))


class TestSupervisedCall:
    def test_ladder_recovers(self):
        calls = []

        def fn(tol=1e-12):
            calls.append(tol)
            if tol < 1e-6:
                raise ConvergenceError("too tight")
            return "ok"

        assert supervised_call(fn, label="unit",
                               ladder=[{"tol": 1e-3}]) == "ok"
        assert calls == [1e-12, 1e-3]

    def test_exhaustion_attaches_report(self):
        def fn(**kw):
            raise ConvergenceError("always fails")

        with pytest.raises(ConvergenceError) as exc:
            supervised_call(fn, label="unit", ladder=[{"tol": 1e-3}],
                            config={"case": "demo"})
        rep = exc.value.report
        assert isinstance(rep, FailureReport)
        assert len(rep.attempts) == 2
        assert rep.config["case"] == "demo"


class TestEquilibriumPerCellRecovery:
    """Per-cell Newton failure isolation in the batched Gibbs solver."""

    @pytest.fixture(scope="class")
    def batch(self):
        r = np.random.default_rng(20260706)
        return 10 ** r.uniform(-4, 0, 200), r.uniform(1500.0, 12000.0, 200)

    def test_poisoned_initial_guesses_recover(self, air_gas, batch):
        # 10% of the batch seeded with absurd element potentials: the
        # recovery ladder must still converge every cell to the clean
        # solution
        rho, T = batch
        solver = air_gas.solver
        y_clean, lam = solver.solve_rho_T(rho, T, air_gas.b,
                                          return_lambda=True)
        lam0 = lam.copy()
        bad = np.arange(0, 200, 10)        # every 10th cell = 10%
        lam0[bad] = 150.0                  # exp(150) overflows the Newton
        y2 = solver.solve_rho_T(rho, T, air_gas.b, lam0=lam0)
        assert np.allclose(y2, y_clean, atol=1e-7)

    def test_fault_injected_newton_failures_recover(self, air11, batch):
        from repro.thermo.equilibrium import (EquilibriumGas,
                                              air_reference_mass_fractions)
        rho, T = batch
        y_ref = air_reference_mass_fractions(air11)
        y_clean = EquilibriumGas(air11, y_ref).composition_rho_T(rho, T)
        faults = FaultInjector()
        faults.inject_newton_failure(call=0, cells=tuple(range(0, 200, 10)),
                                     value=150.0)
        gas = EquilibriumGas(air11, y_ref, faults=faults)
        y2 = gas.composition_rho_T(rho, T)
        assert faults.n_fired == 1
        assert np.allclose(y2, y_clean, atol=1e-7)

    def test_unreachable_energy_error_is_enriched(self, air_gas):
        with pytest.raises(ConvergenceError) as exc:
            air_gas.state_rho_e(np.array([10.0]), np.array([5e9]))
        e = exc.value
        assert e.bad_indices is not None and len(e.bad_indices) == 1
        assert e.worst is not None and "rho" in e.worst


class TestRunnerResilience:
    """A failing figure must not cost the rest of the suite."""

    def _fake_modules(self):
        import types

        def make(name, main):
            mod = types.SimpleNamespace()
            mod.__doc__ = f"{name} docstring first line\nrest"
            mod.main = main
            return mod

        err = ConvergenceError("injected figure failure")
        err.report = FailureReport(label="fig-bad", error=str(err))

        def boom(quick=True):
            raise err

        return [("good1", make("good1", lambda quick=True: "result-1")),
                ("bad", make("bad", boom)),
                ("good2", make("good2", lambda quick=True: "result-2"))]

    def test_keep_going_collects_failures(self, monkeypatch):
        import io

        import repro.experiments.runner as runner
        monkeypatch.setattr(runner, "_MODULES", self._fake_modules())
        out = io.StringIO()
        res = runner.run_all(quick=True, stream=out)
        assert set(res["failures"]) == {"bad"}
        assert set(res["timings"]) == {"good1", "bad", "good2"}
        text = out.getvalue()
        assert "result-2" in text          # suite continued past failure
        assert "fig-bad" in text           # FailureReport was printed

    def test_fail_fast_mode_raises(self, monkeypatch):
        import io

        import repro.experiments.runner as runner
        monkeypatch.setattr(runner, "_MODULES", self._fake_modules())
        with pytest.raises(ConvergenceError):
            runner.run_all(quick=True, stream=io.StringIO(),
                           keep_going=False)


class TestAPIOnFailure:
    def test_stagnation_environment_report_mode(self, air_gas):
        from repro.core.api import stagnation_environment
        # subsonic "entry" is an InputError deep in the shock solve
        res = stagnation_environment(V=10.0, h=60e3, gas=air_gas,
                                     nose_radius=1.0,
                                     on_failure="report")
        assert res["ok"] is False
        assert isinstance(res["error"], CatError)

    def test_default_mode_still_raises(self, air_gas):
        from repro.core.api import stagnation_environment
        with pytest.raises(CatError):
            stagnation_environment(V=10.0, h=60e3, gas=air_gas,
                                   nose_radius=1.0)

    def test_degrade_mode_falls_back_to_correlation(self, air_gas):
        from repro.core.api import stagnation_environment
        res = stagnation_environment(V=10.0, h=60e3, gas=air_gas,
                                     nose_radius=1.0,
                                     on_failure="degrade")
        assert res["ok"] is True
        assert res["degraded"] is True
        assert res["degradation"]["ladder"] == "model"
        assert res["degradation"]["rung"] == "correlation"
        assert res["degradation"]["error_type"]
        assert np.isfinite(res["q_conv"]) and res["q_conv"] > 0
        assert res["profiles"] is None       # correlations have no profile

    def test_unknown_on_failure_rejected(self):
        from repro.core.api import stagnation_environment
        with pytest.raises(InputError, match="on_failure"):
            stagnation_environment(V=7000.0, h=60e3, nose_radius=1.0,
                                   on_failure="bogus")


class TestAdaptationOnPhysics:
    def test_adapt_concentrates_points_in_relaxation_front(self):
        """Solution-adaptive redistribution on a relaxation-zone-like
        temperature profile (the paper's grid-adaptation challenge)."""
        from repro.grid.adaptation import adapt_1d, gradient_weight
        x = np.linspace(0.0, 0.02, 200)
        # frozen-shock relaxation shape: sharp exponential decay near 0
        T = 9000.0 + 39000.0 * np.exp(-x / 5e-4)
        w = gradient_weight(x, T, alpha=4.0)
        x2 = adapt_1d(x, w)
        n_front_before = np.count_nonzero(x < 1e-3)
        n_front_after = np.count_nonzero(x2 < 1e-3)
        assert n_front_after > 2 * n_front_before
        assert np.all(np.diff(x2) > 0)


class TestVSLRadiativeCoolingAblation:
    @pytest.fixture(scope="class")
    def solutions(self, titan_gas):
        from repro.atmosphere import TitanAtmosphere
        from repro.solvers.vsl import StagnationVSL
        vsl = StagnationVSL(titan_gas, nose_radius=0.64)
        atm = TitanAtmosphere()
        h = 287e3
        kw = dict(rho_inf=float(atm.density(h)),
                  T_inf=float(atm.temperature(h)), V=10500.0,
                  T_wall=1800.0, n_profile=40, n_lambda=120)
        cooled = vsl.solve(radiative_cooling=True, **kw)
        uncooled = vsl.solve(radiative_cooling=False, **kw)
        return cooled, uncooled

    def test_cooling_reduces_radiative_flux(self, solutions):
        cooled, uncooled = solutions
        assert cooled.q_rad <= uncooled.q_rad

    def test_cooling_does_not_change_convection(self, solutions):
        cooled, uncooled = solutions
        assert cooled.q_conv == pytest.approx(uncooled.q_conv, rel=1e-12)


class TestMixtureEntropy:
    def test_entropy_increases_with_T(self, air_gas, air11):
        y = air_gas.y_ref
        s1 = float(air_gas.mix.s_mass(np.array(300.0), np.array(1e5), y))
        s2 = float(air_gas.mix.s_mass(np.array(1000.0), np.array(1e5), y))
        assert s2 > s1

    def test_entropy_decreases_with_p(self, air_gas):
        y = air_gas.y_ref
        s1 = float(air_gas.mix.s_mass(np.array(500.0), np.array(1e4), y))
        s2 = float(air_gas.mix.s_mass(np.array(500.0), np.array(1e6), y))
        assert s1 > s2
        # ideal-gas: ds = -R ln(p2/p1)
        from repro.constants import R_UNIVERSAL
        R_mix = float(air_gas.mix.gas_constant(y))
        assert s1 - s2 == pytest.approx(R_mix * np.log(100.0), rel=1e-6)

    def test_air_entropy_magnitude(self, air_gas):
        # standard air entropy at 298 K, 1 bar: ~6860 J/(kg K)
        s = float(air_gas.mix.s_mass(np.array(298.15), np.array(1e5),
                                     air_gas.y_ref))
        assert s == pytest.approx(6860.0, rel=0.02)

    def test_isentrope_consistency_with_pns_expansion(self, air_gas):
        # expanding isentropically and re-evaluating s returns the same s
        from repro.geometry import OrbiterWindwardProfile
        from repro.solvers.pns import WindwardHeatingPNS
        body = OrbiterWindwardProfile(40.0, 1.3)
        pns = WindwardHeatingPNS(body, gas=air_gas)
        s_target = 9000.0
        T = pns._T_of_s_p(s_target, 2000.0, 4000.0)
        y, _ = air_gas.composition_T_p(np.array(T), np.array(2000.0))
        s_back = float(air_gas.mix.s_mass(np.array(T), np.array(2000.0),
                                          y))
        assert s_back == pytest.approx(s_target, rel=1e-6)


def _make_reacting_small():
    """9x13 Mach-10 reacting hemisphere (the degradation test case)."""
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.reacting_euler2d import ReactingEulerSolver
    from repro.thermo.species import species_set
    grid = blunt_body_grid(Hemisphere(0.05), n_s=9, n_normal=13,
                           density_ratio=0.12, margin=2.5)
    db = species_set("air5")
    s = ReactingEulerSolver(grid, db)
    y = np.zeros(db.n)
    y[db.index["N2"]] = 0.767
    y[db.index["O2"]] = 0.233
    return s.set_freestream(1e-3, 5000.0, 250.0, y)


class TestDegradationLadder:
    """Ladder mechanics: demote, march clean, re-promote (LIFO)."""

    def test_numerics_round_trip_euler1d(self):
        from repro.resilience import (DegradationController,
                                      DegradationPolicy)
        from repro.solvers.euler1d import Euler1DSolver
        s = Euler1DSolver(np.linspace(0.0, 1.0, 41))
        s.set_initial(1.0, 0.0, 1.0)
        ctl = DegradationController(
            DegradationPolicy(promote_after=3, quarantine_halo=1))
        assert ctl.degrade(s, step=5, cells=[(10,)], reason="test")
        assert s.quarantined_cells is not None
        assert int(s.quarantined_cells.sum()) == 3   # cell + halo 1
        assert ctl.active
        for k in range(3):
            s.steps = 6 + k
            ctl.note_clean_step(s, step=s.steps)
        # LIFO restore: the pre-demotion mask (None) is back
        assert s.quarantined_cells is None
        assert not ctl.active
        led = ctl.ledger.to_dict()
        assert led["n_demotions"] == 1
        assert led["n_promotions"] == 1
        assert led["fully_promoted"] is True
        assert led["entries"][0]["rung"] == "first_order"

    def test_failure_resets_clean_counter(self):
        from repro.resilience import (DegradationController,
                                      DegradationPolicy)
        from repro.solvers.euler1d import Euler1DSolver
        s = Euler1DSolver(np.linspace(0.0, 1.0, 21))
        s.set_initial(1.0, 0.0, 1.0)
        ctl = DegradationController(DegradationPolicy(promote_after=2))
        ctl.degrade(s, step=0, cells=[(5,)], reason="test")
        ctl.note_clean_step(s, step=1)
        ctl.note_failure()                # resets the clean-step count
        ctl.note_clean_step(s, step=2)
        assert s.quarantined_cells is not None   # not yet re-promoted
        ctl.note_clean_step(s, step=3)
        assert s.quarantined_cells is None

    def test_physics_ladder_reacting(self):
        s = _make_reacting_small()
        assert s.chemistry_model == "finite_rate"
        rung = s.degrade_physics()            # whole domain, one rung down
        assert rung == "frozen"
        assert int(s.chem_rung.max()) == s.PHYSICS_LADDER.index("frozen")
        assert s.degrade_physics() is None    # ladder exhausted

    def test_controller_tries_numerics_then_physics(self):
        from repro.resilience import (DegradationController,
                                      DegradationPolicy)
        s = _make_reacting_small()
        ctl = DegradationController(DegradationPolicy(quarantine_halo=2))
        assert ctl.degrade(s, step=1, cells=[(4, 6)], reason="a")
        assert s.quarantined_cells is not None
        assert s.chem_rung is None            # physics untouched so far
        # same cells again: quarantine adds nothing, falls to physics
        assert ctl.degrade(s, step=2, cells=[(4, 6)], reason="b")
        assert s.chem_rung is not None
        ladders = [e["ladder"] for e in ctl.ledger.to_dict()["entries"]]
        assert ladders == ["numerics", "physics"]

    def test_max_actions_bounds_cascade(self):
        from repro.resilience import (DegradationController,
                                      DegradationPolicy)
        from repro.solvers.euler1d import Euler1DSolver
        s = Euler1DSolver(np.linspace(0.0, 1.0, 21))
        s.set_initial(1.0, 0.0, 1.0)
        ctl = DegradationController(DegradationPolicy(max_actions=1))
        assert ctl.degrade(s, step=0, cells=[(5,)], reason="one")
        assert not ctl.degrade(s, step=1, cells=[(15,)], reason="two")


class TestDegradationCascadeAcceptance:
    """The PR's acceptance scenario: a persistent density corruption
    that kills the plain rollback ladder must complete end-to-end once
    the degradation cascade is armed."""

    POLICY = dict(max_retries=1, cfl_backoff=0.8, cfl_min=0.2)

    @staticmethod
    def _faults():
        fi = FaultInjector()
        fi.inject_perturbation(step=10, cell=(4, 6), component=0,
                               factor=1e-4, persistent=True)
        return fi

    def test_aborts_without_degradation(self):
        s = _make_reacting_small()
        with pytest.raises(CatError) as ei:
            s.run(n_steps=40, cfl=0.4,
                  resilience=RetryPolicy(**self.POLICY),
                  faults=self._faults())
        # the exhausted ladder attaches its FailureReport
        assert getattr(ei.value, "report", None) is not None

    def test_completes_with_degradation(self):
        from repro.resilience import DegradationPolicy
        s = _make_reacting_small()
        s.run(n_steps=40, cfl=0.4, resilience=RetryPolicy(**self.POLICY),
              faults=self._faults(), watchdog=True,
              degradation=DegradationPolicy(promote_after=15))
        assert s.steps == 40
        led = s.degradation_ledger.to_dict()
        assert led["n_demotions"] >= 1
        assert led["entries"][0]["ladder"] == "numerics"
        assert led["entries"][0]["rung"] == "first_order"
        assert led["entries"][0]["n_cells"] > 0
        assert led["n_promotions"] >= 1          # re-promotion recorded
        assert s.quarantined_cells is not None
        assert s.watchdog_events                 # audit trail present

    def test_convergence_error_enters_retry_ladder(self):
        """A mid-march ConvergenceError (implicit sub-solve dying on a
        corrupted state) must be retryable, not a raw abort."""
        s = _make_reacting_small()
        with pytest.raises(StabilityError, match="retry ladder"):
            s.run(n_steps=40, cfl=0.4,
                  resilience=RetryPolicy(**self.POLICY),
                  faults=self._faults())
