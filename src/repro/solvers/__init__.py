"""The four CAT solver families (plus shared shock/stagnation relations).

* :mod:`repro.solvers.shock` — normal/oblique shock and isentropic
  relations, ideal and equilibrium real gas.
* :mod:`repro.solvers.euler1d` — 1-D finite-volume Euler (validation).
* :mod:`repro.solvers.shock_relaxation` — Park-style 1-D post-shock
  thermochemical relaxation (NS approach #1; Fig. 7).
* :mod:`repro.solvers.euler2d` / :mod:`repro.solvers.ns2d` — axisymmetric
  time-marching shock-capturing solvers, ideal or equilibrium air
  (E of E+BL, and NS approach #2; Figs. 4 and 9).
* :mod:`repro.solvers.boundary_layer` — compressible laminar boundary
  layer with equilibrium chemistry and catalytic walls (BL of E+BL).
* :mod:`repro.solvers.vsl` — viscous-shock-layer stagnation solution with
  radiation coupling (Figs. 2, 3).
* :mod:`repro.solvers.pns` — parabolized space-marching windward-heating
  solver (Fig. 6).
"""

from repro.solvers.shock import (normal_shock_ideal, oblique_shock_beta,
                                 equilibrium_normal_shock,
                                 pitot_pressure_ideal, isentropic_ratios)

__all__ = ["normal_shock_ideal", "oblique_shock_beta",
           "equilibrium_normal_shock", "pitot_pressure_ideal",
           "isentropic_ratios"]
