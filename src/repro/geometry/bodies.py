"""Analytic axisymmetric bodies.

Bodies are parameterised by surface arc length ``s`` measured from the
stagnation point along the generator.  Each body reports:

* ``point(s) -> (x, r)`` — axial and radial coordinates,
* ``angle(s)`` — local surface inclination theta (angle between the surface
  tangent and the body axis; pi/2 at a blunt stagnation point),
* ``curvature(s)`` — generator curvature kappa(s),

all vectorised.  These are exactly the inputs the VSL/BL/PNS marching
solvers need (metric coefficients and the r(s) axisymmetric spreading term).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import InputError

__all__ = ["AxisymBody", "Sphere", "Hemisphere", "SphereCone", "Biconic"]


class AxisymBody(abc.ABC):
    """Axisymmetric body described by its generator curve."""

    #: Nose radius at the stagnation point [m].
    nose_radius: float
    #: Total generator arc length available [m].
    s_max: float

    @abc.abstractmethod
    def point(self, s):
        """Return (x, r) coordinates at arc length s."""

    @abc.abstractmethod
    def angle(self, s):
        """Surface inclination theta(s) [rad]."""

    @abc.abstractmethod
    def curvature(self, s):
        """Generator curvature [1/m]."""

    def radius(self, s):
        """Radial coordinate r(s) (axisymmetric spreading metric)."""
        return self.point(s)[1]

    def arc_grid(self, n: int, s_end: float | None = None):
        """Uniform arc-length stations from the stagnation point."""
        s_end = self.s_max if s_end is None else s_end
        if s_end > self.s_max + 1e-12:
            raise InputError(f"s_end {s_end} beyond body length "
                             f"{self.s_max}")
        return np.linspace(0.0, s_end, n)


class Sphere(AxisymBody):
    """Full sphere of radius rn (generator: quarter to half circle)."""

    def __init__(self, nose_radius: float, *, max_angle_deg: float = 90.0):
        if nose_radius <= 0:
            raise InputError("nose_radius must be positive")
        self.nose_radius = nose_radius
        self._phi_max = np.deg2rad(max_angle_deg)
        self.s_max = nose_radius * self._phi_max

    def point(self, s):
        phi = np.asarray(s, dtype=float) / self.nose_radius
        x = self.nose_radius * (1.0 - np.cos(phi))
        r = self.nose_radius * np.sin(phi)
        return x, r

    def angle(self, s):
        phi = np.asarray(s, dtype=float) / self.nose_radius
        return np.pi / 2.0 - phi

    def curvature(self, s):
        return np.full_like(np.asarray(s, dtype=float),
                            1.0 / self.nose_radius)


class Hemisphere(Sphere):
    """Hemisphere — the Fig. 9 Mach-20 test body."""

    def __init__(self, nose_radius: float):
        super().__init__(nose_radius, max_angle_deg=90.0)


class SphereCone(AxisymBody):
    """Spherically blunted cone (the classic entry-probe forebody).

    Parameters
    ----------
    nose_radius:
        Spherical nose radius [m].
    half_angle_deg:
        Cone half angle [deg].
    length:
        Axial length from nose tip to base [m].
    """

    def __init__(self, nose_radius: float, half_angle_deg: float,
                 length: float):
        if not (0 < half_angle_deg < 90):
            raise InputError("cone half angle must be in (0, 90) deg")
        self.nose_radius = nose_radius
        self.half_angle = np.deg2rad(half_angle_deg)
        self.length = length
        # sphere-cone tangency at phi_t = pi/2 - half_angle
        self._phi_t = np.pi / 2.0 - self.half_angle
        self._s_t = nose_radius * self._phi_t
        x_t = nose_radius * (1.0 - np.cos(self._phi_t))
        if length <= x_t:
            raise InputError("length shorter than the spherical cap")
        self._x_t = x_t
        self._r_t = nose_radius * np.sin(self._phi_t)
        cone_run = (length - x_t) / np.cos(self.half_angle)
        self.s_max = self._s_t + cone_run

    def point(self, s):
        s = np.asarray(s, dtype=float)
        phi = np.minimum(s, self._s_t) / self.nose_radius
        x_sph = self.nose_radius * (1.0 - np.cos(phi))
        r_sph = self.nose_radius * np.sin(phi)
        ds = np.maximum(s - self._s_t, 0.0)
        x_cone = self._x_t + ds * np.cos(self.half_angle)
        r_cone = self._r_t + ds * np.sin(self.half_angle)
        on_cone = s > self._s_t
        return (np.where(on_cone, x_cone, x_sph),
                np.where(on_cone, r_cone, r_sph))

    def angle(self, s):
        s = np.asarray(s, dtype=float)
        phi = np.minimum(s, self._s_t) / self.nose_radius
        return np.where(s > self._s_t, self.half_angle, np.pi / 2.0 - phi)

    def curvature(self, s):
        s = np.asarray(s, dtype=float)
        return np.where(s > self._s_t, 0.0, 1.0 / self.nose_radius)


class Biconic(AxisymBody):
    """Spherically blunted biconic (the PNS test shape of Ref. 19).

    A nose sphere followed by two conical frusta with decreasing half
    angles.
    """

    def __init__(self, nose_radius: float, angle1_deg: float,
                 length1: float, angle2_deg: float, length2: float):
        if angle2_deg >= angle1_deg:
            raise InputError("biconic requires angle2 < angle1")
        self._fore = SphereCone(nose_radius, angle1_deg, length1)
        self.nose_radius = nose_radius
        self._th2 = np.deg2rad(angle2_deg)
        self._s1 = self._fore.s_max
        x1, r1 = self._fore.point(self._s1)
        self._x1, self._r1 = float(x1), float(r1)
        self.length = length1 + length2
        self.s_max = self._s1 + length2 / np.cos(self._th2)

    def point(self, s):
        s = np.asarray(s, dtype=float)
        x_f, r_f = self._fore.point(np.minimum(s, self._s1))
        ds = np.maximum(s - self._s1, 0.0)
        x_a = self._x1 + ds * np.cos(self._th2)
        r_a = self._r1 + ds * np.sin(self._th2)
        aft = s > self._s1
        return np.where(aft, x_a, x_f), np.where(aft, r_a, r_f)

    def angle(self, s):
        s = np.asarray(s, dtype=float)
        return np.where(s > self._s1, self._th2,
                        self._fore.angle(np.minimum(s, self._s1)))

    def curvature(self, s):
        s = np.asarray(s, dtype=float)
        return np.where(s > self._s1, 0.0,
                        self._fore.curvature(np.minimum(s, self._s1)))
