"""Titan entry-probe aerothermal design study (the Ref. 15 scenario).

End-to-end mission analysis with the full CAT stack: ballistic entry into
the N2/CH4 atmosphere, equilibrium viscous-shock-layer stagnation
solutions along the trajectory, CN-dominated tangent-slab radiation, and a
first-cut TPS sizing from the integrated heat load.

Run:  python examples/titan_probe_design.py            (quick)
      python examples/titan_probe_design.py --full     (denser sampling)
"""

import sys

import numpy as np

from repro.atmosphere import TitanAtmosphere
from repro.experiments.fig2_titan_heating import run as run_pulses
from repro.postprocess.ascii_plot import ascii_plot
from repro.postprocess.tables import format_table

#: Effective heat of ablation of a carbon-phenolic-class TPS [J/kg].
Q_STAR = 1.1e8
#: TPS material density [kg/m^3].
RHO_TPS = 1450.0


def main(quick: bool = True):
    res = run_pulses(quick=quick, n_points=8 if quick else 16)
    t = res["t"]
    q_net = res["q_conv_net"] + res["q_rad"]
    load = float(np.trapezoid(q_net, t))
    recession = load / (Q_STAR * RHO_TPS)
    i = int(np.argmax(q_net))

    print("Titan probe entry (12 km/s, -40 deg, R_n = 0.64 m, "
          "N2 + 5% CH4 atmosphere)")
    print(ascii_plot(
        [(t, res["q_conv_net"] / 1e4, "convective (blown)"),
         (t, res["q_rad"] / 1e4, "radiative (CN violet)")],
        xlabel="time [s]", ylabel="q [W/cm^2]", height=16))
    rows = [
        ("peak total heating [W/cm^2]", float(q_net[i] / 1e4)),
        ("  at time [s]", float(t[i])),
        ("  at altitude [km]", float(res["h"][i] / 1e3)),
        ("  at velocity [km/s]", float(res["V"][i] / 1e3)),
        ("radiative fraction at peak",
         float(res["q_rad"][i] / q_net[i])),
        ("stagnation heat load [J/cm^2]", load / 1e4),
        ("ablative recession estimate [mm]", recession * 1e3),
        ("shock standoff at peak [cm]",
         float(res["solutions"][i].standoff * 100)),
        ("stagnation pressure at peak [kPa]",
         float(res["solutions"][i].p_stag / 1e3)),
    ]
    print(format_table(["quantity", "value"], rows, floatfmt=".4g"))
    sol = res["solutions"][i]
    if sol.q_rad > 0.3 * sol.q_conv:
        print("\nDesign driver: radiative heating is a first-order load "
              "(the paper's Titan/Galileo-class result) — the TPS must "
              "be sized for the CN-violet pulse, not convection alone.")


if __name__ == "__main__":
    main(quick="--full" not in sys.argv)
