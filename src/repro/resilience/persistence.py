"""Durable, crash-safe run persistence (checkpoint/restart on disk).

PR 1's :class:`~repro.resilience.supervisor.RunSupervisor` survives
*numerical* failure with in-memory rollback; this module survives
*process* failure — SIGKILL, OOM, node preemption — the way production
hypersonic codes do, by treating restart files as first-class state.

A durable snapshot is two files in a checkpoint directory:

* ``ckpt-<seq>.npz`` — every array of the solver's marching state plus
  the constructor arrays needed to rebuild it (grid nodes, cell edges),
* ``ckpt-<seq>.json`` — the manifest: schema version, fully-qualified
  solver class, a JSON config whose SHA-256 **fingerprint** guards
  against resuming the wrong run, step/time clocks, march/run bookkeeping
  and a per-array SHA-256 checksum table.

Writes are atomic and ordered (payload → fsync → rename, then manifest →
fsync → rename, then directory fsync): the manifest is the commit record,
so a crash at any instant leaves either the previous generation intact or
a torn tail that verification rejects.  A keep-last-K retention ladder
bounds disk use, and :meth:`SnapshotStore.load_latest` walks generations
newest-first, checksumming every array and falling back a generation on
any corruption (torn write, truncation, bit flip — each scripted by
:meth:`~repro.resilience.faults.FaultInjector.inject_io_fault` so every
recovery path is tested).

Solvers opt in through a three-method protocol —

* ``persist_config()`` → JSON-able constructor fingerprint,
* ``persist_arrays()`` → constructor ndarrays (grid nodes, ...),
* ``from_persist(config, arrays)`` → rebuilt, state-less instance —

on top of the PR-1 ``get_state()``/``set_state()`` round-trip, which must
be *complete*: a restored solver replays the exact trajectory bit for
bit.  :func:`resume_run` is the user-facing entry point: point it at a
checkpoint directory and it rebuilds the solver from the manifest and
keeps marching where the dead process stopped.
"""

from __future__ import annotations

import hashlib
import importlib
import io
import json
import os
import re
import time
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError

__all__ = ["MANIFEST_SCHEMA_VERSION", "PersistencePolicy", "SnapshotStore",
           "LoadedSnapshot", "current_save_observer", "resume_run",
           "set_save_observer", "solver_fingerprint"]

MANIFEST_SCHEMA_VERSION = 1

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.json$")


#: Process-global observer called around every SnapshotStore.save
#: commit: ``fn(phase, store=, seq=, completed=)`` with phase
#: ``"begin"`` (before the payload write; seq is None) and ``"end"``
#: (after the commit; seq is the committed generation).  The async-job
#: executor installs one so a marching job's state machine can journal
#: fenced ``running → checkpointing → running`` transitions without the
#: solver or supervisor knowing jobs exist.  Observers must not raise.
_SAVE_OBSERVER = None


def set_save_observer(fn) -> None:
    """Install (or clear, with None) the process-global save observer."""
    global _SAVE_OBSERVER
    _SAVE_OBSERVER = fn


def current_save_observer():
    """The save observer installed for this process, if any."""
    return _SAVE_OBSERVER


@dataclass
class PersistencePolicy:
    """Knobs of the durable snapshot ladder.

    Attributes
    ----------
    dir:
        Checkpoint directory (created on first write).
    every_n_steps:
        Successful marching steps between durable snapshots.
    keep_last:
        Generations retained on disk; older pairs are deleted after each
        commit.  Must be >= 2 for corruption fall-back to have somewhere
        to land.
    resume:
        When True (default) a supervised march first looks for a valid
        snapshot in ``dir`` and continues from it instead of starting
        over.
    fsync:
        Fsync files and directory on commit (disable only in tests that
        hammer tmpfs).
    """

    dir: str | os.PathLike
    every_n_steps: int = 50
    keep_last: int = 3
    resume: bool = True
    fsync: bool = True


@dataclass
class LoadedSnapshot:
    """A verified snapshot pulled off disk."""

    manifest: dict
    state: dict
    construct_arrays: dict

    @property
    def seq(self) -> int:
        return int(self.manifest["seq"])

    @property
    def completed(self) -> bool:
        return bool(self.manifest.get("completed"))

    @property
    def converged(self) -> bool:
        return bool(self.manifest.get("converged"))

    @property
    def march(self) -> dict:
        return dict(self.manifest.get("march") or {})

    @property
    def run_kwargs(self) -> dict:
        return dict(self.manifest.get("run") or {})


# ----------------------------------------------------------------------
# fingerprints and payload encoding
# ----------------------------------------------------------------------

def _class_path(cls) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def solver_fingerprint(solver_or_cls, config: dict | None = None) -> str:
    """SHA-256 over the solver class path + canonical persist config.

    Two runs share a fingerprint iff they would rebuild the same solver;
    resuming into a mismatched directory is refused, not silently wrong.
    """
    if config is None:
        config = solver_or_cls.persist_config()
        cls = type(solver_or_cls)
    else:
        cls = (solver_or_cls if isinstance(solver_or_cls, type)
               else type(solver_or_cls))
    blob = _canonical_json({"class": _class_path(cls), "config": config})
    return hashlib.sha256(blob.encode()).hexdigest()


def _sha256_array(a: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()


def _encode_payload(state: dict, construct: dict):
    """Split solver state + constructor arrays into (arrays, entry table).

    Every value lands in the ``.npz`` as an ndarray (scalars as 0-d, float
    lists as 1-d) so restores are lossless down to the bit; the manifest
    entry table remembers each value's original python type.
    """
    arrays: dict[str, np.ndarray] = {}
    entries: dict[str, dict] = {}
    for section, mapping in (("state", state), ("construct", construct)):
        for name, v in mapping.items():
            key = f"{section}::{name}"
            if v is None:
                entries[key] = {"type": "none"}
                continue
            if isinstance(v, np.ndarray):
                a, typ = v, "ndarray"
            elif isinstance(v, bool):
                a, typ = np.asarray(v), "bool"
            elif isinstance(v, (int, np.integer)):
                a, typ = np.asarray(int(v)), "int"
            elif isinstance(v, (float, np.floating)):
                a, typ = np.asarray(float(v)), "float"
            elif isinstance(v, (list, tuple)):
                a, typ = np.asarray(v, dtype=float), "list"
            else:
                raise CheckpointError(
                    f"cannot persist {section} entry {name!r} of type "
                    f"{type(v).__name__}")
            arrays[key] = a
            entries[key] = {"type": typ, "sha256": _sha256_array(a),
                            "shape": list(a.shape), "dtype": str(a.dtype)}
    return arrays, entries


def _decode_payload(npz, entries: dict):
    """Inverse of :func:`_encode_payload` (checksums already verified)."""
    state: dict = {}
    construct: dict = {}
    for key, meta in entries.items():
        section, name = key.split("::", 1)
        out = state if section == "state" else construct
        typ = meta["type"]
        if typ == "none":
            out[name] = None
            continue
        a = npz[key]
        if typ == "ndarray":
            out[name] = a
        elif typ == "bool":
            out[name] = bool(a)
        elif typ == "int":
            out[name] = int(a)
        elif typ == "float":
            out[name] = float(a)
        elif typ == "list":
            out[name] = [float(x) for x in np.atleast_1d(a)]
        else:
            raise CheckpointError(f"unknown payload type {typ!r} for "
                                  f"{key!r}")
    return state, construct


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

class SnapshotStore:
    """Generation ladder of atomic, checksummed snapshots in one
    directory.

    Parameters
    ----------
    policy:
        A :class:`PersistencePolicy`, or just a directory path (defaults
        apply).
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`; armed
        IO faults corrupt the matching commit *after* it lands, so load
        verification is tested against real on-disk damage.
    """

    def __init__(self, policy, *, faults=None):
        if not isinstance(policy, PersistencePolicy):
            policy = PersistencePolicy(dir=policy)
        if policy.keep_last < 2:
            raise CheckpointError("keep_last must be >= 2 (corruption "
                                  "fall-back needs a previous generation)")
        self.policy = policy
        self.dir = os.fspath(policy.dir)
        self.faults = faults
        #: per-generation rejection records from the last load, newest
        #: first — the triage trail when corruption recovery kicked in.
        self.recovery_log: list[dict] = []

    # -- paths ----------------------------------------------------------

    def _paths(self, seq: int):
        stem = f"ckpt-{seq:08d}"
        return (os.path.join(self.dir, stem + ".npz"),
                os.path.join(self.dir, stem + ".json"))

    def sequences(self) -> list[int]:
        """Committed generation numbers, ascending (manifest = commit)."""
        try:
            names = os.listdir(self.dir)
        except FileNotFoundError:
            return []
        seqs = [int(m.group(1)) for n in names
                if (m := _CKPT_RE.match(n))]
        return sorted(seqs)

    def _fsync_dir(self):
        if not self.policy.fsync:
            return
        fd = os.open(self.dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _atomic_write(self, path: str, data: bytes):
        tmp = os.path.join(self.dir, f".tmp-{os.path.basename(path)}")
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            if self.policy.fsync:
                os.fsync(f.fileno())
        os.replace(tmp, path)

    def _commit_exclusive(self, path: str, data: bytes) -> bool:
        """Commit ``data`` at ``path`` only if no one else has: the
        ``os.link`` fails on an existing target, so of two concurrent
        writers racing one generation number exactly one commits and
        the loser moves on to the next seq.  (The farm can produce such
        co-writers: an orphaned sandbox child still marching while its
        reclaimed job's successor marches the same deterministic
        trajectory into the same store.)"""
        tmp = os.path.join(self.dir,
                           f".tmp-{os.getpid()}-{os.path.basename(path)}")
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            if self.policy.fsync:
                os.fsync(f.fileno())
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            try:
                os.remove(tmp)
            except OSError:
                pass
        return True

    # -- save -----------------------------------------------------------

    def save(self, solver, *, march: dict | None = None,
             run: dict | None = None, completed: bool = False,
             converged: bool = False, label: str | None = None) -> int:
        """Commit one durable snapshot of ``solver``; returns its seq.

        Ordering makes the write crash-safe: payload tempfile → fsync →
        rename, manifest tempfile → fsync → exclusive hard link (the
        commit point — concurrent writers racing one generation number
        settle there, the loser retries on the next seq), directory
        fsync, *then* retention trims old generations.
        """
        observer = _SAVE_OBSERVER
        if observer is not None:
            observer("begin", store=self, seq=None, completed=completed)
        config = solver.persist_config()
        construct = (solver.persist_arrays()
                     if hasattr(solver, "persist_arrays") else {})
        arrays, entries = _encode_payload(solver.get_state(), construct)
        os.makedirs(self.dir, exist_ok=True)
        seqs = self.sequences()
        seq = (seqs[-1] + 1) if seqs else 0
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        while True:
            npz_path, man_path = self._paths(seq)
            self._atomic_write(npz_path, buf.getvalue())
            manifest = {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "seq": seq,
                "label": label or type(solver).__name__,
                "solver_class": _class_path(type(solver)),
                "config": config,
                "fingerprint": solver_fingerprint(type(solver), config),
                "step": int(getattr(solver, "steps", 0) or 0),
                "t": float(getattr(solver, "t", 0.0) or 0.0),
                "march": dict(march or {}),
                "run": dict(run or {}),
                "completed": bool(completed),
                "converged": bool(converged),
                "payload": entries,
                "npz": os.path.basename(npz_path),
                "created": time.time(),
            }
            if self._commit_exclusive(
                    man_path, json.dumps(manifest, indent=1).encode()):
                break
            # a concurrent writer committed this generation between our
            # sequences() scan and the link: take the next number (at
            # worst the race leaves one generation whose payload the
            # checksum rejects at load, and the walk falls back)
            seq += 1
        self._fsync_dir()
        if self.faults is not None:
            self.faults.corrupt_snapshot(npz_path, man_path)
        self._retain()
        if observer is not None:
            observer("end", store=self, seq=seq, completed=completed)
        return seq

    def _retain(self):
        for seq in self.sequences()[:-self.policy.keep_last]:
            for path in self._paths(seq):
                try:
                    os.remove(path)
                except OSError:
                    pass

    # -- load -----------------------------------------------------------

    def _verify_one(self, seq: int) -> LoadedSnapshot:
        npz_path, man_path = self._paths(seq)
        with open(man_path, "rb") as f:
            manifest = json.loads(f.read().decode())
        if manifest.get("schema_version") != MANIFEST_SCHEMA_VERSION:
            raise CheckpointError(
                f"manifest schema {manifest.get('schema_version')!r} != "
                f"{MANIFEST_SCHEMA_VERSION}")
        entries = manifest["payload"]
        with np.load(npz_path) as npz:
            loaded = {k: np.array(npz[k]) for k in npz.files}
        for key, meta in entries.items():
            if meta["type"] == "none":
                continue
            if key not in loaded:
                raise CheckpointError(f"payload array {key!r} missing")
            a = loaded[key]
            if (list(a.shape) != meta["shape"]
                    or str(a.dtype) != meta["dtype"]):
                raise CheckpointError(f"payload array {key!r} has wrong "
                                      f"shape/dtype")
            if _sha256_array(a) != meta["sha256"]:
                raise CheckpointError(f"payload array {key!r} failed its "
                                      f"SHA-256 checksum")
        state, construct = _decode_payload(loaded, entries)
        return LoadedSnapshot(manifest=manifest, state=state,
                              construct_arrays=construct)

    def load_latest(self, *, solver=None) -> LoadedSnapshot | None:
        """Newest snapshot that verifies, or None for an empty/virgin dir.

        Walks generations newest-first; any corrupt generation is logged
        to :attr:`recovery_log` and skipped.  When every committed
        generation is damaged, raises :class:`CheckpointError` with the
        full rejection trail.  With ``solver`` given, additionally
        demands a fingerprint match (wrong-directory protection) and
        applies the state via ``set_state``.
        """
        self.recovery_log = []
        seqs = self.sequences()
        if not seqs:
            return None
        snap = None
        for seq in reversed(seqs):
            try:
                snap = self._verify_one(seq)
                break
            except (OSError, ValueError, KeyError, EOFError,
                    zipfile.BadZipFile, CheckpointError) as err:
                self.recovery_log.append(
                    {"seq": seq, "reason": f"{type(err).__name__}: {err}"})
        if snap is None:
            raise CheckpointError(
                f"no loadable snapshot in {self.dir!r}: every generation "
                f"failed verification", path=self.dir,
                recovery_log=self.recovery_log)
        if solver is not None:
            want = solver_fingerprint(solver)
            got = snap.manifest.get("fingerprint")
            if want != got:
                raise CheckpointError(
                    f"snapshot fingerprint mismatch in {self.dir!r}: the "
                    f"directory holds a "
                    f"{snap.manifest.get('solver_class')} run with a "
                    f"different configuration", path=self.dir)
            solver.set_state(snap.state)
        return snap


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------

def _import_class(path: str):
    mod_name, _, qualname = path.partition(":")
    obj = importlib.import_module(mod_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def rebuild_solver(snap: LoadedSnapshot):
    """Reconstruct a state-loaded solver instance from a snapshot."""
    cls = _import_class(snap.manifest["solver_class"])
    if not hasattr(cls, "from_persist"):
        raise CheckpointError(
            f"{snap.manifest['solver_class']} does not implement the "
            f"persistence protocol (from_persist)")
    solver = cls.from_persist(snap.manifest["config"],
                              snap.construct_arrays)
    solver.set_state(snap.state)
    return solver


def resume_run(dir, *, policy: PersistencePolicy | None = None,
               resilience=None, faults=None):
    """Reconstruct the solver persisted in ``dir`` and keep marching.

    Loads the newest valid snapshot (checksum-verified, falling back a
    generation on corruption), rebuilds the solver class named in the
    manifest via ``from_persist``, restores its state and — unless the
    snapshot is marked completed — re-enters the recorded ``run(...)``
    call under the same persistence policy, so the continued march keeps
    checkpointing and lands bit-identical to an uninterrupted run.

    Returns the solver (marched to completion, or as-loaded when the
    run had already completed).
    """
    if policy is None:
        policy = PersistencePolicy(dir=dir)
    store = SnapshotStore(policy, faults=faults)
    snap = store.load_latest()
    if snap is None:
        raise CheckpointError(f"no snapshot found in {os.fspath(dir)!r}",
                              path=os.fspath(dir))
    solver = rebuild_solver(snap)
    if snap.completed:
        solver.converged = snap.converged
        return solver
    solver.run(**snap.run_kwargs, resilience=resilience, faults=faults,
               persist=policy)
    return solver
