"""Benchmark: regenerate Fig. 7 (two-temperature relaxation zone)."""

import numpy as np

from repro.experiments import fig7_shock_relaxation


def test_bench_fig7_shock_relaxation(once):
    res = once(fig7_shock_relaxation.run, True)
    p = res["profile"]
    db = res["db"]
    # --- the paper's content --------------------------------------------
    # T jumps to the frozen value (~48000 K for 10 km/s into 300 K air)
    assert 40000.0 < res["T_frozen"] < 55000.0
    # Tv starts at the freestream value and rises
    assert p.Tv[0] < 500.0
    assert p.Tv.max() > 5000.0
    # both temperatures merge at the equilibrium plateau (~9000-10000 K)
    assert abs(res["T_equilibrium"] - res["Tv_equilibrium"]) < 100.0
    assert 8000.0 < res["T_equilibrium"] < 11000.0
    # N2 dissociates through the zone
    jN2 = db.index["N2"]
    assert p.y[-1, jN2] < 0.2 * p.y[0, jN2]
    # electrons appear (ionizing air)
    assert p.electron_number_density.max() > 1e18
    # mass flux is conserved along the zone (DAE closure check)
    m = p.rho * p.u
    assert np.max(np.abs(m / m[0] - 1.0)) < 1e-6
    print("\nFig. 7 series: x [mm], T [K], Tv [K], y_N2, n_e [1/m^3]")
    for frac in (0, 10, 30, 60, 100, 150, 200, -1):
        i = frac if frac >= 0 else len(p.x) - 1
        if i >= len(p.x):
            continue
        print(f"  {p.x[i] * 1e3:8.3f}  {p.T[i]:7.0f}  {p.Tv[i]:7.0f}  "
              f"{p.y[i, jN2]:.3f}  "
              f"{p.electron_number_density[i]:.2e}")
