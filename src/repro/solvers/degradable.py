"""Shared degradation + progress protocol for the marching solvers.

:class:`QuarantineMixin` gives a solver the numerics-ladder half of the
:mod:`repro.resilience.degradation` protocol: a boolean
``quarantined_cells`` mask (shaped like the cell grid) that the solver's
reconstruction passes to
:func:`repro.numerics.muscl.muscl_interface_states` as
``first_order_mask``.  The mask is *not* part of the resilience
``get_state``/``set_state`` protocol on purpose — a rollback restores
the flow field but keeps the quarantine, which is what makes the
degraded retry different from the ones that failed.

Since the async-job subsystem (PR 10) the mixin also carries the
solvers' **progress hook**: :meth:`QuarantineMixin.progress` returns a
small JSON-able snapshot (step counter, physical time, latest residual)
that :class:`~repro.resilience.supervisor.RunSupervisor` merges into
every heartbeat it publishes, so ``python -m repro jobs status`` can
show live march progress without ever touching the child process.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuarantineMixin"]


class QuarantineMixin:
    """Numerics-ladder degradation: local first-order quarantine zone."""

    #: Boolean cell mask of the quarantine zone (None = none); masked
    #: cells reconstruct first order.
    quarantined_cells = None

    def quarantine(self, mask=None) -> int:
        """Flag cells for first-order reconstruction; ``None`` flags the
        whole domain.  Returns the number of *newly* flagged cells (0
        when the mask adds nothing — the degradation controller then
        falls through to the next rung)."""
        shape = np.asarray(self.U).shape[:-1]
        if mask is None:
            mask = np.ones(shape, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != shape:
            raise ValueError(f"quarantine mask shape {mask.shape} != "
                             f"cell shape {shape}")
        if self.quarantined_cells is None:
            self.quarantined_cells = mask.copy()
            return int(mask.sum())
        new = mask & ~self.quarantined_cells
        self.quarantined_cells = self.quarantined_cells | mask
        return int(new.sum())

    def clear_quarantine(self):
        """Lift the quarantine entirely (full re-promotion)."""
        self.quarantined_cells = None

    def progress(self) -> dict:
        """Live march-progress snapshot for the heartbeat channel."""
        out = {"steps": int(getattr(self, "steps", 0) or 0),
               "t": float(getattr(self, "t", 0.0) or 0.0)}
        hist = getattr(self, "residual_history", None)
        if hist is not None and len(hist):
            out["residual"] = float(hist[-1])
        return out
