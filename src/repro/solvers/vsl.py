"""Viscous-shock-layer stagnation solution (the RASLE/HYVIS/COLTS role).

The VSL codes were "the major tools for providing aerothermal flowfield
environments for the windward forebody shock-layer region" — equilibrium
chemistry, radiation transport by tangent slab, convective heating from
the viscous sublayer.  This solver assembles exactly that stack for the
stagnation streamline of an axisymmetric forebody:

1. equilibrium normal shock at the flight condition (shock slip ignored),
2. stagnation-region edge state behind the shock (Rayleigh-pitot-like
   compression to the stagnation pressure, at constant total enthalpy),
3. Lees–Dorodnitsyn similarity solution of the viscous sublayer with the
   real-gas C(h) = (rho mu)/(rho mu)_e closure -> convective flux,
4. shock-layer temperature/species profiles: the viscous-layer enthalpy
   profile blended into the uniform inviscid layer, all states from the
   Gibbs equilibrium solver at the stagnation pressure (-> Fig. 3),
5. tangent-slab radiative flux over the profile (-> Fig. 2), including
   optional radiation-energy-loss cooling of the layer (one-pass
   correction).

Outputs the stagnation convective and radiative heat fluxes plus the
resolved profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CatError, InputError
from repro.heating.fay_riddell import newtonian_velocity_gradient
from repro.numerics.interp import interp_columns
from repro.radiation.spectra import EmissionModel
from repro.radiation.tangent_slab import tangent_slab_flux
from repro.solvers.boundary_layer import StagnationSimilarityBL
from repro.solvers.shock import equilibrium_normal_shock
from repro.thermo.equilibrium import EquilibriumGas
from repro.transport.properties import TransportModel

__all__ = ["StagnationVSL", "VSLSolution"]


@dataclass
class VSLSolution:
    """Stagnation-line VSL solution."""

    q_conv: float                 #: convective wall flux [W/m^2]
    q_rad: float                  #: radiative wall flux [W/m^2]
    standoff: float               #: shock standoff [m]
    y: np.ndarray                 #: distance from wall [m]
    T: np.ndarray                 #: temperature profile [K]
    h: np.ndarray                 #: static enthalpy profile [J/kg]
    composition: np.ndarray       #: equilibrium mass fractions (ny, ns)
    p_stag: float                 #: stagnation pressure [Pa]
    shock: dict = field(default_factory=dict)
    q_rad_spectrum: np.ndarray | None = None
    wavelengths: np.ndarray | None = None

    def mole_fractions(self, db):
        return db.mass_to_mole(np.maximum(self.composition, 1e-30))


class StagnationVSL:
    """Equilibrium viscous-shock-layer solver for a blunt forebody."""

    def __init__(self, gas: EquilibriumGas, *, nose_radius: float,
                 lewis: float = 1.4, prandtl: float = 0.71,
                 include_lines: bool = True):
        if nose_radius <= 0:
            raise InputError("nose radius must be positive")
        self.gas = gas
        self.db = gas.db
        self.rn = nose_radius
        self.prandtl = prandtl
        self.transport = TransportModel(self.db, lewis=lewis)
        self.emission = EmissionModel(self.db,
                                      include_lines=include_lines)

    # ------------------------------------------------------------------

    def solve(self, *, rho_inf, T_inf, V, T_wall=1500.0,
              n_profile=80, radiative_cooling=True,
              lambda_range=(0.2e-6, 1.2e-6), n_lambda=400) -> VSLSolution:
        """Solve the stagnation shock layer for one flight condition.

        Parameters
        ----------
        rho_inf, T_inf, V:
            Freestream density [kg/m^3], temperature [K], speed [m/s].
        T_wall:
            Wall temperature [K].
        radiative_cooling:
            Apply the one-pass energy-loss correction: the layer enthalpy
            is reduced by the radiated energy per unit mass transit.

        Any toolkit failure inside the stack (shock solve, Gibbs
        equilibrium, similarity shoot, radiation) is re-raised with a
        :class:`~repro.resilience.FailureReport` attached carrying the
        flight condition — the diagnostic bundle production triage
        starts from.
        """
        try:
            return self._solve_impl(
                rho_inf=rho_inf, T_inf=T_inf, V=V, T_wall=T_wall,
                n_profile=n_profile, radiative_cooling=radiative_cooling,
                lambda_range=lambda_range, n_lambda=n_lambda)
        except CatError as err:
            if err.report is None:
                from repro.resilience import FailureReport
                err.report = FailureReport(
                    label="vsl", error=str(err),
                    config={"rho_inf": float(rho_inf),
                            "T_inf": float(T_inf), "V": float(V),
                            "T_wall": float(T_wall),
                            "nose_radius": float(self.rn),
                            "n_profile": int(n_profile)})
            raise

    def _solve_impl(self, *, rho_inf, T_inf, V, T_wall, n_profile,
                    radiative_cooling, lambda_range, n_lambda):
        gas = self.gas
        shock = equilibrium_normal_shock(gas, rho_inf, T_inf, V)
        h0 = shock["h1"] + 0.5 * V**2
        p_stag = shock["p2"] + shock["rho2"] * shock["u2"] ** 2
        # stagnation-edge state at (h0, p_stag)
        from repro.solvers.shock import _solve_T_of_h_p
        T_e = _solve_T_of_h_p(gas, h0, p_stag, shock["T2"])
        y_e, rho_e_arr = gas.composition_T_p(np.array(T_e),
                                             np.array(p_stag))
        rho_e = float(rho_e_arr)
        mu_e = float(self.transport.viscosity(np.array(T_e), y_e))
        # shock standoff from the density-ratio correlation
        eps = shock["eps"]
        standoff = 0.78 * self.rn * eps

        # ---- viscous sublayer (similarity) ----
        # tabulate the equilibrium (rho mu)(h) closure at p_stag once; the
        # shooting iteration then interpolates (thousands of evaluations)
        h_w = float(self._wall_enthalpy(T_wall, p_stag))
        T_tab = np.geomspace(max(0.5 * T_wall, 150.0), 1.15 * T_e, 48)
        y_tab, rho_tab = gas.composition_T_p(T_tab,
                                             np.full_like(T_tab, p_stag))
        h_tab = gas.mix.h_mass(T_tab, y_tab)
        mu_tab = self.transport.viscosity(T_tab, y_tab)
        rm_tab = rho_tab * mu_tab
        order = np.argsort(h_tab)
        h_tab, rm_tab = h_tab[order], rm_tab[order]

        def rho_mu_of_h(h):
            return np.interp(np.asarray(h, dtype=float), h_tab, rm_tab)

        K = newtonian_velocity_gradient(self.rn, p_stag, 0.0, rho_e)
        bl = StagnationSimilarityBL(h0e=h0, p_e=p_stag, rho_e=rho_e,
                                    mu_e=mu_e,
                                    rho_mu_of_h=rho_mu_of_h,
                                    Pr=self.prandtl)
        sol = bl.solve(h_w)
        q_conv = float(bl.heat_flux(h_w, K, solution=sol))

        # ---- physical profile across the layer ----
        # transform eta -> y in the sublayer, then extend uniformly to the
        # shock; the (h -> T) inversion reuses the closure table
        T_of_h = lambda h: np.interp(h, h_tab, T_tab[order])  # noqa: E731
        h_eta = np.maximum(sol.g, 1e-3) * h0
        T_eta = T_of_h(h_eta)
        y_eta, rho_eta = gas.composition_T_p(T_eta,
                                             np.full_like(T_eta, p_stag))
        # catlint: disable=CAT002 -- positive edge state over a
        # positive stagnation velocity gradient
        dy = np.sqrt(rho_e * mu_e / (2.0 * K)) / rho_eta
        y_phys = np.concatenate(([0.0],
                                 np.cumsum(0.5 * (dy[1:] + dy[:-1])
                                           * np.diff(sol.eta))))
        # compose with the uniform inviscid outer layer
        if y_phys[-1] < standoff:
            y_full = np.concatenate([y_phys,
                                     np.linspace(y_phys[-1], standoff,
                                                 12)[1:]])
            T_full = np.concatenate([T_eta,
                                     np.full(11, T_eta[-1], dtype=np.float64)])
            comp_full = np.concatenate([y_eta,
                                        np.repeat(y_eta[-1:], 11,
                                                  axis=0)])
        else:
            y_full, T_full, comp_full = y_phys, T_eta, y_eta
        # downsample to n_profile points
        yq = np.linspace(0.0, y_full[-1], n_profile)
        T_prof = np.interp(yq, y_full, T_full)
        comp_prof = interp_columns(yq, y_full, comp_full)
        h_prof = np.interp(yq, y_full, np.concatenate(
            [h_eta, np.full(len(y_full) - len(h_eta), h_eta[-1], dtype=np.float64)]))

        # ---- radiation ----
        lam = np.linspace(*lambda_range, n_lambda)
        _, rho_prof = gas.composition_T_p(T_prof,
                                          np.full_like(T_prof, p_stag))
        n_dens = self.emission.number_densities(rho_prof, comp_prof)
        j_lam = self.emission.emission_coefficient(lam, n_dens, T_prof)
        q_rad, q_lam = tangent_slab_flux(yq, j_lam, T_prof, lam)
        if radiative_cooling and q_rad > 0:
            # one-pass cooling: compare radiated power to enthalpy inflow
            flux_in = rho_inf * V * (h0 - h_prof[0])
            loss = min(0.5, 2.0 * q_rad / max(flux_in, 1e-30))
            q_rad *= (1.0 - loss)
            q_lam = q_lam * (1.0 - loss)
        return VSLSolution(q_conv=q_conv, q_rad=float(q_rad),
                           standoff=standoff, y=yq, T=T_prof, h=h_prof,
                           composition=comp_prof, p_stag=float(p_stag),
                           shock=shock, q_rad_spectrum=q_lam,
                           wavelengths=lam)

    def _wall_enthalpy(self, T_wall, p):
        """Equilibrium wall enthalpy at (T_wall, p)."""
        y_w, _ = self.gas.composition_T_p(np.array(float(T_wall)),
                                          np.array(float(p)))
        return self.gas.mix.h_mass(np.array(float(T_wall)), y_w)
