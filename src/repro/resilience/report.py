"""Failure diagnostic bundles.

When a supervised run exhausts its retry budget the library does not die
with a bare traceback: it assembles a :class:`FailureReport` — the last
good state snapshot, the residual history, the retry ladder trace and the
solver configuration — and attaches it to the raised
:class:`~repro.errors.CatError` as ``err.report``.  Production triage then
starts from the report, not from a core dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["FailureReport", "solver_config"]

#: Attributes worth snapshotting into the config section of a report.
_CONFIG_ATTRS = ("flux_name", "order", "n", "nv", "ns", "t", "steps",
                 "T_wall", "prandtl", "mode", "rn", "gamma")


def _jsonable(v):
    """Best-effort conversion of config values to plain python."""
    if isinstance(v, (np.floating, np.integer)):
        return v.item()
    if isinstance(v, np.ndarray):
        return {"shape": list(v.shape), "dtype": str(v.dtype)}
    return v


def solver_config(solver) -> dict:
    """Introspect a solver object into a small config dict for a report."""
    cfg: dict[str, Any] = {"solver": type(solver).__name__}
    for name in _CONFIG_ATTRS:
        v = getattr(solver, name, None)
        if v is not None and not callable(v):
            cfg[name] = _jsonable(v)
    grid = getattr(solver, "grid", None)
    if grid is not None:
        ni, nj = getattr(grid, "ni", None), getattr(grid, "nj", None)
        if ni is not None:
            cfg["grid"] = (int(ni), int(nj))
    eos = getattr(solver, "eos", None)
    if eos is not None:
        cfg["eos"] = type(eos).__name__
    return cfg


@dataclass
class FailureReport:
    """Diagnostic bundle emitted when a recovery ladder is exhausted.

    Attributes
    ----------
    label:
        Which subsystem failed (e.g. ``"euler2d"``).
    error:
        The final error message.
    step:
        Marching step (or station/call index) at failure, if known.
    cell, component, value:
        Localization of the final error, when
        :func:`~repro.numerics.time_integration.check_state` (or the
        watchdog) pinned it to a first-offending cell.
    attempts:
        Retry ladder trace: one dict per retry with the backed-off
        parameters and the error that triggered it.
    residual_history:
        Residual trace of the failing run (may be empty for one-shot
        solves).
    config:
        Solver/problem configuration snapshot.
    state:
        Last good checkpoint payload (arrays), when one exists.
    wall_time:
        Seconds spent inside the supervised region.
    watchdog_events:
        :class:`~repro.resilience.watchdog.WatchdogEvent` dicts recorded
        by an attached watchdog (``None`` when none was attached).
    degradation:
        :class:`~repro.resilience.degradation.DegradationLedger` dict of
        an attached degradation controller (``None`` when none).
    isolation:
        :class:`~repro.resilience.isolation.IsolationEvent` dicts — one
        per kill the supervising parent performed before giving up
        (``None`` when the run was not sandboxed).
    fault_schedule:
        Exact :meth:`~repro.resilience.faults.FaultInjector.to_json`
        schedule that was armed (``None`` when none) — enough for a
        deterministic replay of a failing chaos round.
    """

    label: str
    error: str
    step: int | None = None
    cell: tuple | None = None
    component: str | None = None
    value: float | None = None
    attempts: list[dict] = field(default_factory=list)
    residual_history: list[float] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    state: dict | None = None
    wall_time: float = 0.0
    watchdog_events: list[dict] | None = None
    degradation: dict | None = None
    isolation: list[dict] | None = None
    fault_schedule: dict | None = None

    def to_dict(self) -> dict:
        """Plain-dict view (state arrays summarised, not copied)."""
        state_summary = None
        if self.state is not None:
            state_summary = {k: _jsonable(np.asarray(v))
                            if isinstance(v, np.ndarray) else _jsonable(v)
                            for k, v in self.state.items()}
        return {"label": self.label, "error": self.error,
                "step": self.step,
                "cell": None if self.cell is None else list(self.cell),
                "component": self.component, "value": self.value,
                "attempts": list(self.attempts),
                "residual_history": [float(r)
                                     for r in self.residual_history],
                "config": dict(self.config), "state": state_summary,
                "wall_time": self.wall_time,
                "watchdog_events": (None if self.watchdog_events is None
                                    else list(self.watchdog_events)),
                "degradation": (None if self.degradation is None
                                else dict(self.degradation)),
                "isolation": (None if self.isolation is None
                              else list(self.isolation)),
                "fault_schedule": (None if self.fault_schedule is None
                                   else dict(self.fault_schedule))}

    def summary(self) -> str:
        """Human-readable multi-line triage summary."""
        lines = [f"FailureReport[{self.label}]: {self.error}"]
        if self.step is not None:
            lines.append(f"  failed at step {self.step}")
        if self.cell is not None or self.component is not None:
            val = "" if self.value is None else f" = {self.value:.6g}"
            lines.append(f"  first offender: cell {self.cell}, "
                         f"component {self.component}{val}")
        lines.append(f"  retries attempted: {len(self.attempts)}")
        for a in self.attempts:
            knobs = ", ".join(f"{k}={v}" for k, v in a.items()
                              if k != "error")
            lines.append(f"    - {knobs}: {a.get('error', '?')}")
        if self.residual_history:
            r = self.residual_history
            lines.append(f"  residuals: first={r[0]:.3e} "
                         f"last={r[-1]:.3e} n={len(r)}")
        if self.config:
            kv = ", ".join(f"{k}={v}" for k, v in self.config.items())
            lines.append(f"  config: {kv}")
        if self.state is not None:
            lines.append(f"  last-good state: {sorted(self.state)}")
        if self.watchdog_events:
            lines.append(f"  watchdog events: {len(self.watchdog_events)}")
            for e in self.watchdog_events[-5:]:
                lines.append(f"    - [{e.get('kind')}] step "
                             f"{e.get('step')}: {e.get('message')}")
        if self.degradation and self.degradation.get("entries"):
            d = self.degradation
            lines.append(f"  degradation: {d.get('n_demotions', 0)} "
                         f"demotion(s), {d.get('n_promotions', 0)} "
                         f"re-promotion(s)")
        if self.isolation:
            kinds = "/".join(e.get("kind", "?") for e in self.isolation)
            lines.append(f"  isolation kills: {len(self.isolation)} "
                         f"({kinds})")
            for e in self.isolation[-5:]:
                lines.append(f"    - [{e.get('kind')}] attempt "
                             f"{e.get('attempt')}: {e.get('message')}")
        if self.fault_schedule and self.fault_schedule.get("faults"):
            lines.append(f"  fault schedule: "
                         f"{len(self.fault_schedule['faults'])} armed "
                         f"fault(s) (embedded for replay)")
        if self.wall_time:
            lines.append(f"  wall time: {self.wall_time:.2f} s")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.summary()
