"""Command-line entry point.

``python -m repro``                 — overview and quick sanity numbers
``python -m repro figures``         — regenerate every paper figure
``python -m repro stagnation V H RN`` — stagnation environment at
                                        (V [m/s], h [m], R_n [m])
``python -m repro degrade-smoke``   — degradation-cascade smoke run
``python -m repro chaos``           — randomized fault campaign under
                                      process isolation
``python -m repro batch``           — batch evaluation service
                                      (JSON-lines requests in,
                                      envelopes out)
``python -m repro campaign``        — run a job campaign on the solve
                                      farm to completion
``python -m repro serve``           — long-running farm worker pool on
                                      a durable queue
``python -m repro jobs``            — asynchronous jobs: submit returns
                                      an id immediately; status/watch/
                                      result/cancel/gc later

Exit codes: 0 success, 1 solver/invariant failure, 2 usage error.
"""

from __future__ import annotations

import sys

_USAGE = """\
usage: python -m repro [command] [options]

commands:
  (none)                 overview and quick sanity numbers
  figures [--full] [--checkpoint-dir D] [--resume] [--isolate]
          [--farm] [-j N] [--queue-dir D]
          [--deadline S] [--stall-timeout S] [--memory-mb M]
                         regenerate every paper figure
                           --full            full-resolution runs
                           --checkpoint-dir D
                                             durable suite: done markers +
                                             solver snapshots under D
                           --resume          replay completed figures and
                                             continue interrupted marches
                                             from their latest snapshot
                           --isolate         run each figure in a sandboxed
                                             child process (kill + retry on
                                             hang, memory balloon, crash)
                           --farm            shard the suite across farm
                                             workers (implies isolation;
                                             excludes --isolate/--resume/
                                             --checkpoint-dir)
                           -j N              farm worker count (default 4)
                           --queue-dir D     durable farm queue under D
                                             (re-run with the same D to
                                             resume a campaign)
                           --deadline S      per-figure wall-clock budget
                           --stall-timeout S declare a hang after S seconds
                                             without a heartbeat
                           --memory-mb M     per-figure RSS budget [MiB]
                                             (the three budget flags
                                             require --isolate or --farm)
  stagnation V H RN      stagnation environment at (V [m/s], h [m],
                         R_n [m])
  degrade-smoke [--out FILE]
                         fault-injected reacting march that must abort
                         without the degradation cascade and complete
                         with it; writes the degradation ledger JSON
                         to FILE (default degradation_ledger.json)
  batch [FILE] [--out FILE] [--ledger FILE] [--bench FILE]
        [--deadline S] [--request-deadline S] [--shed-above N]
        [--isolate auto|always|never] [--allow-faults] [--no-dedup]
        [--farm] [-j N] [--queue-dir D] [--chunk-size N]
                         batch evaluation service: JSON-lines requests
                         (FILE or stdin), one outcome envelope per line
                         on stdout (or --out); exits 0 only when every
                         request came back ok/degraded
                           --deadline S      whole-batch wall budget
                           --request-deadline S
                                             per-request wall budget
                                             (sandboxed rungs are
                                             killed at S, not waited)
                           --shed-above N    reject batches larger
                                             than N (typed overload)
                           --isolate MODE    sandboxing: auto (heavy
                                             rungs + faults), always,
                                             never
                           --allow-faults    honor chaos "fault"
                                             fields in requests
                           --no-dedup        execute duplicate request
                                             keys instead of copying
                           --farm            shard into chunk jobs on
                                             the solve farm
                           -j N              farm worker count
                           --queue-dir D     durable farm queue
                           --chunk-size N    requests per chunk job
                           --ledger FILE     write the batch ledger
                           --bench FILE      write BENCH_batch.json
                                             (req/s, p50/p99 latency)
  chaos [--rounds N] [--seed S] [--out D] [--deadline S]
        [--farm] [-j N] [--kill-workers K] [--queue-dir D]
        [--hosts N] [--skew[=S]] [--partition]
        [--batch [--requests N] [--faulted M]]
        [--jobs [--steps N]]
                         randomized fault campaign: every round runs a
                         solver with sampled faults (hangs, memory
                         balloons, crashes, snapshot corruption, NaN
                         upsets) under process isolation and asserts
                         termination, bitwise resume and kill
                         accounting; per-round reports land in D
                         (default chaos-reports)
                           --farm            run rounds as farm jobs and
                                             SIGKILL the workers too
                           -j N              farm worker count (default 2)
                           --kill-workers K  scheduled worker SIGKILLs
                                             (default 2; 0 disables)
                           --queue-dir D     farm queue directory
                                             (default <out>/farm-queue)
                           --hosts N         distributed mode (with
                                             --farm): N supervisor
                                             "hosts" share one queue;
                                             one host is SIGKILLed and
                                             the survivors' results are
                                             bitwise-verified; --rounds
                                             counts solver jobs and
                                             --deadline bounds the whole
                                             campaign (default 240 s)
                           --skew[=S]        inject alternating +/-S s
                                             wall-clock skew per host
                                             (bare --skew: 5 s)
                           --partition       SIGSTOP the surviving host
                                             past its lease ttl (frozen
                                             beacon included), then heal
                                             it: stale commits must be
                                             fenced, jobs done once
                           --batch           batch-service campaign:
                                             fault-injected requests
                                             mixed into a good batch;
                                             good results must be
                                             bitwise-identical to a
                                             fault-free reference and
                                             breaker transitions
                                             deterministic
                           --requests N      batch campaign size
                                             (default 200)
                           --faulted M       fault-injected requests
                                             in it (default 20)
                           --jobs            async-job campaign: submit
                                             a long march as a durable
                                             job, SIGKILL the serving
                                             supervisor mid-march,
                                             resume on a second host
                                             and assert bitwise parity,
                                             exactly-once completion, a
                                             legal state-machine
                                             history, cooperative
                                             cancellation and a clean
                                             gc; writes the job ledger
                                             and BENCH_jobs.json to D
                           --steps N         march length of the chaos
                                             job (default 40)
  campaign (--figures | --jobs FILE | --retry-dead-letters
            | --merge-ledgers L1,L2,...)
           [-j N] [--full] [--queue-dir D]
           [--ledger FILE] [--bench FILE] [--compare-serial]
           [--kill-workers K] [--seed S] [--deadline S]
           [--host-id H] [--max-skew S]
                         enqueue a job set and drive the farm until every
                         job is done or dead-lettered
                           --figures         the nine-figure suite as jobs
                           --jobs FILE       JSON list of job specs
                                             ({"id","kind","payload",...})
                           -j N              worker count (default 4)
                           --queue-dir D     durable queue (default: fresh
                                             temp dir; reuse D to resume)
                           --ledger FILE     write the campaign ledger JSON
                           --bench FILE      write a BENCH_farm.json
                                             throughput record
                           --compare-serial  also run the suite serially
                                             and record the speedup
                                             (--figures only)
                           --kill-workers K  chaos: SIGKILL K workers at
                                             seeded random times
                           --seed S          kill-schedule seed (default 0)
                           --deadline S      per-job wall-clock budget
                           --host-id H       this host's identity in a
                                             shared (multi-host) queue
                           --max-skew S      cross-host clock-skew bound
                                             for lease reaping (default 2)
                           --retry-dead-letters
                                             requeue the queue's dead-
                                             lettered jobs with a fresh
                                             attempt budget (prior
                                             failure reports preserved)
                                             and re-run the farm; needs
                                             --queue-dir, excludes
                                             --figures/--jobs
                           --merge-ledgers L1,L2,...
                                             merge per-host campaign
                                             ledgers into --ledger FILE;
                                             with --queue-dir also runs
                                             the exactly-once journal
                                             audit over the shared queue
  jobs ACTION [...]      asynchronous jobs on a durable queue (all
                         actions print one JSON object; a serving farm
                         — ``serve --queue-dir D`` — executes them)
                           submit --queue-dir D KIND [JSON]
                                             enqueue KIND with payload
                                             JSON (inline or @FILE);
                                             prints the job id
                                             immediately; --id sets an
                                             explicit id (default:
                                             content-addressed, so
                                             resubmits are idempotent);
                                             --max-attempts/--deadline/
                                             --memory-mb/--stall-timeout
                                             set the attempt budget
                           status --queue-dir D ID
                                             reconciled state, live
                                             progress (step/t/residual
                                             via the heartbeat channel),
                                             snapshot generations
                           watch --queue-dir D ID [--timeout S]
                                             poll status until terminal,
                                             one JSON line per change
                           result --queue-dir D ID [--wait S]
                                             terminal outcome (exit 1
                                             when failed; with --wait
                                             blocks up to S for it)
                           cancel --queue-dir D ID [--escalate-after S]
                                  [--wait S]
                                             cooperative cancel flag,
                                             then SIGTERM -> SIGKILL of
                                             the advertised child after
                                             S seconds
                           gc --queue-dir D [--ttl S] [--keep-last N]
                              [--include-failed]
                                             remove artifacts of jobs
                                             terminal for > S seconds
                                             (failed ones only with
                                             --include-failed)
                           ledger --queue-dir D
                                             all jobs + exactly-once and
                                             transition-legality audits
  serve --queue-dir D [-j N] [--lease-ttl S] [--poll S]
        [--host-id H] [--max-skew S] [--clock-offset S] [--ledger FILE]
                         long-running worker pool on a durable queue:
                         drains jobs as they are enqueued (by campaign
                         or other processes) until SIGTERM/SIGINT, then
                         finishes-or-checkpoints and exits
                           --host-id H       identity under which leases,
                                             journal lines and workers
                                             (host:pid) are written —
                                             several hosts may serve one
                                             shared/NFS queue directory
                           --max-skew S      cross-host clock-skew bound
                                             for lease reaping (default 2)
                           --clock-offset S  inject S seconds of wall-
                                             clock skew (chaos/testing;
                                             may be negative)
                           --ledger FILE     write this host's campaign
                                             ledger JSON after the drain
                                             (for --merge-ledgers)
  -h, --help             show this message

exit codes: 0 success, 1 solver/invariant failure, 2 usage error\
"""


class _UsageError(Exception):
    """Bad command line; message is printed and the process exits 2."""


def _usage_error(prefix: str, msg: str) -> None:
    """Route every usage problem through one door so each misuse prints
    a ``command: reason`` line plus the usage text and exits 2."""
    raise _UsageError(f"{prefix}: {msg}")


def _positive_float(prefix: str, flag: str, value: str | None) -> float:
    if value is None:
        _usage_error(prefix, f"{flag} needs a value")
    try:
        out = float(value)
    except ValueError:
        _usage_error(prefix, f"{flag} needs a number, got {value!r}")
    if out <= 0.0:
        _usage_error(prefix, f"{flag} must be positive, got {value}")
    return out


def _positive_int(prefix: str, flag: str, value: str | None) -> int:
    if value is None:
        _usage_error(prefix, f"{flag} needs a value")
    try:
        out = int(value)
    except ValueError:
        _usage_error(prefix, f"{flag} needs an integer, got {value!r}")
    if out <= 0:
        _usage_error(prefix, f"{flag} must be positive, got {value}")
    return out


def _overview() -> None:
    import numpy as np

    from repro.core import make_gas
    print(__doc__)
    gas = make_gas("equilibrium-air")
    y, _ = gas.composition_T_p(np.array(8000.0), np.array(101325.0))
    x = gas.db.mass_to_mole(np.atleast_2d(y))[0]
    print("sanity: equilibrium air at 8000 K, 1 atm -> "
          f"x_N = {x[gas.db.index['N']]:.3f}, "
          f"x_O = {x[gas.db.index['O']]:.3f} (mostly dissociated)")


def _parse_figures(args: list[str]) -> dict:
    """Parse ``figures`` flags into :func:`run_all` /
    :func:`run_all_farm` kwargs (farm mode flagged as ``"farm"``)."""
    kwargs: dict = {"quick": True, "checkpoint_dir": None,
                    "resume": False}
    budgets: dict = {}
    isolate = False
    farm, n_workers, queue_dir = False, 4, None
    it = iter(args)
    for a in it:
        if a == "--full":
            kwargs["quick"] = False
        elif a == "--resume":
            kwargs["resume"] = True
        elif a == "--isolate":
            isolate = True
        elif a == "--farm":
            farm = True
        elif a == "-j":
            n_workers = _positive_int("figures", a, next(it, None))
        elif a.startswith("-j="):
            n_workers = _positive_int("figures", "-j", a.split("=", 1)[1])
        elif a == "--queue-dir":
            queue_dir = next(it, None)
            if queue_dir is None:
                _usage_error("figures", "--queue-dir needs a directory")
        elif a.startswith("--queue-dir="):
            queue_dir = a.split("=", 1)[1]
        elif a == "--checkpoint-dir":
            kwargs["checkpoint_dir"] = next(it, None)
            if kwargs["checkpoint_dir"] is None:
                _usage_error("figures",
                             "--checkpoint-dir needs a directory")
        elif a.startswith("--checkpoint-dir="):
            kwargs["checkpoint_dir"] = a.split("=", 1)[1]
        elif a in ("--deadline", "--stall-timeout", "--memory-mb"):
            key = {"--deadline": "deadline",
                   "--stall-timeout": "stall_timeout",
                   "--memory-mb": "memory_mb"}[a]
            budgets[key] = _positive_float("figures", a, next(it, None))
        elif (a.startswith("--deadline=")
              or a.startswith("--stall-timeout=")
              or a.startswith("--memory-mb=")):
            flag, value = a.split("=", 1)
            key = {"--deadline": "deadline",
                   "--stall-timeout": "stall_timeout",
                   "--memory-mb": "memory_mb"}[flag]
            budgets[key] = _positive_float("figures", flag, value)
        else:
            _usage_error("figures", f"unknown option {a!r}")
    if farm:
        conflicts = [f for f, on in
                     (("--isolate", isolate),
                      ("--resume", kwargs["resume"]),
                      ("--checkpoint-dir",
                       kwargs["checkpoint_dir"] is not None)) if on]
        if conflicts:
            _usage_error("figures", f"--farm conflicts with "
                         f"{', '.join(conflicts)} (farm workers are "
                         f"already sandboxed; reuse --queue-dir to "
                         f"resume a campaign)")
        return {"farm": True, "quick": kwargs["quick"],
                "n_workers": n_workers, "queue_dir": queue_dir,
                **budgets}
    if queue_dir is not None or n_workers != 4:
        _usage_error("figures", "-j/--queue-dir require --farm")
    if kwargs["resume"] and kwargs["checkpoint_dir"] is None:
        _usage_error("figures", "--resume requires --checkpoint-dir")
    if budgets and not isolate:
        flags = ", ".join("--" + k.replace("_", "-") for k in budgets)
        _usage_error("figures", f"{flags} require(s) --isolate or "
                     f"--farm")
    if isolate:
        from repro.resilience import IsolationPolicy
        kwargs["isolate"] = IsolationPolicy(**budgets)
    return kwargs


def _cmd_figures(args: list[str]) -> int:
    kwargs = _parse_figures(args)
    if kwargs.pop("farm", False):
        from repro.experiments.runner import run_all_farm
        res = run_all_farm(**kwargs)
    else:
        from repro.experiments.runner import run_all
        res = run_all(**kwargs)
    return 1 if res["failures"] else 0


def _cmd_stagnation(args: list[str]) -> int:
    if len(args) != 3:
        _usage_error("stagnation", "expects V[m/s] h[m] Rn[m]")
    try:
        V, h, rn = map(float, args)
    except ValueError:
        _usage_error("stagnation",
                     f"arguments must be numbers, got {args!r}")
    from repro.core import stagnation_environment
    env = stagnation_environment(V=V, h=h, nose_radius=rn)
    print(f"V = {V:.0f} m/s, h = {h / 1e3:.1f} km, R_n = {rn} m:")
    print(f"  q_conv   = {env['q_conv'] / 1e4:10.2f} W/cm^2")
    print(f"  q_rad    = {env['q_rad'] / 1e4:10.2f} W/cm^2")
    print(f"  standoff = {env['standoff'] * 100:10.2f} cm")
    print(f"  p_stag   = {env['p_stag'] / 1e3:10.2f} kPa")
    print(f"  T_edge   = {env['T_edge']:10.0f} K")
    return 0


def _cmd_chaos(args: list[str]) -> int:
    rounds, seed, out, deadline = 5, 0, "chaos-reports", None
    farm, n_workers, kill_workers, queue_dir = False, 2, 2, None
    hosts, skew, partition = 0, 0.0, False
    batch_mode, b_requests, b_faulted = False, 200, 20
    jobs_mode, j_steps = False, 40
    it = iter(args)
    for a in it:
        if a == "--batch":
            batch_mode = True
        elif a == "--jobs":
            jobs_mode = True
        elif a == "--steps":
            j_steps = _positive_int("chaos", a, next(it, None))
        elif a.startswith("--steps="):
            j_steps = _positive_int("chaos", "--steps",
                                    a.split("=", 1)[1])
        elif a == "--requests":
            b_requests = _positive_int("chaos", a, next(it, None))
        elif a.startswith("--requests="):
            b_requests = _positive_int("chaos", "--requests",
                                       a.split("=", 1)[1])
        elif a == "--faulted":
            b_faulted = _positive_int("chaos", a, next(it, None))
        elif a.startswith("--faulted="):
            b_faulted = _positive_int("chaos", "--faulted",
                                      a.split("=", 1)[1])
        elif a == "--farm":
            farm = True
        elif a == "--partition":
            partition = True
        elif a == "--hosts":
            hosts = _positive_int("chaos", a, next(it, None))
        elif a.startswith("--hosts="):
            hosts = _positive_int("chaos", "--hosts",
                                  a.split("=", 1)[1])
        elif a == "--skew":
            # bare --skew injects the default ±5 s; --skew=S tunes it
            skew = 5.0
        elif a.startswith("--skew="):
            skew = _positive_float("chaos", "--skew",
                                   a.split("=", 1)[1])
        elif a == "-j":
            n_workers = _positive_int("chaos", a, next(it, None))
        elif a.startswith("-j="):
            n_workers = _positive_int("chaos", "-j", a.split("=", 1)[1])
        elif a == "--kill-workers":
            value = next(it, None)
            if value is None:
                _usage_error("chaos", "--kill-workers needs a count")
            try:
                kill_workers = int(value)
            except ValueError:
                _usage_error("chaos", f"--kill-workers needs an "
                             f"integer, got {value!r}")
            if kill_workers < 0:
                _usage_error("chaos", "--kill-workers must be >= 0")
        elif a.startswith("--kill-workers="):
            try:
                kill_workers = int(a.split("=", 1)[1])
            except ValueError:
                _usage_error("chaos", f"--kill-workers needs an "
                             f"integer, got {a.split('=', 1)[1]!r}")
            if kill_workers < 0:
                _usage_error("chaos", "--kill-workers must be >= 0")
        elif a == "--queue-dir":
            queue_dir = next(it, None)
            if queue_dir is None:
                _usage_error("chaos", "--queue-dir needs a directory")
        elif a.startswith("--queue-dir="):
            queue_dir = a.split("=", 1)[1]
        elif a == "--rounds":
            rounds = _positive_int("chaos", a, next(it, None))
        elif a.startswith("--rounds="):
            rounds = _positive_int("chaos", "--rounds",
                                   a.split("=", 1)[1])
        elif a == "--seed":
            value = next(it, None)
            if value is None:
                _usage_error("chaos", "--seed needs a value")
            try:
                seed = int(value)
            except ValueError:
                _usage_error("chaos",
                             f"--seed needs an integer, got {value!r}")
        elif a.startswith("--seed="):
            try:
                seed = int(a.split("=", 1)[1])
            except ValueError:
                _usage_error("chaos", f"--seed needs an integer, "
                             f"got {a.split('=', 1)[1]!r}")
        elif a == "--out":
            out = next(it, None)
            if out is None:
                _usage_error("chaos", "--out needs a directory")
        elif a.startswith("--out="):
            out = a.split("=", 1)[1]
        elif a == "--deadline":
            deadline = _positive_float("chaos", a, next(it, None))
        elif a.startswith("--deadline="):
            deadline = _positive_float("chaos", "--deadline",
                                       a.split("=", 1)[1])
        else:
            _usage_error("chaos", f"unknown option {a!r}")
    if jobs_mode:
        if batch_mode or farm or hosts:
            _usage_error("chaos", "--jobs excludes --batch/--farm/"
                         "--hosts (it drives its own supervisors)")
        from repro.service.jobs import run_chaos_jobs
        return run_chaos_jobs(n_steps=j_steps, out=out,
                              queue_dir=queue_dir,
                              deadline=(240.0 if deadline is None
                                        else deadline))
    if j_steps != 40:
        _usage_error("chaos", "--steps requires --jobs")
    if batch_mode:
        if farm or hosts or queue_dir is not None:
            _usage_error("chaos", "--batch excludes --farm/--hosts/"
                         "--queue-dir (use 'batch --farm' for the "
                         "farm-sharded service path)")
        if b_faulted >= b_requests:
            _usage_error("chaos", f"--faulted {b_faulted} must be "
                         f"below --requests {b_requests}")
        from repro.service.chaos import run_chaos_batch
        return run_chaos_batch(requests=b_requests, faulted=b_faulted,
                               seed=seed, out=out,
                               deadline=(120.0 if deadline is None
                                         else deadline))
    if b_requests != 200 or b_faulted != 20:
        _usage_error("chaos", "--requests/--faulted require --batch")
    if hosts and not farm:
        _usage_error("chaos", "--hosts requires --farm")
    if (skew or partition) and not hosts:
        _usage_error("chaos", "--skew/--partition require --hosts N")
    if hosts:
        # distributed mode: --rounds counts bitwise-verified solver
        # jobs and --deadline bounds the whole campaign
        from repro.resilience.chaos import run_chaos_hosts
        return run_chaos_hosts(
            hosts=hosts, rounds=rounds, seed=seed, out=out,
            n_workers=n_workers, skew=skew, partition=partition,
            deadline=240.0 if deadline is None else deadline,
            queue_dir=queue_dir)
    if deadline is None:
        deadline = 30.0
    if farm:
        from repro.resilience.chaos import run_chaos_farm
        return run_chaos_farm(rounds=rounds, seed=seed, out=out,
                              deadline=deadline, n_workers=n_workers,
                              kill_workers=kill_workers,
                              queue_dir=queue_dir)
    if n_workers != 2 or kill_workers != 2 or queue_dir is not None:
        _usage_error("chaos",
                     "-j/--kill-workers/--queue-dir require --farm")
    from repro.resilience.chaos import run_chaos
    return run_chaos(rounds=rounds, seed=seed, out=out,
                     deadline=deadline)


def _degrade_smoke(out: str) -> int:
    """Degradation-cascade smoke: a persistent density fault that kills
    the plain rollback ladder must complete once the cascade is armed.

    The scenario is the acceptance case for
    :mod:`repro.resilience.degradation`: a Mach-10 reacting blunt-body
    march with a persistent single-cell density corruption that
    second-order reconstruction cannot march through (the T(e) Newton
    dies) but a quarantined first-order zone can.
    """
    import json

    import numpy as np

    from repro.errors import CatError
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.resilience import (DegradationPolicy, FaultInjector,
                                  RetryPolicy)
    from repro.solvers.reacting_euler2d import ReactingEulerSolver
    from repro.thermo.species import species_set

    def make_solver():
        grid = blunt_body_grid(Hemisphere(0.05), n_s=9, n_normal=13,
                               density_ratio=0.12, margin=2.5)
        db = species_set("air5")
        s = ReactingEulerSolver(grid, db)
        y = np.zeros(db.n)
        y[db.index["N2"]] = 0.767
        y[db.index["O2"]] = 0.233
        return s.set_freestream(1e-3, 5000.0, 250.0, y)

    def make_faults():
        fi = FaultInjector()
        fi.inject_perturbation(step=10, cell=(4, 6), component=0,
                               factor=1e-4, persistent=True)
        return fi

    policy = RetryPolicy(max_retries=1, cfl_backoff=0.8, cfl_min=0.2)

    print("degrade-smoke: fault-injected march WITHOUT degradation "
          "(must abort) ...")
    try:
        make_solver().run(n_steps=40, cfl=0.4, resilience=policy,
                          faults=make_faults())
    except CatError as err:
        print(f"  aborted as expected: {type(err).__name__}")
    else:
        print("  ERROR: run completed without degradation — the fault "
              "no longer exercises the cascade", file=sys.stderr)
        return 1

    print("degrade-smoke: same march WITH degradation (must complete) "
          "...")
    s = make_solver()
    try:
        s.run(n_steps=40, cfl=0.4, resilience=policy,
              faults=make_faults(), watchdog=True,
              degradation=DegradationPolicy(promote_after=15))
    except CatError as err:
        print(f"  ERROR: degraded run still aborted: {err}",
              file=sys.stderr)
        return 1
    ledger = s.degradation_ledger.to_dict()
    n_q = (0 if s.quarantined_cells is None
           else int(s.quarantined_cells.sum()))
    print(f"  completed {s.steps} steps: "
          f"{ledger['n_demotions']} demotion(s), "
          f"{ledger['n_promotions']} re-promotion(s), "
          f"{n_q} cell(s) quarantined, "
          f"{len(s.watchdog_events)} watchdog event(s)")
    with open(out, "w") as f:
        json.dump({"ledger": ledger,
                   "quarantined_cells": n_q,
                   "n_watchdog_events": len(s.watchdog_events),
                   "steps": int(s.steps)}, f, indent=2)
    print(f"  ledger written to {out}")
    if not ledger["n_demotions"]:
        print("  ERROR: completed without any demotion — the fault no "
              "longer exercises the cascade", file=sys.stderr)
        return 1
    return 0


def _cmd_degrade_smoke(args: list[str]) -> int:
    out = "degradation_ledger.json"
    rest = list(args)
    if rest and rest[0] == "--out":
        if len(rest) < 2:
            _usage_error("degrade-smoke", "--out needs a path")
        out = rest[1]
        rest = rest[2:]
    elif rest and rest[0].startswith("--out="):
        out = rest[0].split("=", 1)[1]
        rest = rest[1:]
    if rest:
        _usage_error("degrade-smoke", f"unknown option {rest[0]!r}")
    return _degrade_smoke(out)


def _merge_ledgers_cmd(paths: list[str], ledger_file: str | None,
                       queue_dir: str | None) -> int:
    """``campaign --merge-ledgers``: fold per-host campaign ledgers
    into one view; with ``--queue-dir`` also run the exactly-once
    journal audit over the shared queue."""
    import json

    from repro.resilience.farm import audit_exactly_once, merge_ledgers
    ledgers = []
    for path in paths:
        try:
            with open(path) as f:
                ledgers.append(json.load(f))
        except (OSError, ValueError) as exc:
            _usage_error("campaign",
                         f"cannot read ledger {path!r}: {exc}")
    merged = merge_ledgers(ledgers)
    ok = bool(merged.get("ok"))
    if queue_dir is not None:
        from repro.resilience.queue import WorkQueue
        audit = audit_exactly_once(WorkQueue(queue_dir))
        merged["exactly_once_audit"] = audit
        ok = ok and audit["ok"]
        print(f"campaign: exactly-once audit over {queue_dir}: "
              f"{'ok' if audit['ok'] else 'VIOLATED'} "
              f"({audit['jobs_completed']} completion(s), "
              f"{len(audit['double_completions'])} double, "
              f"{len(audit['done_without_complete'])} unaccounted)")
    if ledger_file is not None:
        with open(ledger_file, "w") as f:
            json.dump(merged, f, indent=1, default=str)
        print(f"campaign: merged ledger ({len(ledgers)} host ledger(s))"
              f" written to {ledger_file}")
    else:
        print(json.dumps(merged, indent=1, default=str))
    print(f"campaign: merged view — jobs {merged.get('jobs')}, hosts "
          f"{sorted(merged.get('hosts') or {})}, wall "
          f"{merged.get('wall_time')} s "
          f"({merged.get('host_seconds')} host-seconds)")
    return 0 if ok else 1


def _cmd_campaign(args: list[str]) -> int:
    figures, jobs_file, n_workers, full = False, None, 4, False
    queue_dir, ledger_file, bench_file = None, None, None
    compare_serial, kill_workers, seed, deadline = False, 0, 0, None
    merge_paths: list[str] = []
    retry_dead, host_id, max_skew = False, None, 2.0
    it = iter(args)
    for a in it:
        if a == "--figures":
            figures = True
        elif a == "--full":
            full = True
        elif a == "--compare-serial":
            compare_serial = True
        elif a == "--retry-dead-letters":
            retry_dead = True
        elif a == "--merge-ledgers":
            value = next(it, None)
            if value is None:
                _usage_error("campaign", "--merge-ledgers needs ledger "
                             "path(s), comma-separated or repeated")
            merge_paths.extend(p for p in value.split(",") if p)
        elif a.startswith("--merge-ledgers="):
            merge_paths.extend(p for p in
                               a.split("=", 1)[1].split(",") if p)
        elif a == "--host-id":
            host_id = next(it, None)
            if host_id is None:
                _usage_error("campaign", "--host-id needs a name")
        elif a.startswith("--host-id="):
            host_id = a.split("=", 1)[1]
        elif a == "--max-skew":
            max_skew = _positive_float("campaign", a, next(it, None))
        elif a.startswith("--max-skew="):
            max_skew = _positive_float("campaign", "--max-skew",
                                       a.split("=", 1)[1])
        elif a == "-j":
            n_workers = _positive_int("campaign", a, next(it, None))
        elif a.startswith("-j="):
            n_workers = _positive_int("campaign", "-j",
                                      a.split("=", 1)[1])
        elif a == "--kill-workers":
            kill_workers = _positive_int("campaign", a, next(it, None))
        elif a.startswith("--kill-workers="):
            kill_workers = _positive_int("campaign", "--kill-workers",
                                         a.split("=", 1)[1])
        elif a == "--seed":
            value = next(it, None)
            if value is None:
                _usage_error("campaign", "--seed needs a value")
            try:
                seed = int(value)
            except ValueError:
                _usage_error("campaign",
                             f"--seed needs an integer, got {value!r}")
        elif a.startswith("--seed="):
            try:
                seed = int(a.split("=", 1)[1])
            except ValueError:
                _usage_error("campaign", f"--seed needs an integer, "
                             f"got {a.split('=', 1)[1]!r}")
        elif a == "--deadline":
            deadline = _positive_float("campaign", a, next(it, None))
        elif a.startswith("--deadline="):
            deadline = _positive_float("campaign", "--deadline",
                                       a.split("=", 1)[1])
        elif a in ("--jobs", "--queue-dir", "--ledger", "--bench"):
            value = next(it, None)
            if value is None:
                _usage_error("campaign", f"{a} needs a path")
            if a == "--jobs":
                jobs_file = value
            elif a == "--queue-dir":
                queue_dir = value
            elif a == "--ledger":
                ledger_file = value
            else:
                bench_file = value
        elif (a.startswith("--jobs=") or a.startswith("--queue-dir=")
              or a.startswith("--ledger=") or a.startswith("--bench=")):
            flag, value = a.split("=", 1)
            if flag == "--jobs":
                jobs_file = value
            elif flag == "--queue-dir":
                queue_dir = value
            elif flag == "--ledger":
                ledger_file = value
            else:
                bench_file = value
        else:
            _usage_error("campaign", f"unknown option {a!r}")
    if merge_paths:
        if figures or jobs_file or retry_dead or compare_serial:
            _usage_error("campaign", "--merge-ledgers merges existing "
                         "per-host ledgers; it excludes --figures/"
                         "--jobs/--retry-dead-letters/--compare-serial")
        return _merge_ledgers_cmd(merge_paths, ledger_file, queue_dir)
    if retry_dead:
        if queue_dir is None:
            _usage_error("campaign", "--retry-dead-letters needs "
                         "--queue-dir (the queue holding the dead "
                         "letters)")
        if figures or jobs_file is not None:
            _usage_error("campaign", "--retry-dead-letters re-runs the "
                         "existing queue; it excludes --figures/--jobs")
    elif figures == (jobs_file is not None):
        _usage_error("campaign",
                     "exactly one of --figures / --jobs FILE required")
    if compare_serial and not figures:
        _usage_error("campaign", "--compare-serial requires --figures")

    import io
    import json
    import tempfile
    import time

    from repro.resilience.farm import (Farm, FarmPolicy, WorkerKillPlan,
                                       bench_from_journal,
                                       write_bench_json)
    from repro.resilience.queue import Job, WorkQueue

    serial_wall = None
    if compare_serial:
        from repro.experiments.runner import run_all
        print(f"campaign: serial reference suite "
              f"({'full' if full else 'quick'}) ...")
        t0 = time.monotonic()
        serial_res = run_all(quick=not full, stream=io.StringIO())
        serial_wall = round(time.monotonic() - t0, 3)
        print(f"campaign: serial suite took {serial_wall:.1f} s "
              f"({len(serial_res['failures'])} failure(s))")

    if queue_dir is None:
        queue_dir = tempfile.mkdtemp(prefix="repro-campaign-")
    policy = FarmPolicy(n_workers=n_workers, deadline=deadline,
                        host_id=host_id, max_skew=max_skew)
    queue = WorkQueue(queue_dir, lease_ttl=policy.lease_ttl,
                      backoff=policy.backoff, host_id=host_id,
                      max_skew=max_skew)
    if retry_dead:
        requeued = queue.retry_dead_letters()
        if not requeued:
            print(f"campaign: no dead-lettered jobs in {queue_dir}")
            return 0
        print(f"campaign: requeued {len(requeued)} dead-lettered "
              f"job(s) with a fresh attempt budget: "
              f"{', '.join(requeued)}")
    elif figures:
        from repro.experiments.runner import _MODULES
        jobs = [Job(id=name, kind="figure",
                    payload={"module": mod.__name__.rsplit(".", 1)[1],
                             "quick": not full})
                for name, mod in _MODULES]
        for job in jobs:
            queue.enqueue(job)
    else:
        try:
            with open(jobs_file) as f:
                specs = json.load(f)
        except (OSError, ValueError) as exc:
            _usage_error("campaign",
                         f"cannot read --jobs {jobs_file!r}: {exc}")
        if not isinstance(specs, list):
            _usage_error("campaign", "--jobs FILE must hold a JSON "
                         "list of job specs")
        jobs = [Job.from_dict(s) for s in specs]
        for job in jobs:
            queue.enqueue(job)
    plan = None
    if kill_workers:
        plan = WorkerKillPlan(seed=seed + 1000, kills=kill_workers,
                              min_interval=1.0, max_interval=8.0)
    farm = Farm(queue, policy, label="campaign", kill_plan=plan)
    t0 = time.monotonic()
    ledger = farm.run()
    wall = time.monotonic() - t0
    if serial_wall is not None:
        ledger["serial_wall_time"] = serial_wall
        ledger["speedup_vs_serial"] = (round(serial_wall / wall, 3)
                                       if wall > 0 else None)
    if ledger_file is not None:
        with open(ledger_file, "w") as f:
            json.dump(ledger, f, indent=1, default=str)
        print(f"campaign: ledger written to {ledger_file}")
    if bench_file is not None:
        bench = bench_from_journal(queue, wall_time=wall,
                                   n_workers=n_workers)
        if serial_wall is not None:
            bench["serial_wall_s"] = serial_wall
            bench["speedup_vs_serial"] = ledger["speedup_vs_serial"]
        write_bench_json(bench_file, bench)
        print(f"campaign: bench record written to {bench_file}")
    n_dead = len(ledger["dead_letter"])
    print(f"campaign: {ledger['jobs']} in {ledger['wall_time']:.1f} s "
          f"({ledger['attempts']} attempt(s), "
          f"{ledger['requeues']} requeue(s), "
          f"{ledger['reclaims']} reclaim(s), "
          f"{len(ledger['worker_kills'])} worker kill(s))"
          + (f", speedup vs serial {ledger['speedup_vs_serial']}x"
             if serial_wall is not None else ""))
    return 0 if ledger["ok"] and not n_dead else 1


def _float_any(prefix: str, flag: str, value: str | None) -> float:
    """A float flag that may legitimately be negative (clock offsets,
    skews injected in either direction)."""
    if value is None:
        _usage_error(prefix, f"{flag} needs a value")
    try:
        return float(value)
    except ValueError:
        _usage_error(prefix, f"{flag} needs a number, got {value!r}")


def _cmd_serve(args: list[str]) -> int:
    queue_dir, n_workers, lease_ttl, poll = None, 2, 15.0, 0.25
    host_id, max_skew, clock_offset = None, 2.0, 0.0
    ledger_file = None
    it = iter(args)
    for a in it:
        if a == "--queue-dir":
            queue_dir = next(it, None)
            if queue_dir is None:
                _usage_error("serve", "--queue-dir needs a directory")
        elif a.startswith("--queue-dir="):
            queue_dir = a.split("=", 1)[1]
        elif a == "--host-id":
            host_id = next(it, None)
            if host_id is None:
                _usage_error("serve", "--host-id needs a name")
        elif a.startswith("--host-id="):
            host_id = a.split("=", 1)[1]
        elif a == "-j":
            n_workers = _positive_int("serve", a, next(it, None))
        elif a.startswith("-j="):
            n_workers = _positive_int("serve", "-j", a.split("=", 1)[1])
        elif a == "--lease-ttl":
            lease_ttl = _positive_float("serve", a, next(it, None))
        elif a.startswith("--lease-ttl="):
            lease_ttl = _positive_float("serve", "--lease-ttl",
                                        a.split("=", 1)[1])
        elif a == "--max-skew":
            max_skew = _positive_float("serve", a, next(it, None))
        elif a.startswith("--max-skew="):
            max_skew = _positive_float("serve", "--max-skew",
                                       a.split("=", 1)[1])
        elif a == "--clock-offset":
            # chaos/testing knob: inject wall-clock skew (either sign)
            clock_offset = _float_any("serve", a, next(it, None))
        elif a.startswith("--clock-offset="):
            clock_offset = _float_any("serve", "--clock-offset",
                                      a.split("=", 1)[1])
        elif a == "--poll":
            poll = _positive_float("serve", a, next(it, None))
        elif a.startswith("--poll="):
            poll = _positive_float("serve", "--poll",
                                   a.split("=", 1)[1])
        elif a == "--ledger":
            ledger_file = next(it, None)
            if ledger_file is None:
                _usage_error("serve", "--ledger needs a path")
        elif a.startswith("--ledger="):
            ledger_file = a.split("=", 1)[1]
        else:
            _usage_error("serve", f"unknown option {a!r}")
    if queue_dir is None:
        _usage_error("serve", "--queue-dir is required (the durable "
                     "queue other processes enqueue into)")
    import json

    from repro.resilience.farm import Farm, FarmPolicy
    policy = FarmPolicy(n_workers=n_workers, lease_ttl=lease_ttl,
                        poll_interval=poll, drain_when_idle=False,
                        host_id=host_id, max_skew=max_skew,
                        clock_offset=clock_offset)
    farm = Farm(queue_dir, policy, label="serve")
    print(f"serve: {n_workers} worker(s) on {queue_dir} as host "
          f"{farm.host} (SIGTERM to drain)")
    code = farm.serve()
    if ledger_file and farm.last_ledger is not None:
        with open(ledger_file, "w") as f:
            json.dump(farm.last_ledger, f, indent=1)
        print(f"serve: ledger written to {ledger_file}")
    return code


def _read_jsonl_requests(path: str | None) -> list:
    """JSON-lines requests from a file or stdin.  A line that is not
    valid JSON is kept as the raw string — the service turns it into a
    typed invalid-request envelope instead of aborting the batch."""
    import json
    if path is None or path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(path) as f:
                lines = f.read().splitlines()
        except OSError as err:
            _usage_error("batch", f"cannot read {path!r}: {err}")
    requests = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            requests.append(json.loads(line))
        except json.JSONDecodeError:
            requests.append(line)
    return requests


def _cmd_batch(args: list[str]) -> int:
    import json

    infile, out, ledger_file, bench_file = None, None, None, None
    farm, n_workers, queue_dir, chunk_size = False, None, None, None
    deadline, request_deadline, shed_above = None, None, None
    isolate, allow_faults, dedup = "auto", False, True
    it = iter(args)
    for a in it:
        if a == "--farm":
            farm = True
        elif a == "--allow-faults":
            allow_faults = True
        elif a == "--no-dedup":
            dedup = False
        elif a == "-j":
            n_workers = _positive_int("batch", a, next(it, None))
        elif a.startswith("-j="):
            n_workers = _positive_int("batch", "-j", a.split("=", 1)[1])
        elif a == "--queue-dir":
            queue_dir = next(it, None)
            if queue_dir is None:
                _usage_error("batch", "--queue-dir needs a directory")
        elif a.startswith("--queue-dir="):
            queue_dir = a.split("=", 1)[1]
        elif a == "--chunk-size":
            chunk_size = _positive_int("batch", a, next(it, None))
        elif a.startswith("--chunk-size="):
            chunk_size = _positive_int("batch", "--chunk-size",
                                       a.split("=", 1)[1])
        elif a == "--deadline":
            deadline = _positive_float("batch", a, next(it, None))
        elif a.startswith("--deadline="):
            deadline = _positive_float("batch", "--deadline",
                                       a.split("=", 1)[1])
        elif a == "--request-deadline":
            request_deadline = _positive_float("batch", a,
                                               next(it, None))
        elif a.startswith("--request-deadline="):
            request_deadline = _positive_float(
                "batch", "--request-deadline", a.split("=", 1)[1])
        elif a == "--shed-above":
            shed_above = _positive_int("batch", a, next(it, None))
        elif a.startswith("--shed-above="):
            shed_above = _positive_int("batch", "--shed-above",
                                       a.split("=", 1)[1])
        elif a == "--isolate":
            isolate = next(it, None)
            if isolate not in ("auto", "always", "never"):
                _usage_error("batch", f"--isolate needs auto/always/"
                             f"never, got {isolate!r}")
        elif a.startswith("--isolate="):
            isolate = a.split("=", 1)[1]
            if isolate not in ("auto", "always", "never"):
                _usage_error("batch", f"--isolate needs auto/always/"
                             f"never, got {isolate!r}")
        elif a == "--out":
            out = next(it, None)
            if out is None:
                _usage_error("batch", "--out needs a path")
        elif a.startswith("--out="):
            out = a.split("=", 1)[1]
        elif a == "--ledger":
            ledger_file = next(it, None)
            if ledger_file is None:
                _usage_error("batch", "--ledger needs a path")
        elif a.startswith("--ledger="):
            ledger_file = a.split("=", 1)[1]
        elif a == "--bench":
            bench_file = next(it, None)
            if bench_file is None:
                _usage_error("batch", "--bench needs a path")
        elif a.startswith("--bench="):
            bench_file = a.split("=", 1)[1]
        elif a.startswith("-"):
            _usage_error("batch", f"unknown option {a!r}")
        elif infile is None:
            infile = a
        else:
            _usage_error("batch", f"unexpected argument {a!r}")
    if not farm and (queue_dir is not None or chunk_size is not None
                     or n_workers is not None):
        _usage_error("batch", "-j/--queue-dir/--chunk-size require "
                     "--farm")

    requests = _read_jsonl_requests(infile)
    if not requests:
        _usage_error("batch", "no requests (JSON-lines on stdin or in "
                     "FILE, one request object per line)")

    from repro.service.batch import (BatchPolicy, batch_bench_record,
                                     evaluate_batch,
                                     evaluate_batch_farm)
    kwargs = {"deadline": deadline, "shed_above": shed_above,
              "isolate": isolate, "allow_faults": allow_faults,
              "dedup": dedup}
    if request_deadline is not None:
        kwargs["request_deadline"] = request_deadline
    if chunk_size is not None:
        kwargs["chunk_size"] = chunk_size
    policy = BatchPolicy(**kwargs)

    if farm:
        import tempfile
        qdir = queue_dir or tempfile.mkdtemp(prefix="batch-queue-")
        result = evaluate_batch_farm(requests, policy, queue_dir=qdir,
                                     n_workers=n_workers or 2,
                                     chunk_size=chunk_size,
                                     stream=sys.stderr)
    else:
        result = evaluate_batch(requests, policy)

    lines = "\n".join(json.dumps(e.to_dict(), default=str)
                      for e in result.envelopes)
    if out:
        with open(out, "w") as f:
            f.write(lines + "\n")
    else:
        print(lines)
    if ledger_file:
        with open(ledger_file, "w") as f:
            json.dump(result.ledger, f, indent=1, default=str)
    if bench_file:
        from repro.resilience.farm import write_bench_json
        write_bench_json(bench_file,
                         batch_bench_record(
                             result, mode="farm" if farm else "local",
                             n_workers=n_workers if farm else 1))
    led = result.ledger
    counts = led.get("counts", {})
    n_failed = counts.get("failed", 0)
    print(f"batch: {led['n_requests']} requests -> "
          f"{counts.get('ok', 0)} ok, {counts.get('degraded', 0)} "
          f"degraded, {n_failed} failed "
          f"({led.get('requests_per_s')} req/s)", file=sys.stderr)
    return 0 if led.get("ok") and n_failed == 0 else 1


def _cmd_jobs(args: list[str]) -> int:
    """``jobs ACTION`` — the async-job client surface.  Every action
    prints one JSON object (or one per change, for ``watch``) so the
    output is scriptable; exit 0 on success, 1 when the job itself
    failed or an audit is violated, 2 on usage errors."""
    import json
    if not args:
        _usage_error("jobs", "expects an action: submit, status, "
                     "watch, result, cancel, gc, ledger")
    action, rest = args[0], args[1:]
    if action not in ("submit", "status", "watch", "result", "cancel",
                      "gc", "ledger"):
        _usage_error("jobs", f"unknown action {action!r}")
    prefix = f"jobs {action}"
    queue_dir, job_id, payload_arg, kind = None, None, None, None
    opts: dict = {}
    flags_num = {"--max-attempts": ("max_attempts", int),
                 "--priority": ("priority", int),
                 "--keep-last": ("keep_last", int),
                 "--deadline": ("deadline", float),
                 "--memory-mb": ("memory_mb", float),
                 "--stall-timeout": ("stall_timeout", float),
                 "--timeout": ("timeout", float),
                 "--wait": ("wait", float),
                 "--poll": ("poll", float),
                 "--escalate-after": ("escalate_after", float),
                 "--ttl": ("ttl", float)}
    it = iter(rest)
    for a in it:
        if a == "--queue-dir":
            queue_dir = next(it, None)
            if queue_dir is None:
                _usage_error(prefix, "--queue-dir needs a directory")
        elif a.startswith("--queue-dir="):
            queue_dir = a.split("=", 1)[1]
        elif a == "--id":
            job_id = next(it, None)
            if job_id is None:
                _usage_error(prefix, "--id needs a job id")
        elif a.startswith("--id="):
            job_id = a.split("=", 1)[1]
        elif a == "--reason":
            opts["reason"] = next(it, None)
            if opts["reason"] is None:
                _usage_error(prefix, "--reason needs text")
        elif a.startswith("--reason="):
            opts["reason"] = a.split("=", 1)[1]
        elif a == "--include-failed":
            opts["include_failed"] = True
        elif a in flags_num or a.split("=", 1)[0] in flags_num:
            flag, _, inline = a.partition("=")
            key, cast = flags_num[flag]
            value = inline if inline else next(it, None)
            if value is None:
                _usage_error(prefix, f"{flag} needs a value")
            try:
                opts[key] = cast(value)
            except ValueError:
                _usage_error(prefix, f"{flag} needs a number, "
                             f"got {value!r}")
        elif a.startswith("-"):
            _usage_error(prefix, f"unknown option {a!r}")
        elif action == "submit" and kind is None:
            kind = a
        elif action == "submit" and payload_arg is None:
            payload_arg = a
        elif action in ("status", "watch", "result", "cancel") \
                and job_id is None:
            job_id = a
        else:
            _usage_error(prefix, f"unexpected argument {a!r}")
    if queue_dir is None:
        _usage_error(prefix, "--queue-dir is required (the durable "
                     "queue a 'serve' farm drains)")
    needs_id = action in ("status", "watch", "result", "cancel")
    if needs_id and job_id is None:
        _usage_error(prefix, "expects a job id")
    if action == "submit" and kind is None:
        _usage_error(prefix, "expects a job KIND (and optional "
                     "payload JSON, inline or @FILE)")

    from repro.service.jobs import JOB_TERMINAL, FAILED, JobManager
    manager = JobManager(queue_dir)
    if action == "submit":
        payload = {}
        if payload_arg is not None:
            raw = payload_arg
            if raw.startswith("@"):
                try:
                    with open(raw[1:]) as f:
                        raw = f.read()
                except OSError as exc:
                    _usage_error(prefix, f"cannot read payload file "
                                 f"{raw[1:]!r}: {exc}")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                _usage_error(prefix, f"payload is not valid JSON: "
                             f"{exc}")
            if not isinstance(payload, dict):
                _usage_error(prefix, "payload must be a JSON object")
        out = manager.submit(kind, payload, job_id=job_id, **opts)
        print(json.dumps(out, indent=1, default=str))
        return 0
    if action == "status":
        out = manager.status(job_id)
        print(json.dumps(out, indent=1, default=str))
        return 0 if out["state"] != FAILED else 1
    if action == "watch":
        out = manager.watch(job_id, stream=sys.stdout, **opts)
        return 0 if (out["state"] in JOB_TERMINAL
                     and out["state"] != FAILED) else 1
    if action == "result":
        out = manager.result(job_id, **opts)
        print(json.dumps(out, indent=1, default=str))
        return 0 if out.get("ready") and out["state"] != FAILED else 1
    if action == "cancel":
        out = manager.cancel(job_id, **opts)
        print(json.dumps(out, indent=1, default=str))
        return 0
    if action == "gc":
        out = manager.gc(**opts)
        print(json.dumps(out, indent=1, default=str))
        return 0
    out = manager.ledger()
    print(json.dumps(out, indent=1, default=str))
    return 0 if (out["audit"]["ok"]
                 and out["transitions_audit"]["ok"]) else 1


_COMMANDS = {
    "figures": _cmd_figures,
    "stagnation": _cmd_stagnation,
    "degrade-smoke": _cmd_degrade_smoke,
    "chaos": _cmd_chaos,
    "batch": _cmd_batch,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "jobs": _cmd_jobs,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        _overview()
        return 0
    cmd = argv[0]
    if cmd in ("-h", "--help", "help"):
        print(_USAGE)
        return 0
    handler = _COMMANDS.get(cmd)
    try:
        if handler is None:
            _usage_error("repro", f"unknown command {cmd!r}")
        return handler(argv[1:])
    except _UsageError as err:
        print(err, file=sys.stderr)
        print(_USAGE, file=sys.stderr)
        return 2
    except Exception as err:
        from repro.errors import CatError
        if not isinstance(err, CatError):
            raise
        # typed solver failure: summarise (with the attached report
        # when present) and exit 1 instead of tracebacking
        print(f"{cmd}: {type(err).__name__}: {err}", file=sys.stderr)
        report = getattr(err, "report", None)
        if report is not None:
            print(report.summary(), file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
