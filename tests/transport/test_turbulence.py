"""Tests for the algebraic eddy-viscosity model."""

import numpy as np
import pytest

from repro.transport.turbulence import cebeci_smith_eddy_viscosity


def _profile(n=200, delta=0.01, ue=500.0):
    """A 1/7th-power turbulent-ish boundary-layer profile."""
    y = np.linspace(0.0, 2 * delta, n)
    u = ue * np.minimum(y / delta, 1.0) ** (1.0 / 7.0)
    u[0] = 0.0
    rho = np.full(n, 1.0)
    mu = np.full(n, 1.8e-5)
    return y, u, rho, mu


class TestCebeciSmith:
    def test_zero_at_wall(self):
        y, u, rho, mu = _profile()
        mu_t = cebeci_smith_eddy_viscosity(y, u, rho, mu)
        assert mu_t[0] == pytest.approx(0.0, abs=1e-12)

    def test_positive_inside_layer(self):
        y, u, rho, mu = _profile()
        mu_t = cebeci_smith_eddy_viscosity(y, u, rho, mu)
        assert np.all(mu_t[1:] >= 0.0)
        assert mu_t.max() > mu[0]  # eddy exceeds molecular in the layer

    def test_outer_layer_is_clauser_constant(self):
        y, u, rho, mu = _profile()
        mu_t = cebeci_smith_eddy_viscosity(y, u, rho, mu)
        # outer region: constant (rho, ue, delta* all constant here)
        outer = mu_t[-20:]
        assert np.allclose(outer, outer[0], rtol=1e-10)

    def test_quiescent_flow_no_turbulence(self):
        y = np.linspace(0.0, 0.01, 50)
        u = np.zeros(50)
        rho = np.ones(50)
        mu = np.full(50, 1.8e-5)
        mu_t = cebeci_smith_eddy_viscosity(y, u, rho, mu)
        assert np.allclose(mu_t, 0.0)

    def test_scales_with_edge_velocity(self):
        y, u, rho, mu = _profile(ue=500.0)
        mu_t_1 = cebeci_smith_eddy_viscosity(y, u, rho, mu)
        y, u2, rho, mu = _profile(ue=1000.0)
        mu_t_2 = cebeci_smith_eddy_viscosity(y, u2, rho, mu)
        assert mu_t_2.max() > mu_t_1.max()
